"""Detector protocol and evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.trace import PlatformTrace


class Detector(Protocol):
    """Scores each worker's suspicion of malice from a trace."""

    name: str

    def score_workers(self, trace: PlatformTrace) -> dict[str, float]:
        """Suspicion score in [0, 1] per worker id (1 = surely malicious).

        Workers without enough evidence may be omitted; absent workers
        are treated as score 0 by :func:`flag_workers`.
        """
        ...


def flag_workers(
    detector: Detector, trace: PlatformTrace, threshold: float = 0.5
) -> set[str]:
    """Worker ids whose suspicion clears ``threshold``."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    scores = detector.score_workers(trace)
    return {wid for wid, score in scores.items() if score >= threshold}


@dataclass(frozen=True)
class DetectionOutcome:
    """Confusion-matrix summary of one detector run."""

    detector: str
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positives + self.false_positives
            + self.false_negatives + self.true_negatives
        )
        correct = self.true_positives + self.true_negatives
        return correct / total if total else 1.0


def evaluate_detector(
    detector: Detector,
    trace: PlatformTrace,
    ground_truth_malicious: set[str],
    threshold: float = 0.5,
    population: set[str] | None = None,
) -> DetectionOutcome:
    """Score a detector against ground-truth malicious worker ids.

    ``population`` defaults to every worker in the trace.
    """
    workers = population if population is not None else set(trace.worker_ids)
    flagged = flag_workers(detector, trace, threshold) & workers
    malicious = ground_truth_malicious & workers
    return DetectionOutcome(
        detector=detector.name,
        true_positives=len(flagged & malicious),
        false_positives=len(flagged - malicious),
        false_negatives=len(malicious - flagged),
        true_negatives=len(workers - flagged - malicious),
    )
