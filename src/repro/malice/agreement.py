"""Agreement-based detection: disagreement with the crowd majority.

Vuurens et al. [20] counter spam by comparing each answer with the
other answers to the same task: honest workers cluster on the correct
answer, spammers scatter.  Suspicion is the fraction of a worker's
answers that disagree with the per-task majority (ties count as
agreement — no evidence against the worker).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.core.events import ContributionSubmitted
from repro.core.trace import PlatformTrace


def majority_answers(trace: PlatformTrace) -> dict[str, object]:
    """The (strict) majority payload per task, where one exists.

    Tasks whose top answer ties, or with a single contribution, have no
    majority and are omitted.
    """
    answers: dict[str, list[object]] = defaultdict(list)
    for event in trace.of_kind(ContributionSubmitted):
        answers[event.contribution.task_id].append(
            _hashable(event.contribution.payload)
        )
    majorities: dict[str, object] = {}
    for task_id, payloads in answers.items():
        if len(payloads) < 2:
            continue
        counts = Counter(payloads).most_common(2)
        if len(counts) == 1 or counts[0][1] > counts[1][1]:
            majorities[task_id] = counts[0][0]
    return majorities


def _hashable(payload: object) -> object:
    if isinstance(payload, list):
        return tuple(payload)
    if isinstance(payload, float):
        # Numeric estimates rarely coincide exactly; bucket them so
        # honest answers near the truth agree.
        return round(payload, 1)
    return payload


@dataclass(frozen=True)
class AgreementDetector:
    """Suspicion = share of answers off the task majority."""

    min_answers: int = 3
    name: str = "agreement"

    def score_workers(self, trace: PlatformTrace) -> dict[str, float]:
        majorities = majority_answers(trace)
        judged: dict[str, int] = defaultdict(int)
        off: dict[str, int] = defaultdict(int)
        for event in trace.of_kind(ContributionSubmitted):
            contribution = event.contribution
            majority = majorities.get(contribution.task_id)
            if majority is None:
                continue
            judged[contribution.worker_id] += 1
            if _hashable(contribution.payload) != majority:
                off[contribution.worker_id] += 1
        return {
            worker_id: off[worker_id] / count
            for worker_id, count in judged.items()
            if count >= self.min_answers
        }
