"""Malicious-worker detection.

Axiom 4 obliges platforms to let requesters "detect workers behaving
maliciously during task completion"; Vuurens et al. [20] report that
without such detection ~40 % of AMT answers were malicious.  This
package provides the detector toolbox:

* :class:`GoldStandardDetector` — error rate on gold-answer tasks;
* :class:`AgreementDetector` — disagreement with the per-task majority;
* :class:`TimingDetector` — implausibly fast submissions;
* :class:`EnsembleDetector` — weighted combination of the above.

All detectors share the :class:`Detector` protocol (suspicion scores in
[0, 1] per worker from a trace) and are evaluated by
:func:`evaluate_detector` against ground-truth behaviour labels.
"""

from repro.malice.agreement import AgreementDetector, majority_answers
from repro.malice.base import (
    DetectionOutcome,
    Detector,
    evaluate_detector,
    flag_workers,
)
from repro.malice.ensemble import EnsembleDetector
from repro.malice.gold_standard import GoldStandardDetector
from repro.malice.timing import TimingDetector

__all__ = [
    "AgreementDetector",
    "DetectionOutcome",
    "Detector",
    "EnsembleDetector",
    "GoldStandardDetector",
    "TimingDetector",
    "evaluate_detector",
    "flag_workers",
    "majority_answers",
]
