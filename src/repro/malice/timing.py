"""Timing-based detection: implausibly fast submissions.

Spammers answer as fast as the interface allows; honest work takes
roughly the task's nominal duration.  Suspicion is the fraction of a
worker's submissions completed in less than ``fast_fraction`` of the
task duration.  Note the deliberate blind spot: *malicious* (wrong but
unhurried) workers evade this detector — which is why the ensemble
exists.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.events import ContributionSubmitted
from repro.core.trace import PlatformTrace


@dataclass(frozen=True)
class TimingDetector:
    """Suspicion = share of submissions faster than the plausible floor."""

    fast_fraction: float = 0.5
    min_answers: int = 3
    name: str = "timing"

    def __post_init__(self) -> None:
        if not 0.0 < self.fast_fraction <= 1.0:
            raise ValueError("fast_fraction must be in (0, 1]")

    def score_workers(self, trace: PlatformTrace) -> dict[str, float]:
        timed: dict[str, int] = defaultdict(int)
        fast: dict[str, int] = defaultdict(int)
        tasks = trace.tasks
        for event in trace.of_kind(ContributionSubmitted):
            contribution = event.contribution
            task = tasks.get(contribution.task_id)
            if task is None or contribution.work_time is None:
                continue
            if task.duration < 2:
                continue  # one-tick tasks carry no timing signal
            timed[contribution.worker_id] += 1
            if contribution.work_time < self.fast_fraction * task.duration:
                fast[contribution.worker_id] += 1
        return {
            worker_id: fast[worker_id] / count
            for worker_id, count in timed.items()
            if count >= self.min_answers
        }
