"""Gold-standard detection: error rate on tasks with known answers.

The classic quality-control signal: seed the task stream with gold
questions; a worker's error rate on them estimates their reliability.
Suspicion is the error rate itself, reported only once the worker has
answered ``min_gold`` gold tasks (below that, no evidence).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.events import ContributionSubmitted
from repro.core.trace import PlatformTrace


@dataclass(frozen=True)
class GoldStandardDetector:
    """Suspicion = gold-answer error rate."""

    min_gold: int = 3
    name: str = "gold_standard"

    def score_workers(self, trace: PlatformTrace) -> dict[str, float]:
        answered: dict[str, int] = defaultdict(int)
        wrong: dict[str, int] = defaultdict(int)
        tasks = trace.tasks
        for event in trace.of_kind(ContributionSubmitted):
            contribution = event.contribution
            task = tasks.get(contribution.task_id)
            if task is None or task.gold_answer is None:
                continue
            answered[contribution.worker_id] += 1
            if str(contribution.payload) != str(task.gold_answer):
                wrong[contribution.worker_id] += 1
        return {
            worker_id: wrong[worker_id] / count
            for worker_id, count in answered.items()
            if count >= self.min_gold
        }
