"""Recursive-descent parser for the transparency DSL.

Grammar::

    policy      := "policy" STRING "{" statement* "}"
    statement   := rule | requirement
    rule        := "disclose" fieldref "to" audience [ "when" cond ] ";"
    requirement := "require" "axiom" NUMBER "score" OP NUMBER ";"
    fieldref    := SUBJECT "." IDENT
    audience    := "workers" | "requesters" | "self" | "public"
    cond        := fieldref OP literal
    literal     := NUMBER | STRING | BOOLEAN

Syntax errors raise :class:`~repro.errors.PolicySyntaxError` with
line/column; semantic checks (unknown fields, audience compatibility)
live in :mod:`repro.transparency.semantics`.
"""

from __future__ import annotations

from repro.errors import PolicySyntaxError
from repro.transparency.ast_nodes import (
    Audience,
    Comparison,
    Condition,
    DiscloseRule,
    FairnessRequirement,
    FieldRef,
    Policy,
    Subject,
)
from repro.transparency.tokens import Token, TokenType, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._current
        if token.type is not token_type:
            raise PolicySyntaxError(
                f"expected {what}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    # ------------------------------------------------------------------

    def parse_policy(self) -> Policy:
        self._expect(TokenType.POLICY, "'policy'")
        name_token = self._expect(TokenType.STRING, "policy name string")
        self._expect(TokenType.LBRACE, "'{'")
        rules: list[DiscloseRule] = []
        requirements: list[FairnessRequirement] = []
        while self._current.type is not TokenType.RBRACE:
            if self._current.type is TokenType.EOF:
                raise PolicySyntaxError(
                    "unexpected end of input inside policy body",
                    self._current.line, self._current.column,
                )
            if self._current.type is TokenType.REQUIRE:
                requirements.append(self._parse_requirement())
            else:
                rules.append(self._parse_rule())
        self._expect(TokenType.RBRACE, "'}'")
        trailing = self._current
        if trailing.type is not TokenType.EOF:
            raise PolicySyntaxError(
                f"unexpected trailing input {trailing.value!r}",
                trailing.line, trailing.column,
            )
        return Policy(
            name=str(name_token.value),
            rules=tuple(rules),
            requirements=tuple(requirements),
        )

    def _parse_requirement(self) -> FairnessRequirement:
        self._expect(TokenType.REQUIRE, "'require'")
        keyword = self._expect(TokenType.IDENT, "'axiom'")
        if keyword.value != "axiom":
            raise PolicySyntaxError(
                f"expected 'axiom', found {keyword.value!r}",
                keyword.line, keyword.column,
            )
        axiom_token = self._expect(TokenType.NUMBER, "an axiom number")
        if not isinstance(axiom_token.value, int):
            raise PolicySyntaxError(
                "axiom number must be an integer",
                axiom_token.line, axiom_token.column,
            )
        score_keyword = self._expect(TokenType.IDENT, "'score'")
        if score_keyword.value != "score":
            raise PolicySyntaxError(
                f"expected 'score', found {score_keyword.value!r}",
                score_keyword.line, score_keyword.column,
            )
        op_token = self._expect(TokenType.OP, "a comparison operator")
        threshold_token = self._expect(TokenType.NUMBER, "a threshold number")
        self._expect(TokenType.SEMICOLON, "';'")
        return FairnessRequirement(
            axiom_id=int(axiom_token.value),
            op=Comparison(str(op_token.value)),
            threshold=float(threshold_token.value),
        )

    def _parse_rule(self) -> DiscloseRule:
        self._expect(TokenType.DISCLOSE, "'disclose'")
        field = self._parse_fieldref()
        self._expect(TokenType.TO, "'to'")
        audience_token = self._expect(TokenType.IDENT, "an audience")
        try:
            audience = Audience(str(audience_token.value))
        except ValueError:
            known = ", ".join(a.value for a in Audience)
            raise PolicySyntaxError(
                f"unknown audience {audience_token.value!r} (known: {known})",
                audience_token.line, audience_token.column,
            ) from None
        condition = None
        if self._current.type is TokenType.WHEN:
            self._advance()
            condition = self._parse_condition()
        self._expect(TokenType.SEMICOLON, "';'")
        return DiscloseRule(field=field, audience=audience, condition=condition)

    def _parse_fieldref(self) -> FieldRef:
        subject_token = self._expect(TokenType.IDENT, "a subject")
        try:
            subject = Subject(str(subject_token.value))
        except ValueError:
            known = ", ".join(s.value for s in Subject)
            raise PolicySyntaxError(
                f"unknown subject {subject_token.value!r} (known: {known})",
                subject_token.line, subject_token.column,
            ) from None
        self._expect(TokenType.DOT, "'.'")
        field_token = self._expect(TokenType.IDENT, "a field name")
        return FieldRef(subject=subject, field=str(field_token.value))

    def _parse_condition(self) -> Condition:
        field = self._parse_fieldref()
        op_token = self._expect(TokenType.OP, "a comparison operator")
        op = Comparison(str(op_token.value))
        literal_token = self._current
        if literal_token.type not in (
            TokenType.NUMBER, TokenType.STRING, TokenType.BOOLEAN
        ):
            raise PolicySyntaxError(
                f"expected a literal, found {literal_token.value!r}",
                literal_token.line, literal_token.column,
            )
        self._advance()
        return Condition(field=field, op=op, literal=literal_token.value)


def parse_policy(source: str) -> Policy:
    """Parse DSL source into a :class:`Policy` AST (syntax only)."""
    return _Parser(tokenize(source)).parse_policy()
