"""Semantic validation of transparency policies.

A parsed policy may still be meaningless: referring to fields no
platform tracks, or disclosing a worker's attributes "to self" of a
requester subject.  The :class:`DisclosureSchema` declares, per
subject, which fields exist and their types; :func:`validate_policy`
checks every rule and condition against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import PolicySemanticsError
from repro.transparency.ast_nodes import (
    Audience,
    Comparison,
    Condition,
    FairnessRequirement,
    FieldRef,
    Policy,
    Subject,
)

#: Field type labels used by the schema.
NUMBER = "number"
STRING = "string"
BOOLEAN = "boolean"


def _default_fields() -> dict[Subject, dict[str, str]]:
    return {
        Subject.REQUESTER: {
            # Axiom 6's mandated working conditions plus common extras.
            "hourly_wage": NUMBER,
            "payment_delay": NUMBER,
            "recruitment_criteria": STRING,
            "rejection_criteria": STRING,
            "rating": NUMBER,
            "name": STRING,
            "identity_verified": BOOLEAN,
        },
        Subject.WORKER: {
            # Axiom 7's computed attributes plus declared extras.
            "acceptance_ratio": NUMBER,
            "tasks_completed": NUMBER,
            "mean_quality": NUMBER,
            "location": STRING,
            "group": STRING,
        },
        Subject.TASK: {
            "reward": NUMBER,
            "duration": NUMBER,
            "kind": STRING,
            "requester_id": STRING,
        },
        Subject.PLATFORM: {
            "fee_structure": STRING,
            "dispute_process": STRING,
            "estimated_hourly_wage": NUMBER,
            "active_workers": NUMBER,
        },
    }


@dataclass(frozen=True)
class DisclosureSchema:
    """The universe of disclosable fields, per subject."""

    fields: Mapping[Subject, Mapping[str, str]] = field(
        default_factory=_default_fields
    )

    def has_field(self, ref: FieldRef) -> bool:
        return ref.field in self.fields.get(ref.subject, {})

    def field_type(self, ref: FieldRef) -> str:
        try:
            return self.fields[ref.subject][ref.field]
        except KeyError:
            raise PolicySemanticsError(f"unknown field {ref}") from None

    def all_fields(self, subject: Subject) -> frozenset[str]:
        return frozenset(self.fields.get(subject, {}))

    def total_field_count(self) -> int:
        return sum(len(fields) for fields in self.fields.values())


#: Audiences that make sense per subject.  ``SELF`` requires the subject
#: to be a person-like entity (worker or requester).
_VALID_AUDIENCES: dict[Subject, frozenset[Audience]] = {
    Subject.REQUESTER: frozenset(
        {Audience.WORKERS, Audience.REQUESTERS, Audience.SELF, Audience.PUBLIC}
    ),
    Subject.WORKER: frozenset(
        {Audience.WORKERS, Audience.REQUESTERS, Audience.SELF, Audience.PUBLIC}
    ),
    Subject.TASK: frozenset(
        {Audience.WORKERS, Audience.REQUESTERS, Audience.PUBLIC}
    ),
    Subject.PLATFORM: frozenset(
        {Audience.WORKERS, Audience.REQUESTERS, Audience.PUBLIC}
    ),
}

_LITERAL_TYPES = {NUMBER: (int, float), STRING: (str,), BOOLEAN: (bool,)}

_ORDERING_OPS = {Comparison.GE, Comparison.LE, Comparison.GT, Comparison.LT}


def _check_condition(condition: Condition, schema: DisclosureSchema) -> None:
    if not schema.has_field(condition.field):
        raise PolicySemanticsError(
            f"condition refers to unknown field {condition.field}"
        )
    field_type = schema.field_type(condition.field)
    expected = _LITERAL_TYPES[field_type]
    literal = condition.literal
    # bool is an int subclass: reject booleans for number fields explicitly.
    if isinstance(literal, bool) and field_type is not BOOLEAN:
        raise PolicySemanticsError(
            f"condition on {condition.field} ({field_type}) has boolean literal"
        )
    if not isinstance(literal, expected):
        raise PolicySemanticsError(
            f"condition on {condition.field} ({field_type}) has "
            f"{type(literal).__name__} literal {literal!r}"
        )
    if condition.op in _ORDERING_OPS and field_type is not NUMBER:
        raise PolicySemanticsError(
            f"ordering comparison {condition.op.value} needs a numeric "
            f"field, but {condition.field} is {field_type}"
        )


#: Comparisons that make sense as a compliance floor.
_REQUIREMENT_OPS = {Comparison.GE, Comparison.GT, Comparison.EQ}


def _check_requirement(requirement: FairnessRequirement) -> None:
    if not 1 <= requirement.axiom_id <= 7:
        raise PolicySemanticsError(
            f"unknown axiom {requirement.axiom_id}; the paper defines 1-7"
        )
    if requirement.op not in _REQUIREMENT_OPS:
        raise PolicySemanticsError(
            f"requirement comparison must be a floor (>=, >, ==), got "
            f"{requirement.op.value!r}"
        )
    if not 0.0 <= requirement.threshold <= 1.0:
        raise PolicySemanticsError(
            f"requirement threshold must be in [0, 1], got "
            f"{requirement.threshold}"
        )


def validate_policy(
    policy: Policy, schema: DisclosureSchema | None = None
) -> None:
    """Raise :class:`PolicySemanticsError` on the first invalid rule."""
    schema = schema or DisclosureSchema()
    required_axioms: set[int] = set()
    for requirement in policy.requirements:
        _check_requirement(requirement)
        if requirement.axiom_id in required_axioms:
            raise PolicySemanticsError(
                f"duplicate requirement for axiom {requirement.axiom_id}"
            )
        required_axioms.add(requirement.axiom_id)
    seen: set[tuple[FieldRef, Audience]] = set()
    for rule in policy.rules:
        if not schema.has_field(rule.field):
            known = ", ".join(sorted(schema.all_fields(rule.field.subject)))
            raise PolicySemanticsError(
                f"unknown field {rule.field} (known for "
                f"{rule.field.subject.value}: {known})"
            )
        if rule.audience not in _VALID_AUDIENCES[rule.field.subject]:
            raise PolicySemanticsError(
                f"audience {rule.audience.value!r} is invalid for subject "
                f"{rule.field.subject.value!r}"
            )
        key = (rule.field, rule.audience)
        if key in seen and rule.condition is None:
            raise PolicySemanticsError(
                f"duplicate unconditional rule for {rule.field} to "
                f"{rule.audience.value}"
            )
        seen.add(key)
        if rule.condition is not None:
            _check_condition(rule.condition, schema)
