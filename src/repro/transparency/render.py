"""Human-readable rendering of transparency rules.

Section 3.3.2: "Rules can also be translated into human-readable
descriptions for workers' consumption."  The renderer produces plain
English, e.g.::

    disclose requester.hourly_wage to workers;
      -> "Workers can see each requester's hourly wage."

    disclose worker.acceptance_ratio to self when
        worker.tasks_completed >= 10;
      -> "You can see your own acceptance ratio, once your completed
          task count is at least 10."
"""

from __future__ import annotations

from repro.transparency.ast_nodes import (
    Audience,
    Comparison,
    Condition,
    DiscloseRule,
    FairnessRequirement,
    Policy,
    Subject,
)

_AXIOM_PHRASES: dict[int, str] = {
    1: "equal task access for similar workers",
    2: "equal visibility for comparable tasks",
    3: "equal pay for similar contributions",
    4: "detection of malicious workers",
    5: "no interruption of started work",
    6: "disclosed requester working conditions",
    7: "disclosed worker statistics",
}

_FIELD_PHRASES: dict[str, str] = {
    "hourly_wage": "hourly wage",
    "payment_delay": "time between submission and payment",
    "recruitment_criteria": "recruitment criteria",
    "rejection_criteria": "rejection criteria",
    "rating": "rating",
    "name": "name",
    "identity_verified": "identity verification status",
    "acceptance_ratio": "acceptance ratio",
    "tasks_completed": "completed task count",
    "mean_quality": "average contribution quality",
    "location": "location",
    "group": "demographic group",
    "reward": "reward",
    "duration": "expected duration",
    "kind": "type",
    "requester_id": "requester",
    "fee_structure": "fee structure",
    "dispute_process": "dispute process",
    "estimated_hourly_wage": "estimated hourly wage",
    "active_workers": "active worker count",
}

_AUDIENCE_PHRASES: dict[Audience, str] = {
    Audience.WORKERS: "Workers can see",
    Audience.REQUESTERS: "Requesters can see",
    Audience.PUBLIC: "Anyone can see",
    Audience.SELF: "You can see your own",
}

_SUBJECT_PHRASES: dict[Subject, str] = {
    Subject.REQUESTER: "each requester's",
    Subject.WORKER: "each worker's",
    Subject.TASK: "each task's",
    Subject.PLATFORM: "the platform's",
}

_OP_PHRASES: dict[Comparison, str] = {
    Comparison.GE: "is at least",
    Comparison.LE: "is at most",
    Comparison.GT: "is above",
    Comparison.LT: "is below",
    Comparison.EQ: "equals",
    Comparison.NE: "differs from",
}


def _field_phrase(field_name: str) -> str:
    return _FIELD_PHRASES.get(field_name, field_name.replace("_", " "))


def _condition_phrase(condition: Condition, self_audience: bool) -> str:
    owner = "your" if self_audience else (
        _SUBJECT_PHRASES[condition.field.subject].rstrip("'s") + "'s"
        if condition.field.subject is not Subject.PLATFORM
        else "the platform's"
    )
    if self_audience and condition.field.subject is Subject.WORKER:
        owner = "your"
    literal = (
        f'"{condition.literal}"' if isinstance(condition.literal, str)
        else str(condition.literal).lower() if isinstance(condition.literal, bool)
        else f"{condition.literal:g}" if isinstance(condition.literal, float)
        else str(condition.literal)
    )
    return (
        f"once {owner} {_field_phrase(condition.field.field)} "
        f"{_OP_PHRASES[condition.op]} {literal}"
    )


def render_rule(rule: DiscloseRule) -> str:
    """One English sentence for one rule."""
    is_self = rule.audience is Audience.SELF
    lead = _AUDIENCE_PHRASES[rule.audience]
    if is_self:
        sentence = f"{lead} {_field_phrase(rule.field.field)}"
    else:
        sentence = (
            f"{lead} {_SUBJECT_PHRASES[rule.field.subject]} "
            f"{_field_phrase(rule.field.field)}"
        )
    if rule.condition is not None:
        sentence = f"{sentence}, {_condition_phrase(rule.condition, is_self)}"
    return f"{sentence}."


def render_requirement(requirement: FairnessRequirement) -> str:
    """One English sentence for one fairness commitment."""
    phrase = _AXIOM_PHRASES.get(
        requirement.axiom_id, f"axiom {requirement.axiom_id}"
    )
    return (
        f"The platform commits to {phrase} with an audit score of at "
        f"least {requirement.threshold:g}."
    )


def render_policy(policy: Policy) -> str:
    """A worker-facing description of the whole policy."""
    if not policy.rules and not policy.requirements:
        return (
            f"Policy '{policy.name}': this platform discloses nothing."
        )
    lines = [f"Policy '{policy.name}' discloses the following:"]
    lines.extend(f"  - {render_rule(rule)}" for rule in policy.rules)
    if policy.requirements:
        lines.append("And commits to these fairness rules:")
        lines.extend(
            f"  - {render_requirement(req)}" for req in policy.requirements
        )
    return "\n".join(lines)
