"""Policy evaluation: turning rules into concrete disclosures.

Given live entities (requesters, workers, tasks, platform stats), the
evaluator applies every rule whose condition holds and produces
:class:`Disclosure` records — the values a compliant platform UI would
render, and exactly what the enforcement hook writes into the trace as
:class:`~repro.core.events.DisclosureShown` events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.entities import Requester, Task, Worker
from repro.transparency.ast_nodes import (
    Audience,
    Condition,
    FieldRef,
    Subject,
)
from repro.transparency.policy import TransparencyPolicy


@dataclass(frozen=True)
class Disclosure:
    """One concrete disclosure produced by evaluating a policy."""

    subject: str        # "requester:r0001", "worker:w0003", "task:t0001", "platform"
    field_name: str
    value: object
    audience: Audience
    audience_worker_id: str = ""  # set for SELF disclosures to a worker


def _requester_value(requester: Requester, field_name: str) -> object:
    if field_name == "identity_verified":
        return bool(requester.name)
    return getattr(requester, field_name, None)


def _worker_value(worker: Worker, field_name: str) -> object:
    if field_name in worker.computed:
        return worker.computed[field_name]
    if field_name in worker.declared:
        return worker.declared[field_name]
    return None


def _task_value(task: Task, field_name: str) -> object:
    return getattr(task, field_name, None)


class PolicyEvaluator:
    """Applies a policy to entity collections."""

    def __init__(
        self,
        policy: TransparencyPolicy,
        platform_stats: Mapping[str, object] | None = None,
    ) -> None:
        self.policy = policy
        self.platform_stats = dict(platform_stats or {})

    # ------------------------------------------------------------------

    def _resolve(self, ref: FieldRef, entity: object) -> object:
        if ref.subject is Subject.REQUESTER and isinstance(entity, Requester):
            return _requester_value(entity, ref.field)
        if ref.subject is Subject.WORKER and isinstance(entity, Worker):
            return _worker_value(entity, ref.field)
        if ref.subject is Subject.TASK and isinstance(entity, Task):
            return _task_value(entity, ref.field)
        if ref.subject is Subject.PLATFORM:
            return self.platform_stats.get(ref.field)
        return None

    def _condition_holds(self, condition: Condition | None, entity: object) -> bool:
        if condition is None:
            return True
        value = self._resolve(condition.field, entity)
        if value is None:
            return False  # absent facts disclose nothing
        return condition.op.apply(value, condition.literal)

    # ------------------------------------------------------------------

    def disclosures_for_requester(self, requester: Requester) -> list[Disclosure]:
        disclosures = []
        for rule in self.policy.ast.rules_for(Subject.REQUESTER):
            if not self._condition_holds(rule.condition, requester):
                continue
            value = _requester_value(requester, rule.field.field)
            if value is None:
                continue
            disclosures.append(
                Disclosure(
                    subject=f"requester:{requester.requester_id}",
                    field_name=rule.field.field,
                    value=value,
                    audience=rule.audience,
                )
            )
        return disclosures

    def disclosures_for_worker(self, worker: Worker) -> list[Disclosure]:
        disclosures = []
        for rule in self.policy.ast.rules_for(Subject.WORKER):
            if not self._condition_holds(rule.condition, worker):
                continue
            value = _worker_value(worker, rule.field.field)
            if value is None:
                continue
            audience_worker = (
                worker.worker_id if rule.audience is Audience.SELF else ""
            )
            disclosures.append(
                Disclosure(
                    subject=f"worker:{worker.worker_id}",
                    field_name=rule.field.field,
                    value=value,
                    audience=rule.audience,
                    audience_worker_id=audience_worker,
                )
            )
        return disclosures

    def disclosures_for_task(self, task: Task) -> list[Disclosure]:
        disclosures = []
        for rule in self.policy.ast.rules_for(Subject.TASK):
            if not self._condition_holds(rule.condition, task):
                continue
            value = _task_value(task, rule.field.field)
            if value is None:
                continue
            disclosures.append(
                Disclosure(
                    subject=f"task:{task.task_id}",
                    field_name=rule.field.field,
                    value=value,
                    audience=rule.audience,
                )
            )
        return disclosures

    def disclosures_for_platform(self) -> list[Disclosure]:
        disclosures = []
        for rule in self.policy.ast.rules_for(Subject.PLATFORM):
            if not self._condition_holds(rule.condition, None):
                continue
            value = self.platform_stats.get(rule.field.field)
            if value is None:
                continue
            disclosures.append(
                Disclosure(
                    subject="platform",
                    field_name=rule.field.field,
                    value=value,
                    audience=rule.audience,
                )
            )
        return disclosures

    def evaluate(
        self,
        requesters: Iterable[Requester] = (),
        workers: Iterable[Worker] = (),
        tasks: Iterable[Task] = (),
    ) -> list[Disclosure]:
        """All disclosures the policy yields over the given entities."""
        disclosures: list[Disclosure] = []
        for requester in requesters:
            disclosures.extend(self.disclosures_for_requester(requester))
        for worker in workers:
            disclosures.extend(self.disclosures_for_worker(worker))
        for task in tasks:
            disclosures.extend(self.disclosures_for_task(task))
        disclosures.extend(self.disclosures_for_platform())
        return disclosures
