"""Preset policies modelling real platforms' disclosure surfaces.

The paper surveys what each platform/tool actually disclosed circa
2017; each preset encodes that surface in the DSL, demonstrating the
expressiveness claim and feeding the cross-platform comparison (E6):

* ``opaque`` — a platform disclosing nothing (the lower control);
* ``amt_basic`` — stock AMT: task rewards and requester names only;
* ``amt_turkopticon`` — AMT + the Turkopticon plug-in [9]: requester
  ratings and pay/payment-delay reviews become visible to workers;
* ``crowdflower`` — CrowdFlower: per-task ratings and the worker's own
  estimated accuracy panel;
* ``mobileworks`` — MobileWorks [15]: worker-to-worker visibility
  (workers monitor each other);
* ``full`` — everything the Axioms 6 and 7 mandate, plus platform
  stats (the upper control).
"""

from __future__ import annotations

from repro.transparency.policy import TransparencyPolicy

_PRESET_SOURCES: dict[str, str] = {
    "opaque": 'policy "opaque" {\n}',
    "amt_basic": """
policy "amt_basic" {
  # Stock AMT: workers browse tasks and see rewards and who posts them.
  disclose task.reward to workers;
  disclose task.requester_id to workers;
  disclose requester.name to workers;
}
""",
    "amt_turkopticon": """
policy "amt_turkopticon" {
  # Stock AMT surface...
  disclose task.reward to workers;
  disclose task.requester_id to workers;
  disclose requester.name to workers;
  # ...plus the Turkopticon plug-in: worker-sourced requester reviews.
  disclose requester.rating to workers;
  disclose requester.hourly_wage to workers;
  disclose requester.payment_delay to workers;
  disclose requester.rejection_criteria to workers;
}
""",
    "crowdflower": """
policy "crowdflower" {
  disclose task.reward to workers;
  disclose task.kind to workers;
  # CrowdFlower shows per-task ratings in its browse interface.
  disclose requester.rating to workers;
  # The accuracy panel: your own estimated accuracy so far.
  disclose worker.mean_quality to self;
  disclose worker.acceptance_ratio to self;
}
""",
    "mobileworks": """
policy "mobileworks" {
  disclose task.reward to workers;
  disclose requester.name to workers;
  # Managed crowd: workers monitor each other's progress.
  disclose worker.tasks_completed to workers;
  disclose worker.acceptance_ratio to workers;
  disclose platform.estimated_hourly_wage to workers;
}
""",
    "full": """
policy "full" {
  # Everything Axiom 6 mandates of requesters...
  disclose requester.hourly_wage to workers;
  disclose requester.payment_delay to workers;
  disclose requester.recruitment_criteria to workers;
  disclose requester.rejection_criteria to workers;
  disclose requester.rating to public;
  # ...everything Axiom 7 mandates of the platform...
  disclose worker.acceptance_ratio to self;
  disclose worker.tasks_completed to self;
  disclose worker.mean_quality to self;
  # ...and platform-level context.
  disclose task.reward to public;
  disclose task.duration to workers;
  disclose platform.fee_structure to public;
  disclose platform.dispute_process to public;
  disclose platform.estimated_hourly_wage to workers;
}
""",
}

#: Preset names in increasing disclosure order (handy for sweeps).
PRESETS: tuple[str, ...] = (
    "opaque",
    "amt_basic",
    "crowdflower",
    "amt_turkopticon",
    "mobileworks",
    "full",
)


def preset(name: str) -> TransparencyPolicy:
    """Load a preset policy by name."""
    try:
        source = _PRESET_SOURCES[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; known: {sorted(_PRESET_SOURCES)}"
        ) from None
    return TransparencyPolicy.from_source(source)


def all_presets() -> dict[str, TransparencyPolicy]:
    """All presets, keyed by name."""
    return {name: preset(name) for name in PRESETS}
