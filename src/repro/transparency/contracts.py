"""Audit contracts: checking a platform against its declared fairness rules.

A policy's ``require axiom <n> score >= <x>;`` statements are public
commitments.  An :class:`AuditContract` evaluates an audit report
against them, yielding a per-requirement verdict — the "checking
fairness ... in a principled fashion" of Section 3.2, made declarative
per Section 3.3.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.audit import AuditReport
from repro.errors import AuditError
from repro.transparency.policy import TransparencyPolicy

_AXIOM_TITLES = {
    1: "worker fairness in task assignment",
    2: "requester fairness in task assignment",
    3: "fairness in worker compensation",
    4: "requester fairness in task completion",
    5: "worker fairness in task completion",
    6: "requester transparency",
    7: "platform transparency",
}


@dataclass(frozen=True)
class RequirementVerdict:
    """One requirement checked against one audit report."""

    axiom_id: int
    threshold: float
    actual_score: float
    satisfied: bool

    def describe(self) -> str:
        verdict = "OK" if self.satisfied else "BREACH"
        title = _AXIOM_TITLES.get(self.axiom_id, f"axiom {self.axiom_id}")
        return (
            f"[{verdict}] axiom {self.axiom_id} ({title}): committed "
            f"{self.threshold:g}, measured {self.actual_score:.3f}"
        )


@dataclass(frozen=True)
class ContractOutcome:
    """All requirement verdicts for one (policy, report) pair."""

    policy_name: str
    verdicts: tuple[RequirementVerdict, ...]

    @property
    def honoured(self) -> bool:
        return all(v.satisfied for v in self.verdicts)

    @property
    def breaches(self) -> tuple[RequirementVerdict, ...]:
        return tuple(v for v in self.verdicts if not v.satisfied)

    def summary_lines(self) -> list[str]:
        status = "HONOURED" if self.honoured else "BREACHED"
        lines = [
            f"contract of policy '{self.policy_name}': {status} "
            f"({len(self.verdicts)} requirement(s))"
        ]
        lines.extend(f"  {v.describe()}" for v in self.verdicts)
        return lines


class AuditContract:
    """Evaluates audit reports against a policy's fairness requirements."""

    def __init__(self, policy: TransparencyPolicy) -> None:
        self.policy = policy

    @property
    def requirements(self):
        return self.policy.ast.requirements

    def evaluate(self, report: AuditReport) -> ContractOutcome:
        """Check every declared requirement against the report.

        Raises :class:`AuditError` when the report lacks a result for a
        required axiom (the audit suite must cover the contract).
        """
        available = {result.axiom_id for result in report.results}
        verdicts = []
        for requirement in self.requirements:
            if requirement.axiom_id not in available:
                raise AuditError(
                    f"audit report has no result for axiom "
                    f"{requirement.axiom_id} required by policy "
                    f"{self.policy.name!r}"
                )
            score = report.result_for(requirement.axiom_id).score
            verdicts.append(
                RequirementVerdict(
                    axiom_id=requirement.axiom_id,
                    threshold=requirement.threshold,
                    actual_score=score,
                    satisfied=requirement.satisfied_by(score),
                )
            )
        return ContractOutcome(
            policy_name=self.policy.name, verdicts=tuple(verdicts)
        )
