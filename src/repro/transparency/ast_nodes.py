"""AST nodes of the transparency DSL.

A :class:`Policy` is a named list of :class:`DiscloseRule`; each rule
names a :class:`FieldRef` (subject.field), an :class:`Audience`, and an
optional :class:`Condition` comparing a field to a literal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Subject(enum.Enum):
    """Whose information a rule discloses."""

    REQUESTER = "requester"
    WORKER = "worker"
    TASK = "task"
    PLATFORM = "platform"


class Audience(enum.Enum):
    """Who gets to see the disclosure.

    ``SELF`` means "the subject themselves" — e.g.
    ``disclose worker.acceptance_ratio to self`` is the CrowdFlower
    accuracy panel; ``PUBLIC`` is unauthenticated visibility.
    """

    WORKERS = "workers"
    REQUESTERS = "requesters"
    SELF = "self"
    PUBLIC = "public"


class Comparison(enum.Enum):
    GE = ">="
    LE = "<="
    GT = ">"
    LT = "<"
    EQ = "=="
    NE = "!="

    def apply(self, left: object, right: object) -> bool:
        """Evaluate the comparison; ordering on mixed types is False."""
        if self is Comparison.EQ:
            return left == right
        if self is Comparison.NE:
            return left != right
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            return False
        if self is Comparison.GE:
            return left >= right
        if self is Comparison.LE:
            return left <= right
        if self is Comparison.GT:
            return left > right
        return left < right


@dataclass(frozen=True)
class FieldRef:
    """``subject.field`` — e.g. ``requester.hourly_wage``."""

    subject: Subject
    field: str

    def __str__(self) -> str:
        return f"{self.subject.value}.{self.field}"


@dataclass(frozen=True)
class Condition:
    """``when subject.field <op> literal``."""

    field: FieldRef
    op: Comparison
    literal: object

    def __str__(self) -> str:
        literal = (
            f'"{self.literal}"' if isinstance(self.literal, str) else
            str(self.literal).lower() if isinstance(self.literal, bool) else
            str(self.literal)
        )
        return f"when {self.field} {self.op.value} {literal}"


@dataclass(frozen=True)
class DiscloseRule:
    """``disclose subject.field to audience [when ...];``"""

    field: FieldRef
    audience: Audience
    condition: Condition | None = None

    def __str__(self) -> str:
        base = f"disclose {self.field} to {self.audience.value}"
        if self.condition is not None:
            base = f"{base} {self.condition}"
        return f"{base};"


@dataclass(frozen=True)
class FairnessRequirement:
    """``require axiom <n> score >= <threshold>;``

    A declarative *fairness rule* (Section 3.3.2): a minimum audit
    score the platform commits to on one of the paper's axioms.
    :class:`repro.transparency.contracts.AuditContract` checks an
    :class:`~repro.core.audit.AuditReport` against these commitments.
    """

    axiom_id: int
    op: Comparison
    threshold: float

    def __str__(self) -> str:
        return (
            f"require axiom {self.axiom_id} score {self.op.value} "
            f"{self.threshold:g};"
        )

    def satisfied_by(self, score: float) -> bool:
        return self.op.apply(score, self.threshold)


@dataclass(frozen=True)
class Policy:
    """A named set of disclosure rules and fairness requirements."""

    name: str
    rules: tuple[DiscloseRule, ...]
    requirements: tuple[FairnessRequirement, ...] = ()

    def __str__(self) -> str:
        lines = [f"  {rule}" for rule in self.rules]
        lines.extend(f"  {req}" for req in self.requirements)
        body = "\n".join(lines)
        return f'policy "{self.name}" {{\n{body}\n}}'

    def rules_for(self, subject: Subject) -> tuple[DiscloseRule, ...]:
        return tuple(rule for rule in self.rules if rule.field.subject is subject)

    def disclosed_fields(self, subject: Subject) -> frozenset[str]:
        """Fields of ``subject`` disclosed by at least one rule."""
        return frozenset(
            rule.field.field for rule in self.rules if rule.field.subject is subject
        )
