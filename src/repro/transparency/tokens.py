"""Lexer for the transparency DSL.

Token kinds: keywords (``policy``, ``disclose``, ``to``, ``when``),
identifiers, string/number/boolean literals, punctuation (``{ } . ;``)
and comparison operators.  ``#`` starts a comment to end of line.
Positions are tracked for error reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import PolicySyntaxError


class TokenType(enum.Enum):
    POLICY = "policy"
    DISCLOSE = "disclose"
    REQUIRE = "require"
    TO = "to"
    WHEN = "when"
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    BOOLEAN = "boolean"
    DOT = "."
    SEMICOLON = ";"
    LBRACE = "{"
    RBRACE = "}"
    OP = "op"
    EOF = "eof"


_KEYWORDS = {
    "policy": TokenType.POLICY,
    "disclose": TokenType.DISCLOSE,
    "require": TokenType.REQUIRE,
    "to": TokenType.TO,
    "when": TokenType.WHEN,
}

_BOOLEANS = {"true": True, "false": False}

_OPERATORS = (">=", "<=", "==", "!=", ">", "<")

_PUNCTUATION = {
    ".": TokenType.DOT,
    ";": TokenType.SEMICOLON,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
}


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: object
    line: int
    column: int

    def __repr__(self) -> str:  # keeps parser errors readable
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize DSL source text; raises :class:`PolicySyntaxError`."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char in _PUNCTUATION:
            yield Token(_PUNCTUATION[char], char, line, column)
            index += 1
            column += 1
            continue
        matched_op = next(
            (op for op in _OPERATORS if source.startswith(op, index)), None
        )
        if matched_op is not None:
            yield Token(TokenType.OP, matched_op, line, column)
            index += len(matched_op)
            column += len(matched_op)
            continue
        if char == '"':
            end = source.find('"', index + 1)
            if end == -1:
                raise PolicySyntaxError("unterminated string literal", line, column)
            value = source[index + 1 : end]
            if "\n" in value:
                raise PolicySyntaxError(
                    "string literal spans multiple lines", line, column
                )
            yield Token(TokenType.STRING, value, line, column)
            column += end - index + 1
            index = end + 1
            continue
        if char.isdigit() or (
            char == "-" and index + 1 < length and source[index + 1].isdigit()
        ):
            start = index
            index += 1
            while index < length and (source[index].isdigit() or source[index] == "."):
                index += 1
            text = source[start:index]
            if text.count(".") > 1:
                raise PolicySyntaxError(f"malformed number {text!r}", line, column)
            value = float(text) if "." in text else int(text)
            yield Token(TokenType.NUMBER, value, line, column)
            column += index - start
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            word = source[start:index]
            if word in _KEYWORDS:
                yield Token(_KEYWORDS[word], word, line, column)
            elif word in _BOOLEANS:
                yield Token(TokenType.BOOLEAN, _BOOLEANS[word], line, column)
            else:
                yield Token(TokenType.IDENT, word, line, column)
            column += index - start
            continue
        raise PolicySyntaxError(f"unexpected character {char!r}", line, column)
    yield Token(TokenType.EOF, None, line, column)
