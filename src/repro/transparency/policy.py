"""The TransparencyPolicy facade: parse + validate + measure coverage.

``TransparencyPolicy`` is the object the rest of the library works
with: built from DSL source (validated on construction), it reports
*coverage* — the fraction of the axiom-mandated fields it disclosures —
which is what drives retention mitigation in the session model and the
Axiom 6/7 relationship in E2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.axiom_transparency import (
    REQUESTER_MANDATED_FIELDS,
    WORKER_MANDATED_FIELDS,
)
from repro.transparency.ast_nodes import Audience, Policy, Subject
from repro.transparency.parser import parse_policy
from repro.transparency.semantics import DisclosureSchema, validate_policy


@dataclass(frozen=True)
class TransparencyPolicy:
    """A validated transparency policy."""

    ast: Policy
    schema: DisclosureSchema = field(default_factory=DisclosureSchema)

    def __post_init__(self) -> None:
        validate_policy(self.ast, self.schema)

    @classmethod
    def from_source(
        cls, source: str, schema: DisclosureSchema | None = None
    ) -> "TransparencyPolicy":
        """Parse + validate DSL source."""
        return cls(ast=parse_policy(source), schema=schema or DisclosureSchema())

    @property
    def name(self) -> str:
        return self.ast.name

    @property
    def rule_count(self) -> int:
        return len(self.ast.rules)

    def to_source(self) -> str:
        """Serialize back to DSL text (parse(to_source()) round-trips)."""
        return str(self.ast)

    # ------------------------------------------------------------------
    # Coverage: how much of the mandated surface the policy disclosures

    def mandated_coverage(self) -> float:
        """Fraction of the Axiom 6 + Axiom 7 mandated fields disclosed.

        Axiom 6 fields count when disclosed to workers or public;
        Axiom 7 fields when disclosed at least to the worker themselves
        (self), workers, or public.
        """
        requester_ok = self.ast.disclosed_fields(Subject.REQUESTER) & {
            rule.field.field
            for rule in self.ast.rules_for(Subject.REQUESTER)
            if rule.audience in (Audience.WORKERS, Audience.PUBLIC)
        }
        worker_ok = {
            rule.field.field
            for rule in self.ast.rules_for(Subject.WORKER)
            if rule.audience in (Audience.SELF, Audience.WORKERS, Audience.PUBLIC)
        }
        mandated = len(REQUESTER_MANDATED_FIELDS) + len(WORKER_MANDATED_FIELDS)
        covered = len(
            requester_ok & set(REQUESTER_MANDATED_FIELDS)
        ) + len(worker_ok & set(WORKER_MANDATED_FIELDS))
        return covered / mandated if mandated else 1.0

    def schema_coverage(self) -> float:
        """Fraction of *all* schema fields disclosed to anyone."""
        total = self.schema.total_field_count()
        if total == 0:
            return 1.0
        disclosed = sum(
            len(self.ast.disclosed_fields(subject)) for subject in Subject
        )
        return disclosed / total

    def missing_mandated_fields(self) -> dict[str, list[str]]:
        """Mandated fields not disclosed, keyed by subject."""
        requester_disclosed = {
            rule.field.field
            for rule in self.ast.rules_for(Subject.REQUESTER)
            if rule.audience in (Audience.WORKERS, Audience.PUBLIC)
        }
        worker_disclosed = {
            rule.field.field
            for rule in self.ast.rules_for(Subject.WORKER)
            if rule.audience in (Audience.SELF, Audience.WORKERS, Audience.PUBLIC)
        }
        return {
            "requester": sorted(
                set(REQUESTER_MANDATED_FIELDS) - requester_disclosed
            ),
            "worker": sorted(set(WORKER_MANDATED_FIELDS) - worker_disclosed),
        }
