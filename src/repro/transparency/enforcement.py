"""Policy enforcement inside the simulator.

:class:`PolicyEnforcer` wires a validated policy into a
:class:`~repro.platform.market.CrowdsourcingPlatform`: each round it
evaluates the policy over the platform's current requesters, workers,
and open tasks, and records the resulting disclosures as
:class:`~repro.core.events.DisclosureShown` trace events — which is
what makes the Axiom 6/7 checkers pass for covered fields, and what the
session's satisfaction model perceives as transparency.

It implements the :class:`repro.platform.session.TransparencyEnforcer`
protocol (``coverage`` + ``apply_round``).
"""

from __future__ import annotations

from typing import Mapping

from repro.platform.market import CrowdsourcingPlatform
from repro.transparency.evaluator import PolicyEvaluator
from repro.transparency.policy import TransparencyPolicy


class PolicyEnforcer:
    """Applies a transparency policy to a platform every round."""

    def __init__(
        self,
        policy: TransparencyPolicy,
        platform_stats: Mapping[str, object] | None = None,
    ) -> None:
        self.policy = policy
        self._stats = dict(platform_stats or {})
        self.coverage = policy.mandated_coverage()
        # Avoid re-emitting byte-identical disclosures every round: the
        # axiom checkers need each (subject, field) once, and duplicate
        # events only bloat traces.
        self._already_disclosed: set[tuple[str, str, object]] = set()

    @property
    def name(self) -> str:
        return f"enforcer({self.policy.name})"

    def apply_round(self, platform: CrowdsourcingPlatform) -> None:
        stats = dict(self._stats)
        stats.setdefault("active_workers", len(platform.active_workers))
        evaluator = PolicyEvaluator(self.policy, platform_stats=stats)
        disclosures = evaluator.evaluate(
            requesters=platform.trace.requesters.values(),
            workers=platform.workers.values(),
            tasks=platform.open_tasks,
        )
        for disclosure in disclosures:
            key = (
                disclosure.subject,
                disclosure.field_name,
                _freeze(disclosure.value),
            )
            if key in self._already_disclosed:
                continue
            self._already_disclosed.add(key)
            platform.disclose(
                subject=disclosure.subject,
                field_name=disclosure.field_name,
                value=disclosure.value,
                audience_worker_id=disclosure.audience_worker_id,
            )


def _freeze(value: object) -> object:
    """A hashable stand-in for a disclosure value."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, float):
        return round(value, 6)
    return value
