"""Cross-platform policy comparison.

The paper argues a declarative form "would also facilitate sharing and
comparing transparency choices across platforms".  A
:class:`PolicyDiff` lists the rules unique to each side and shared
rules, and compares mandated coverage — e.g. showing exactly which
disclosures Turkopticon adds on top of stock AMT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transparency.ast_nodes import DiscloseRule
from repro.transparency.policy import TransparencyPolicy
from repro.transparency.render import render_rule


@dataclass(frozen=True)
class PolicyDiff:
    """The structural difference between two policies."""

    left_name: str
    right_name: str
    only_left: tuple[DiscloseRule, ...]
    only_right: tuple[DiscloseRule, ...]
    shared: tuple[DiscloseRule, ...]
    left_coverage: float
    right_coverage: float

    @property
    def identical(self) -> bool:
        return not self.only_left and not self.only_right

    @property
    def right_is_superset(self) -> bool:
        """True when the right policy discloses everything the left does."""
        return not self.only_left

    @property
    def coverage_gap(self) -> float:
        """right coverage - left coverage (positive: right discloses more)."""
        return self.right_coverage - self.left_coverage

    def summary_lines(self) -> list[str]:
        lines = [
            f"{self.left_name} (coverage {self.left_coverage:.2f}) vs "
            f"{self.right_name} (coverage {self.right_coverage:.2f})",
            f"  shared rules: {len(self.shared)}",
        ]
        if self.only_left:
            lines.append(f"  only in {self.left_name}:")
            lines.extend(f"    - {render_rule(rule)}" for rule in self.only_left)
        if self.only_right:
            lines.append(f"  only in {self.right_name}:")
            lines.extend(f"    - {render_rule(rule)}" for rule in self.only_right)
        if self.identical:
            lines.append("  the policies are identical")
        return lines


def compare_policies(
    left: TransparencyPolicy, right: TransparencyPolicy
) -> PolicyDiff:
    """Structural diff of two validated policies.

    Rules compare by (field, audience, condition) — names do not
    matter, so the same disclosure expressed by two platforms matches.
    """
    left_rules = set(left.ast.rules)
    right_rules = set(right.ast.rules)
    return PolicyDiff(
        left_name=left.name,
        right_name=right.name,
        only_left=tuple(sorted(left_rules - right_rules, key=str)),
        only_right=tuple(sorted(right_rules - left_rules, key=str)),
        shared=tuple(sorted(left_rules & right_rules, key=str)),
        left_coverage=left.mandated_coverage(),
        right_coverage=right.mandated_coverage(),
    )
