"""The declarative transparency language and its toolchain.

Sections 1 and 3.3.2 call for "declarative languages to help requesters
and platform developers express what they want to make transparent",
with rules that "can also be translated into human-readable descriptions
for workers' consumption" and whose "declarative nature ... will allow
easy comparison across platforms".  This package is that language:

* grammar (``policy "name" { disclose subject.field to audience
  [when condition]; ... }``) — :mod:`repro.transparency.tokens`,
  :mod:`repro.transparency.parser`;
* semantic validation against the schema of disclosable fields —
  :mod:`repro.transparency.semantics`;
* evaluation: applying a policy to live entities produces concrete
  disclosures — :mod:`repro.transparency.evaluator`;
* human-readable rendering — :mod:`repro.transparency.render`;
* cross-platform comparison — :mod:`repro.transparency.compare`;
* presets encoding AMT, CrowdFlower, Turkopticon-augmented AMT,
  MobileWorks, and the extremes — :mod:`repro.transparency.presets`;
* enforcement inside the simulator — :mod:`repro.transparency.enforcement`.
"""

from repro.transparency.ast_nodes import (
    Audience,
    Comparison,
    Condition,
    DiscloseRule,
    FairnessRequirement,
    FieldRef,
    Policy,
    Subject,
)
from repro.transparency.compare import PolicyDiff, compare_policies
from repro.transparency.contracts import (
    AuditContract,
    ContractOutcome,
    RequirementVerdict,
)
from repro.transparency.enforcement import PolicyEnforcer
from repro.transparency.evaluator import Disclosure, PolicyEvaluator
from repro.transparency.parser import parse_policy
from repro.transparency.policy import TransparencyPolicy
from repro.transparency.presets import PRESETS, preset
from repro.transparency.render import render_policy, render_rule
from repro.transparency.semantics import DisclosureSchema, validate_policy

__all__ = [
    "Audience",
    "AuditContract",
    "Comparison",
    "Condition",
    "ContractOutcome",
    "DiscloseRule",
    "Disclosure",
    "DisclosureSchema",
    "FairnessRequirement",
    "FieldRef",
    "RequirementVerdict",
    "PRESETS",
    "Policy",
    "PolicyDiff",
    "PolicyEnforcer",
    "PolicyEvaluator",
    "Subject",
    "TransparencyPolicy",
    "compare_policies",
    "parse_policy",
    "preset",
    "render_policy",
    "render_rule",
    "validate_policy",
]
