"""Live ingestion: tail external platform exports into audited stores.

The paper's axioms are meant to be checked against *running*
platforms.  This package closes the gap between a platform's export
files — JSONL logs, segment directories, CSV dumps, possibly still
growing — and the TraceStore + delta-audit machinery:

* :mod:`repro.ingest.sources` — the :class:`IngestSource` protocol and
  the shipped tailers (JSONL file, persistent segment directory,
  mapped CSV), all normalising through :mod:`repro.core.serialize`;
  :mod:`repro.ingest.http_source` adds :class:`HTTPIngestSource`, the
  tailer over an audit-service tenant's export endpoint.
* :mod:`repro.ingest.checkpoint` — atomic, checksummed resume tokens
  binding a source position to a destination store revision.
* :mod:`repro.ingest.runner` — :class:`IngestRunner`, the cadenced
  poll → batched append → delta audit → checkpoint loop, with
  :meth:`IngestRunner.resume` for exactly-once continuation after a
  kill.
* :mod:`repro.ingest.pipeline` — :class:`PipelinedIngestRunner`, the
  same cycle as three overlapped stages over bounded queues (poll ∥
  append+checkpoint ∥ coalescing delta audit) with backpressure and an
  audit-lag watermark; :class:`MergedSource` (in ``sources``) feeds it
  N exports interleaved by event time under one atomic checkpoint.

CLI counterparts: ``python -m repro trace tail`` and ``trace resume``
(``--pipeline``, repeatable ``SRC``).
"""

from __future__ import annotations

from repro.ingest.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    IngestCheckpoint,
    checkpoint_path_for,
    read_checkpoint,
    write_checkpoint,
)
from repro.ingest.http_source import HTTPIngestSource
from repro.ingest.pipeline import (
    PipelinedIngestRunner,
    validate_pipeline_options,
)
from repro.ingest.runner import IngestBatch, IngestRunner, IngestSummary
from repro.ingest.sources import (
    SOURCE_KINDS,
    CSVExportSource,
    CSVMapping,
    IngestSource,
    JSONLExportSource,
    MergedSource,
    SegmentDirectorySource,
    export_jsonl,
    resolve_source,
)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CSVExportSource",
    "CSVMapping",
    "HTTPIngestSource",
    "IngestBatch",
    "IngestCheckpoint",
    "IngestRunner",
    "IngestSource",
    "IngestSummary",
    "JSONLExportSource",
    "MergedSource",
    "PipelinedIngestRunner",
    "SOURCE_KINDS",
    "SegmentDirectorySource",
    "checkpoint_path_for",
    "export_jsonl",
    "read_checkpoint",
    "resolve_source",
    "validate_pipeline_options",
    "write_checkpoint",
]
