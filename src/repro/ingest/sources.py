"""Ingest sources: tail external platform exports as ``Event`` streams.

The audit stack consumes :class:`~repro.core.events.Event` objects; a
real platform exports *files* — and keeps writing to them.  An
:class:`IngestSource` bridges the two: it reads whatever new, complete
records an export has accumulated since the last poll, normalises each
through the :mod:`repro.core.serialize` codecs, and exposes a JSON-able
``position`` token so a checkpointed runner can stop and resume without
skipping or duplicating a record.  Three sources ship here, mirroring
the exporter/adapter layering of real log tooling (many source formats,
one normalised event stream):

* :class:`JSONLExportSource` — a single growing JSONL file, one event
  dict per line (:func:`repro.core.serialize.event_to_dict` schema).
* :class:`SegmentDirectorySource` — a
  :class:`~repro.core.store.persistent.PersistentTraceStore` segment
  directory (``events-00000.jsonl``, ``events-00001.jsonl``, …): the
  format one repro process writes and another tails.
* :class:`CSVExportSource` — a CSV export with a configurable
  column→event-field mapping (:class:`CSVMapping`) for platforms whose
  dumps are tabular rather than JSON.

Torn tails: appends to a live export are not atomic, so the newest line
may be half-written.  Where :meth:`PersistentTraceStore.open` recovers
a torn tail by truncating it (the file is *done* growing), a tailer
must assume the opposite — the bytes after the last newline may still
be arriving — so every source here consumes **complete (newline-
terminated) lines only** and leaves an unterminated tail unread until a
later poll sees its newline.  Truncation or rotation of the source
(size shrinking below the read offset, the inode changing, the file
disappearing) raises :class:`~repro.errors.IngestError` rather than
silently re-reading: the operator decides whether the old offsets still
mean anything.
"""

from __future__ import annotations

import abc
import csv
import io
import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.core.serialize import event_from_dict, event_to_dict
from repro.core.store.persistent import (
    _SEGMENT_PREFIX,
    _SEGMENT_SUFFIX,
    _segment_name,
)
from repro.errors import IngestError, TraceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import Event


class IngestSource(abc.ABC):
    """A resumable, pull-based reader over an external platform export.

    The contract all sources share:

    * :meth:`poll` returns up to ``max_records`` newly completed records
      as :class:`~repro.core.events.Event` objects and advances the
      source position past exactly those records.  An empty list means
      "nothing new yet", never "end of stream" — exports grow.
    * :attr:`position` is a JSON-able token identifying the next unread
      record; :meth:`seek` restores it.  ``poll → position → seek →
      poll`` across process restarts yields every record exactly once.
    * :meth:`describe` identifies the source (kind + path) so a resume
      token can refuse to drive a *different* export.
    """

    #: Stable name used by checkpoints and the CLI ``--source`` flag.
    source_kind: str = "abstract"

    @abc.abstractmethod
    def poll(self, max_records: int) -> "list[Event]":
        """Up to ``max_records`` new events; advances the position."""

    @property
    @abc.abstractmethod
    def position(self) -> dict[str, Any]:
        """JSON-able token for the next unread record."""

    @abc.abstractmethod
    def seek(self, position: Mapping[str, Any]) -> None:
        """Restore a token previously read from :attr:`position`."""

    @abc.abstractmethod
    def describe(self) -> dict[str, Any]:
        """Source identity (``kind`` + ``path``) for checkpoints."""

    def skip_records(self, count: int) -> int:
        """Advance past ``count`` records without using them.

        The resume path uses this to reconcile a destination store that
        is *ahead* of the checkpoint (killed after the batch append but
        before the checkpoint write): the surplus events are already
        stored, so their source records are skipped.  Returns how many
        records were actually available to skip.
        """
        skipped = 0
        while skipped < count:
            batch = self.poll(count - skipped)
            if not batch:
                break
            skipped += len(batch)
        return skipped

    def close(self) -> None:  # pragma: no cover - stateless sources
        """Release any held resources (default: nothing held)."""

    def __enter__(self) -> "IngestSource":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Shared line-tail machinery


def _decode_record(raw: bytes, label: str) -> dict[str, Any] | None:
    """One complete JSONL line -> event dict (``None`` for blank lines)."""
    try:
        line = raw.decode("utf-8").strip()
        return json.loads(line) if line else None
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise IngestError(
            f"corrupt record in {label}: {error}"
        ) from None


def _record_to_event(data: dict[str, Any], label: str) -> "Event":
    try:
        return event_from_dict(data)
    except TraceError as error:
        raise IngestError(
            f"unrecognised record in {label}: {error}"
        ) from None


def _stat_guard(
    path: str, offset: int, signature: tuple[int, int] | None
) -> tuple[os.stat_result, tuple[int, int]]:
    """Stat ``path`` and fail loudly on rotation/truncation.

    Returns the stat plus the (device, inode) signature to remember.
    """
    try:
        stat = os.stat(path)
    except FileNotFoundError:
        raise IngestError(
            f"source file {path!r} disappeared (deleted or rotated away); "
            "refusing to continue from a stale offset"
        ) from None
    current = (stat.st_dev, stat.st_ino)
    if signature is not None and current != signature:
        raise IngestError(
            f"source file {path!r} was replaced (inode changed — log "
            "rotation?); the read offset no longer addresses this file"
        )
    if stat.st_size < offset:
        raise IngestError(
            f"source file {path!r} shrank below the read offset "
            f"({stat.st_size} < {offset} bytes — truncated or rotated); "
            "refusing to re-read silently"
        )
    return stat, current


def _read_complete_lines(
    path: str, offset: int, max_records: int, label: str
) -> tuple[list[dict[str, Any]], int, bool]:
    """Read up to ``max_records`` complete-line records from ``offset``.

    Returns ``(records, new_offset, saw_torn_tail)``.  A trailing line
    without its newline is never consumed — it may still be growing.
    Lines are read one at a time (buffered), so polling a multi-GB
    backlog costs memory proportional to the batch, not the file.
    """
    records: list[dict[str, Any]] = []
    torn = False
    with open(path, "rb") as handle:
        handle.seek(offset)
        while len(records) < max_records:
            raw = handle.readline()
            if not raw:
                break
            if not raw.endswith(b"\n"):
                torn = True
                break
            data = _decode_record(raw, f"{label} at byte {offset}")
            offset += len(raw)
            if data is not None:
                records.append(data)
    return records, offset, torn


def _signature_token(signature: tuple[int, int] | None) -> dict[str, int]:
    """The (device, inode) identity as position-token fields, so
    rotation detection survives a kill/resume (the checkpoint carries
    the identity of the file the offset belongs to)."""
    if signature is None:
        return {}
    return {"dev": signature[0], "ino": signature[1]}


def _signature_from_token(
    position: Mapping[str, Any]
) -> tuple[int, int] | None:
    dev, ino = position.get("dev"), position.get("ino")
    if isinstance(dev, int) and isinstance(ino, int):
        return (dev, ino)
    return None


# ----------------------------------------------------------------------
# JSONL file tailer


class JSONLExportSource(IngestSource):
    """Tail one growing JSONL file (one event dict per line).

    ``position`` is the byte offset of the next unread line.  The file
    may not exist yet on early polls (an adapter that has not produced
    output is "nothing new", not an error) — but once read, the file
    disappearing, shrinking below the offset, or changing inode raises
    :class:`~repro.errors.IngestError`.
    """

    source_kind = "jsonl"

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self._path = os.fspath(path)
        self._offset = 0
        self._signature: tuple[int, int] | None = None

    @property
    def path(self) -> str:
        return self._path

    @property
    def position(self) -> dict[str, Any]:
        return {"offset": self._offset, **_signature_token(self._signature)}

    def seek(self, position: Mapping[str, Any]) -> None:
        offset = position.get("offset")
        if not isinstance(offset, int) or offset < 0:
            raise IngestError(
                f"invalid {self.source_kind} source position {position!r}; "
                "expected {'offset': <byte offset>}"
            )
        self._offset = offset
        # Restore the file identity when the token carries one, so a
        # rotation that happened while we were down is still detected.
        self._signature = _signature_from_token(position)

    def describe(self) -> dict[str, Any]:
        return {"kind": self.source_kind, "path": os.path.abspath(self._path)}

    def poll(self, max_records: int) -> "list[Event]":
        if max_records < 1:
            raise IngestError(f"max_records must be >= 1, got {max_records}")
        if self._offset == 0 and self._signature is None and not os.path.exists(
            self._path
        ):
            return []  # nothing exported yet
        stat, self._signature = _stat_guard(
            self._path, self._offset, self._signature
        )
        if stat.st_size == self._offset:
            return []
        records, self._offset, _ = _read_complete_lines(
            self._path, self._offset, max_records, self._path
        )
        return [_record_to_event(data, self._path) for data in records]


# ----------------------------------------------------------------------
# Persistent segment-directory tailer


class SegmentDirectorySource(IngestSource):
    """Tail a :class:`PersistentTraceStore` segment directory.

    One repro process captures a platform run with the persistent
    backend; another tails the directory as it grows.  ``position`` is
    ``{"segment": index, "offset": bytes}``.  Only the *newest* segment
    may have a torn tail (the writer rolls segments between complete
    lines); an unterminated line in a sealed segment — one with a
    successor — is corruption and raises.
    """

    source_kind = "segments"

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self._path = os.fspath(path)
        self._segment = 0
        self._offset = 0

    @property
    def path(self) -> str:
        return self._path

    @property
    def position(self) -> dict[str, Any]:
        return {"segment": self._segment, "offset": self._offset}

    def seek(self, position: Mapping[str, Any]) -> None:
        segment = position.get("segment")
        offset = position.get("offset")
        if (
            not isinstance(segment, int) or segment < 0
            or not isinstance(offset, int) or offset < 0
        ):
            raise IngestError(
                f"invalid {self.source_kind} source position {position!r}; "
                "expected {'segment': <index>, 'offset': <byte offset>}"
            )
        self._segment = segment
        self._offset = offset

    def describe(self) -> dict[str, Any]:
        return {"kind": self.source_kind, "path": os.path.abspath(self._path)}

    def _segment_indexes(self) -> list[int]:
        try:
            names = os.listdir(self._path)
        except FileNotFoundError:
            raise IngestError(
                f"segment directory {self._path!r} disappeared "
                "(deleted or rotated away)"
            ) from None
        indexes = []
        for name in names:
            if not (
                name.startswith(_SEGMENT_PREFIX)
                and name.endswith(_SEGMENT_SUFFIX)
            ):
                continue
            stem = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
            try:
                indexes.append(int(stem))
            except ValueError:
                raise IngestError(
                    f"unexpected file {name!r} in segment directory "
                    f"{self._path!r}: segment names must be "
                    f"{_SEGMENT_PREFIX}<number>{_SEGMENT_SUFFIX}"
                ) from None
        return sorted(indexes)

    def poll(self, max_records: int) -> "list[Event]":
        if max_records < 1:
            raise IngestError(f"max_records must be >= 1, got {max_records}")
        present = self._segment_indexes()
        records: list[dict[str, Any]] = []
        while len(records) < max_records:
            if self._segment not in present:
                if any(index > self._segment for index in present):
                    raise IngestError(
                        f"segment {_segment_name(self._segment)} is missing "
                        f"from {self._path!r} but later segments exist; "
                        "the log is damaged or was rewritten"
                    )
                break  # the writer has not started this segment yet
            name = os.path.join(self._path, _segment_name(self._segment))
            _stat_guard(name, self._offset, None)
            batch, self._offset, torn = _read_complete_lines(
                name, self._offset, max_records - len(records), name
            )
            records.extend(batch)
            sealed = any(index > self._segment for index in present)
            if torn and sealed:
                raise IngestError(
                    f"sealed segment {name!r} ends in an unterminated "
                    "line; the log is damaged (only the newest segment "
                    "may have a torn tail)"
                )
            if len(records) >= max_records:
                break
            if sealed and not torn:
                with open(name, "rb") as handle:
                    handle.seek(0, os.SEEK_END)
                    size = handle.tell()
                if self._offset == size:
                    self._segment += 1
                    self._offset = 0
                    continue
            break  # caught up with the newest segment (or mid-read)
        return [
            _record_to_event(data, self._path) for data in records
        ]


# ----------------------------------------------------------------------
# CSV export source


def _decode_cell(cell: str) -> Any:
    """JSON-decode a CSV cell where possible, else keep the string.

    ``"3"`` → 3, ``"3.5"`` → 3.5, ``"true"`` → True, ``"null"`` → None,
    ``'["t1","t2"]'`` → list; anything unparseable stays a string —
    platform exports quote ids and enum-ish fields without JSON quoting.
    """
    try:
        return json.loads(cell)
    except (json.JSONDecodeError, ValueError):
        return cell


@dataclass(frozen=True)
class CSVMapping:
    """How a CSV export's columns become event-dict fields.

    ``columns`` maps CSV column name → event field name (``"time"``,
    ``"kind"``, ``"worker_id"``, …); cells are JSON-decoded where
    possible (see :func:`_decode_cell`).  ``constants`` supplies fields
    the export does not carry per row — e.g. a payments-only export
    maps ``{"constants": {"kind": "payment_issued"}}``.  Unmapped CSV
    columns are ignored.
    """

    columns: Mapping[str, str]
    constants: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.columns and not self.constants:
            raise IngestError("a CSV mapping needs columns or constants")

    def record(self, header: list[str], cells: list[str], label: str) -> dict:
        if len(cells) != len(header):
            raise IngestError(
                f"malformed CSV row in {label}: {len(cells)} cell(s) "
                f"for {len(header)} column(s)"
            )
        record: dict[str, Any] = dict(self.constants)
        by_column = dict(zip(header, cells))
        for column, field_name in self.columns.items():
            if column not in by_column:
                raise IngestError(
                    f"CSV export {label} has no column {column!r} "
                    f"(columns: {', '.join(header)})"
                )
            record[field_name] = _decode_cell(by_column[column])
        return record


class CSVExportSource(IngestSource):
    """Tail a CSV export whose rows map onto events via a ``CSVMapping``.

    The first line must be a header naming every mapped column; the
    position token is the byte offset of the next unread row (the
    header is re-read on demand, so tokens survive restarts).  Rows
    must not contain embedded newlines — a streaming tailer cannot
    distinguish a quoted newline from a torn tail.
    """

    source_kind = "csv"

    def __init__(
        self, path: str | os.PathLike[str], mapping: CSVMapping
    ) -> None:
        self._path = os.fspath(path)
        self._mapping = mapping
        self._offset = 0  # 0 = header not yet consumed
        self._header: list[str] | None = None
        self._signature: tuple[int, int] | None = None

    @property
    def path(self) -> str:
        return self._path

    @property
    def position(self) -> dict[str, Any]:
        return {"offset": self._offset, **_signature_token(self._signature)}

    def seek(self, position: Mapping[str, Any]) -> None:
        offset = position.get("offset")
        if not isinstance(offset, int) or offset < 0:
            raise IngestError(
                f"invalid {self.source_kind} source position {position!r}; "
                "expected {'offset': <byte offset>}"
            )
        self._offset = offset
        self._header = None
        self._signature = _signature_from_token(position)

    def describe(self) -> dict[str, Any]:
        return {"kind": self.source_kind, "path": os.path.abspath(self._path)}

    def _parse_row(self, line: str) -> list[str]:
        return next(csv.reader(io.StringIO(line)))

    def _ensure_header(self) -> bool:
        """Consume the header line; False when it has not arrived yet."""
        if self._header is not None:
            return True
        with open(self._path, "rb") as handle:
            header_raw = handle.readline()
        if not header_raw.endswith(b"\n"):
            return False  # header still being written
        try:
            self._header = self._parse_row(header_raw.decode("utf-8"))
        except (UnicodeDecodeError, csv.Error) as error:
            raise IngestError(
                f"unreadable CSV header in {self._path!r}: {error}"
            ) from None
        if self._offset == 0:
            self._offset = len(header_raw)
        return True

    def poll(self, max_records: int) -> "list[Event]":
        if max_records < 1:
            raise IngestError(f"max_records must be >= 1, got {max_records}")
        if self._offset == 0 and self._signature is None and not os.path.exists(
            self._path
        ):
            return []
        stat, self._signature = _stat_guard(
            self._path, self._offset, self._signature
        )
        if not self._ensure_header() or stat.st_size == self._offset:
            return []
        events: "list[Event]" = []
        assert self._header is not None
        with open(self._path, "rb") as handle:
            handle.seek(self._offset)
            while len(events) < max_records:
                raw = handle.readline()
                if not raw or not raw.endswith(b"\n"):
                    break  # caught up, or torn tail: wait for the newline
                label = f"{self._path} at byte {self._offset}"
                try:
                    line = raw.decode("utf-8")
                except UnicodeDecodeError as error:
                    raise IngestError(
                        f"corrupt record in {label}: {error}"
                    ) from None
                self._offset += len(raw)
                if not line.strip():
                    continue
                cells = self._parse_row(line)
                record = self._mapping.record(self._header, cells, label)
                events.append(_record_to_event(record, label))
        return events


# ----------------------------------------------------------------------
# Multi-source time merge


class MergedSource(IngestSource):
    """Interleave N sources into one time-ordered event stream.

    A federated platform exports several logs (one per region, shard,
    or adapter); the destination store enforces a single non-decreasing
    event-time order.  ``MergedSource`` merges its children the way a
    k-way merge of sorted runs does: it holds at most one *peeked*
    record per child and always emits the head with the smallest
    ``(event.time, child index)`` — deterministic for any poll pattern,
    so ingest through a merge is exactly reproducible (and therefore
    checkpointable).

    Positions: children are polled one record at a time, so each
    child's **committed** position (its token *before* the currently
    peeked record) is exact.  :attr:`position` packs every committed
    child token plus the merge watermark (the last emitted event time)
    into a single JSON-able dict — one atomic checkpoint covers all N
    sources.  :meth:`seek` restores all of them and drops the peeks.

    Late arrivals fail loudly: once time ``t`` has been emitted, a
    child producing a record with time ``< t`` raises
    :class:`~repro.errors.IngestError` — emitting it would break the
    destination's time-order invariant, and silently dropping or
    reordering it would falsify the audit.  Coordinated exports (all
    children flushed up to a common time before polling resumes) never
    trip this.
    """

    source_kind = "merged"

    def __init__(self, sources: "Iterable[IngestSource]") -> None:
        self._sources = tuple(sources)
        if len(self._sources) < 2:
            raise IngestError(
                "MergedSource interleaves several exports; got "
                f"{len(self._sources)} source(s) — use the source "
                "directly instead of merging one"
            )
        self._heads: "list[Event | None]" = [None] * len(self._sources)
        # Child position after the peeked head was consumed from it.
        self._after: "list[dict[str, Any] | None]" = (
            [None] * len(self._sources)
        )
        # Child position before the peeked head: the resume point.
        self._committed: "list[dict[str, Any]]" = [
            dict(child.position) for child in self._sources
        ]
        self._watermark: int | None = None
        # Runtime federation counters behind ``source_stats``: events
        # emitted from each child and the last emitted time per child.
        # Counters cover this process's run (they reset on seek), which
        # is what a live ``trace stats`` snapshot reports.
        self._emitted: list[int] = [0] * len(self._sources)
        self._child_watermark: "list[int | None]" = (
            [None] * len(self._sources)
        )

    @property
    def sources(self) -> "tuple[IngestSource, ...]":
        return self._sources

    @property
    def position(self) -> dict[str, Any]:
        token: dict[str, Any] = {
            "sources": [dict(position) for position in self._committed]
        }
        if self._watermark is not None:
            token["watermark"] = self._watermark
        return token

    def seek(self, position: Mapping[str, Any]) -> None:
        tokens = position.get("sources")
        watermark = position.get("watermark")
        if (
            not isinstance(tokens, list)
            or len(tokens) != len(self._sources)
            or not all(isinstance(token, dict) for token in tokens)
            or not (watermark is None or isinstance(watermark, int))
        ):
            raise IngestError(
                f"invalid {self.source_kind} source position "
                f"{position!r}; expected {{'sources': [<one token per "
                f"child>  x{len(self._sources)}], 'watermark': <time>}}"
            )
        for child, token in zip(self._sources, tokens):
            child.seek(token)
        self._committed = [dict(token) for token in tokens]
        self._heads = [None] * len(self._sources)
        self._after = [None] * len(self._sources)
        self._watermark = watermark
        self._emitted = [0] * len(self._sources)
        self._child_watermark = [None] * len(self._sources)

    def describe(self) -> dict[str, Any]:
        return {
            "kind": self.source_kind,
            "sources": [child.describe() for child in self._sources],
        }

    def _refill(self, index: int) -> None:
        """Peek the next record of one child (if it has one)."""
        if self._heads[index] is not None:
            return
        records = self._sources[index].poll(1)
        if not records:
            return
        event = records[0]
        if self._watermark is not None and event.time < self._watermark:
            raise IngestError(
                f"late arrival in merged source: child "
                f"{self._sources[index].describe()!r} produced an event "
                f"at time {event.time} after time {self._watermark} was "
                "already emitted; the merge cannot reorder an event "
                "stream that has been committed downstream"
            )
        self._heads[index] = event
        self._after[index] = dict(self._sources[index].position)

    def poll(self, max_records: int) -> "list[Event]":
        if max_records < 1:
            raise IngestError(f"max_records must be >= 1, got {max_records}")
        merged: "list[Event]" = []
        while len(merged) < max_records:
            for index in range(len(self._sources)):
                self._refill(index)
            best: int | None = None
            for index, head in enumerate(self._heads):
                if head is None:
                    continue
                if best is None or head.time < self._heads[best].time:
                    best = index
            if best is None:
                break  # every child is (currently) drained
            head = self._heads[best]
            assert head is not None and self._after[best] is not None
            self._watermark = head.time
            self._committed[best] = self._after[best]
            self._heads[best] = None
            self._after[best] = None
            self._emitted[best] += 1
            self._child_watermark[best] = head.time
            merged.append(head)
        return merged

    def source_stats(self) -> dict[str, Any]:
        """Federation counters for ``trace stats``: per-child events
        emitted and watermarks (this run; counters reset on seek)."""
        children = []
        for index, child in enumerate(self._sources):
            identity = child.describe()
            children.append({
                "kind": identity.get("kind", child.source_kind),
                "path": identity.get("path"),
                "events": self._emitted[index],
                "watermark": self._child_watermark[index],
            })
        return {
            "kind": self.source_kind,
            "watermark": self._watermark,
            "sources": children,
        }

    def close(self) -> None:
        for child in self._sources:
            child.close()


# ----------------------------------------------------------------------
# Source resolution + export helper

#: Source kinds ``resolve_source`` accepts (``auto`` = detect from the
#: path shape).  The CLI's ``--source-kind`` choices and the
#: unknown-kind error derive from this tuple, so adding a source means
#: registering it here once.
SOURCE_KINDS: tuple[str, ...] = ("auto", "jsonl", "segments", "csv", "http")


def resolve_source(
    path: str | os.PathLike[str],
    kind: str = "auto",
    csv_mapping: CSVMapping | None = None,
) -> IngestSource:
    """Build the right source for an export path (see ``SOURCE_KINDS``).

    ``"auto"`` detects from the path shape: an ``http(s)://`` URL means
    an audit-service tenant, a directory means segments, a ``.csv``
    suffix means CSV, anything else means a flat JSONL file.  CSV
    requires a ``csv_mapping``.
    """
    fspath = os.fspath(path)
    if kind == "auto":
        if fspath.startswith(("http://", "https://")):
            kind = "http"
        elif os.path.isdir(fspath):
            kind = "segments"
        elif os.path.splitext(fspath)[1].lower() == ".csv":
            kind = "csv"
        else:
            kind = "jsonl"
    if kind == "http":
        # Local import: http_source imports IngestSource from here.
        from repro.ingest.http_source import HTTPIngestSource

        return HTTPIngestSource(fspath)
    if kind == "segments":
        return SegmentDirectorySource(fspath)
    if kind == "csv":
        if csv_mapping is None:
            raise IngestError(
                "a CSV source needs a column mapping (CSVMapping / "
                "--csv-map COLUMN=FIELD)"
            )
        return CSVExportSource(fspath, csv_mapping)
    if kind == "jsonl":
        return JSONLExportSource(fspath)
    raise IngestError(
        f"unknown source kind {kind!r}; "
        f"available kinds: {', '.join(SOURCE_KINDS)}"
    )


def export_jsonl(
    events: "Iterable[Event]", path: str | os.PathLike[str],
    append: bool = False,
) -> str:
    """Write events as a flat JSONL export (the adapter's side of the
    contract): one :func:`event_to_dict` object per line.  Used by
    tests and the operator runbook to stand in for a real platform's
    exporter."""
    fspath = os.fspath(path)
    with open(fspath, "ab" if append else "wb") as handle:
        for event in events:
            line = json.dumps(event_to_dict(event), separators=(",", ":"))
            handle.write(line.encode("utf-8") + b"\n")
    return fspath
