"""Crash-safe resume tokens for checkpointed ingestion.

A checkpoint binds a **source position** (where the next unread export
record starts) to a **destination revision** (how many events the
TraceStore held when that position was current).  The runner writes one
after every committed batch; a killed ingest resumes by loading it,
seeking the source, and reconciling against the store's actual
revision — see :meth:`repro.ingest.runner.IngestRunner.resume`.

Durability rules:

* **Atomic writes.**  The token is written to a temporary file in the
  same directory, fsynced, then :func:`os.replace`\\ d over the target,
  so a kill mid-write leaves either the old complete token or the new
  complete token — never a half of each.  The parent *directory* is
  fsynced after the replace (best-effort on platforms whose
  filesystems cannot fsync a directory fd): the rename itself lives in
  directory metadata, so without it a power loss could silently revert
  to the old token despite the data fsync.
* **Detected corruption.**  The payload carries a SHA-256 checksum; a
  token that is unparseable, truncated, checksum-mismatched, or missing
  required fields raises :class:`~repro.errors.CheckpointError` instead
  of silently restarting ingestion from zero.  Re-ingesting an entire
  export *looks* safe but duplicates every event in the destination —
  the one outcome a resume token exists to prevent — so a damaged token
  is surfaced to the operator.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import CheckpointError

CHECKPOINT_FORMAT_VERSION = 1


def checkpoint_path_for(dest: str | os.PathLike[str]) -> str:
    """The default checkpoint path for a destination store: a sibling
    ``<dest>.checkpoint`` file (works for both ``.db`` files and
    segment-log directories)."""
    return os.fspath(dest).rstrip("/\\") + ".checkpoint"


@dataclass(frozen=True)
class IngestCheckpoint:
    """Where a checkpointed ingest can resume.

    ``source_position`` is the source's opaque token
    (:attr:`~repro.ingest.sources.IngestSource.position`);
    ``source_info`` identifies which export it belongs to
    (:meth:`~repro.ingest.sources.IngestSource.describe`), so resuming
    against a different file fails loudly.  ``dest_revision`` is the
    destination store's revision at the moment the position was
    captured; ``batches`` counts completed batches (observability
    only).
    """

    source_position: dict[str, Any]
    source_info: dict[str, Any]
    dest_revision: int
    batches: int = 0
    metadata: dict[str, Any] = field(default_factory=dict)

    def payload(self) -> dict[str, Any]:
        return {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "source_position": dict(self.source_position),
            "source_info": dict(self.source_info),
            "dest_revision": self.dest_revision,
            "batches": self.batches,
            "metadata": dict(self.metadata),
        }


def _digest(payload: Mapping[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _fsync_directory(directory: str) -> None:
    """Flush a directory's metadata (the rename) to stable storage.

    Best-effort by design: some platforms (Windows) and filesystems
    refuse to open or fsync a directory fd.  Failure here degrades
    durability of the *latest* token only — the replaced file content
    was already fsynced — so it must never fail the write.
    """
    try:
        fd = os.open(directory or os.curdir, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_checkpoint(
    checkpoint: IngestCheckpoint, path: str | os.PathLike[str]
) -> str:
    """Atomically persist a resume token at ``path``."""
    fspath = os.fspath(path)
    payload = checkpoint.payload()
    document = dict(payload, checksum=_digest(payload))
    tmp = fspath + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, fspath)
    # The replace is a directory-metadata operation; without flushing
    # the directory a crash can resurrect the previous token.
    _fsync_directory(os.path.dirname(fspath))
    return fspath


def read_checkpoint(path: str | os.PathLike[str]) -> IngestCheckpoint:
    """Load and verify a resume token; raises
    :class:`~repro.errors.CheckpointError` for anything less than a
    complete, checksum-verified checkpoint."""
    fspath = os.fspath(path)
    recovery = (
        "refusing to guess a resume point — verify the destination "
        "store, then delete the checkpoint to start a fresh ingest"
    )
    try:
        with open(fspath, encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no ingest checkpoint at {fspath!r}") from None
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(
            f"ingest checkpoint {fspath!r} is unreadable or half-written "
            f"({error}); {recovery}"
        ) from None
    if not isinstance(document, dict):
        raise CheckpointError(
            f"ingest checkpoint {fspath!r} is not a JSON object; {recovery}"
        )
    version = document.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} in {fspath!r} "
            f"(supported: {CHECKPOINT_FORMAT_VERSION})"
        )
    checksum = document.pop("checksum", None)
    if checksum != _digest(document):
        raise CheckpointError(
            f"ingest checkpoint {fspath!r} failed its checksum "
            "(half-written or garbled); " + recovery
        )
    try:
        source_position = document["source_position"]
        source_info = document["source_info"]
        dest_revision = document["dest_revision"]
    except KeyError as error:
        raise CheckpointError(
            f"ingest checkpoint {fspath!r} is missing field {error}; "
            + recovery
        ) from None
    if (
        not isinstance(source_position, dict)
        or not isinstance(source_info, dict)
        or not isinstance(dest_revision, int)
        or dest_revision < 0
    ):
        raise CheckpointError(
            f"ingest checkpoint {fspath!r} has malformed fields; " + recovery
        )
    return IngestCheckpoint(
        source_position=source_position,
        source_info=source_info,
        dest_revision=dest_revision,
        batches=int(document.get("batches", 0)),
        metadata=dict(document.get("metadata", {})),
    )
