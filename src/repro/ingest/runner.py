"""The ingest runner: cadenced batches from a source into an audited store.

:class:`IngestRunner` is the piece that turns a possibly still-growing
platform export into a continuously audited TraceStore.  Each
:meth:`~IngestRunner.step`:

1. polls the :class:`~repro.ingest.sources.IngestSource` for one
   bounded batch of new events,
2. appends them write-through into the destination store (any
   :func:`~repro.core.store.make_store` backend) via the batched
   append path and commits,
3. optionally runs a delta-aware audit — exact batch verdicts, paid
   per new event — and surfaces the violations that are *new* since
   the previous batch; with ``audit_jobs=N`` the audit is a
   :class:`~repro.shard.ShardedDeltaAuditEngine` that fans each
   batch's touched-entity re-sweeps out across N partitioned workers
   (identical reports, multi-core throughput),
4. optionally snapshots :func:`~repro.query.trace_stats` (the
   operator's view of the accumulating log), and
5. atomically persists an :class:`~repro.ingest.checkpoint.IngestCheckpoint`.

Crash safety is the ordering of 2 and 5: events are committed before
the checkpoint that covers them, so a kill at any point leaves the
store *at or ahead of* its checkpoint — never behind.
:meth:`IngestRunner.resume` reconciles the gap: it seeks the source to
the checkpointed position, then skips exactly ``store.revision -
checkpoint.dest_revision`` records (the events the store absorbed after
the last durable token; on the sqlite backend the revision is the
``events.seq`` high-water mark, so the skip count falls straight out of
the existing index).  The differential property suite pins both
contracts: cadenced ingest + delta audit equals a one-shot batch audit
at every batch boundary, and kill-then-resume produces a store
identical to an uninterrupted ingest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.audit import AuditReport
from repro.core.trace import PlatformTrace, as_trace
from repro.errors import CheckpointError, IngestError
from repro.ingest.checkpoint import (
    IngestCheckpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.ingest.sources import IngestSource
from repro.query import TraceStats, trace_stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.axioms import AxiomRegistry
    from repro.core.store import TraceStore
    from repro.core.violations import Violation


@dataclass(frozen=True)
class IngestBatch:
    """What one :meth:`IngestRunner.step` accomplished."""

    #: 0-based batch number over the whole ingest (resumes continue it).
    index: int
    #: Events appended by this batch.
    events: int
    #: Destination store revision after the append.
    store_revision: int
    #: Source position after the batch (what the checkpoint recorded).
    source_position: dict[str, Any]
    #: Delta-audit report at this boundary (``None`` without ``audit``).
    report: AuditReport | None = None
    #: Violations present now that were absent at the previous boundary.
    new_violations: "tuple[Violation, ...]" = ()
    #: Operator stats snapshot (``None`` unless the cadence hit).
    stats: TraceStats | None = None


@dataclass(frozen=True)
class IngestSummary:
    """What one :meth:`IngestRunner.run` call accomplished."""

    batches: int
    events: int
    store_revision: int
    stopped_on: str  # "max_batches" | "idle"
    report: AuditReport | None = None
    #: Peak audit lag observed during the run — how many committed
    #: batches (and the events they carried) the audit stage was behind
    #: the append stage at its worst.  The sequential runner audits
    #: inline, so both stay 0; the pipelined runner surfaces its
    #: backpressure watermark here.
    max_audit_lag_batches: int = 0
    max_audit_lag_events: int = 0


def validate_runner_options(
    batch_events: int = 256,
    stats_cadence: int = 0,
    interval: float = 0.0,
    audit_jobs: int = 1,
) -> None:
    """Validate the numeric :class:`IngestRunner` options.

    Factored out so callers that must allocate resources *before*
    constructing a runner (the CLI creates the destination store first)
    can fail on bad options without leaving anything behind.
    """
    if batch_events < 1:
        raise IngestError(
            f"batch_events must be >= 1, got {batch_events}"
        )
    if stats_cadence < 0:
        raise IngestError(
            f"stats_cadence must be >= 0, got {stats_cadence}"
        )
    if interval < 0:
        raise IngestError(f"interval must be >= 0, got {interval}")
    if audit_jobs < 1:
        raise IngestError(f"audit_jobs must be >= 1, got {audit_jobs}")


def _verify_destination(
    store: "PlatformTrace | TraceStore", checkpoint_path: str
) -> None:
    """The ``resume(verify=True)`` gate: deep-verify the destination.

    Raises :class:`~repro.errors.IngestError` when the destination is
    not an on-disk store (nothing to sweep) or when the sweep reports
    error-level findings (a DAMAGED store must be repaired — see
    ``trace repair`` — before more events are ingested on top).
    """
    from repro.forensics import verify_store

    path = getattr(as_trace(store).store, "path", None)
    if path is None:
        raise IngestError(
            "resume(verify=True) needs an on-disk destination store; "
            f"the {as_trace(store).store.backend_name!r} backend has "
            "no path to sweep"
        )
    result = verify_store(path)
    if not result.ok:
        findings = "; ".join(
            finding.describe() for finding in result.errors[:3]
        )
        raise IngestError(
            f"destination store {path!r} is DAMAGED: "
            f"{len(result.errors)} error-level finding(s) "
            f"({findings}); refusing to resume ingest on top of "
            f"corruption — salvage it first (trace repair), or resume "
            f"without verify after checkpoint {checkpoint_path!r} is "
            "confirmed good"
        )


class IngestRunner:
    """Pulls bounded batches from a source into an audited TraceStore.

    ``store`` is the destination — a :class:`~repro.core.trace.
    PlatformTrace` or bare :class:`~repro.core.store.TraceStore` of any
    backend.  ``batch_events`` bounds each poll; ``interval`` is the
    target polling *rate* in seconds — :meth:`run` sleeps only the
    remainder of the interval after each poll-and-process cycle, so a
    slow batch does not stretch the cadence (injectable ``sleep`` and
    monotonic ``clock`` for tests).  ``audit=True`` attaches a delta
    session so every batch boundary gets exact batch-audit verdicts;
    ``audit_jobs=N`` (N > 1) shards that session's per-batch audit
    into N partitions over N workers
    (:class:`~repro.shard.ShardedDeltaAuditEngine` — identical
    reports, multi-core throughput; ``audit_backend`` picks thread or
    process workers).  ``stats_cadence=N`` snapshots
    :func:`trace_stats` every N batches (0 = never).
    ``checkpoint_path`` enables crash-safe resume.
    ``report_dir``/``report_formats`` (with ``audit=True``) write
    rolling report files — one ``audit.<suffix>`` per format, via
    :func:`repro.report.export_report_files` — after every audited
    batch, so an operator always has a current dashboard next to the
    store.  Call :meth:`close` when done to release audit worker pools.
    """

    def __init__(
        self,
        source: IngestSource,
        store: "PlatformTrace | TraceStore",
        *,
        checkpoint_path: str | None = None,
        batch_events: int = 256,
        audit: bool = False,
        registry: "AxiomRegistry | None" = None,
        audit_jobs: int = 1,
        audit_backend: str = "thread",
        stats_cadence: int = 0,
        interval: float = 0.0,
        report_dir: str | None = None,
        report_formats: "Sequence[str]" = (),
        report_source: str = "",
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        validate_runner_options(
            batch_events, stats_cadence, interval, audit_jobs
        )
        if report_formats and report_dir is None:
            raise IngestError(
                "report_formats without report_dir: rolling reports "
                "need a directory to land in"
            )
        if report_dir is not None:
            if not report_formats:
                raise IngestError(
                    "report_dir without report_formats: name at least "
                    "one format (csv, jsonl, md, html)"
                )
            if not audit:
                raise IngestError(
                    "rolling reports render the per-batch audit report; "
                    "they require audit=True"
                )
            from repro.report import make_exporter

            # Resolve every format now: an unknown name must fail
            # before the first batch, not mid-ingest.
            for format_name in report_formats:
                make_exporter(format_name)
        self._report_dir = report_dir
        self._report_formats = tuple(report_formats)
        self._report_source = report_source
        self._source = source
        self._trace = as_trace(store)
        self._checkpoint_path = checkpoint_path
        self._batch_events = batch_events
        if audit:
            from repro.shard import make_audit_session

            self._session = make_audit_session(
                audit_jobs, backend=audit_backend, registry=registry
            )
        else:
            self._session = None
        self._stats_cadence = stats_cadence
        self._interval = interval
        self._sleep = sleep
        self._clock = clock
        self._batches = 0
        self._last_report: AuditReport | None = None

    # ------------------------------------------------------------------
    # Introspection

    @property
    def trace(self) -> PlatformTrace:
        """The destination trace (facade over the destination store)."""
        return self._trace

    @property
    def source(self) -> IngestSource:
        return self._source

    @property
    def batches_completed(self) -> int:
        """Completed batches over the whole ingest, resumes included."""
        return self._batches

    @property
    def report_dir(self) -> "str | None":
        """Where rolling report files land (``None`` when disabled)."""
        return self._report_dir

    @property
    def last_report(self) -> AuditReport | None:
        """The most recent delta-audit report (``None`` before the
        first audited batch or without ``audit=True``)."""
        return self._last_report

    def close(self) -> None:
        """Release the audit session's worker pools (idempotent).

        Only sharded sessions hold threads/processes; the plain delta
        session's close is a no-op, so callers can close
        unconditionally.
        """
        close = getattr(self._session, "close", None)
        if callable(close):
            close()

    # ------------------------------------------------------------------
    # Resume

    @classmethod
    def resume(
        cls,
        source: IngestSource,
        store: "PlatformTrace | TraceStore",
        checkpoint_path: str,
        verify: bool = False,
        **options: Any,
    ) -> "IngestRunner":
        """Continue a checkpointed ingest after a stop or crash.

        Loads and verifies the resume token, refuses a token written
        for a different export, seeks the source, and reconciles the
        store-ahead-of-checkpoint window (killed after a batch commit
        but before its checkpoint write) by skipping exactly the
        already-stored records.  The result duplicates and drops
        nothing — pinned by the kill/resume differential suite.

        ``verify=True`` additionally runs the read-only deep-integrity
        sweep (:func:`repro.forensics.verify_store`) over the on-disk
        destination *before* anything is ingested, and refuses to
        resume into a store with error-level findings — resuming on
        top of silent corruption would checkpoint right past it.
        """
        checkpoint = read_checkpoint(checkpoint_path)
        if verify:
            _verify_destination(store, checkpoint_path)
        described = source.describe()
        if checkpoint.source_info != described:
            raise CheckpointError(
                f"checkpoint {checkpoint_path!r} was written for source "
                f"{checkpoint.source_info!r}, not {described!r}; refusing "
                "to resume against a different export"
            )
        trace = as_trace(store)
        actual = trace.revision
        if actual < checkpoint.dest_revision:
            raise CheckpointError(
                f"destination store holds {actual} event(s) but the "
                f"checkpoint {checkpoint_path!r} recorded "
                f"{checkpoint.dest_revision}; the store was truncated or "
                "this is the wrong destination"
            )
        source.seek(checkpoint.source_position)
        excess = actual - checkpoint.dest_revision
        if excess:
            skipped = source.skip_records(excess)
            if skipped != excess:
                raise CheckpointError(
                    f"destination store is {excess} event(s) ahead of "
                    f"checkpoint {checkpoint_path!r} but the source only "
                    f"had {skipped} record(s) past the checkpointed "
                    "position; source and store disagree"
                )
        runner = cls(
            source, trace, checkpoint_path=checkpoint_path, **options
        )
        runner._batches = checkpoint.batches
        if runner._session is not None and trace.revision:
            # Baseline the delta session on the already-ingested trace:
            # violations that existed before the kill are not "new"
            # again after it, and the first post-resume audit pays only
            # for its own batch.
            try:
                runner._last_report = runner._baseline_audit()
            except BaseException:
                # The caller never sees the runner, so it could never
                # close it — release the audit worker pools here.
                runner.close()
                raise
        return runner

    def _baseline_audit(self) -> AuditReport:
        """Audit everything already in the destination (resume path).

        Subclasses that audit through a stand-in trace (the pipelined
        runner's shadow) override this to baseline that trace instead.
        """
        assert self._session is not None
        return self._session.audit(self._trace)

    # ------------------------------------------------------------------
    # The cadence

    def step(self) -> IngestBatch | None:
        """Ingest one batch; ``None`` when the source had nothing new."""
        from repro.telemetry.instruments import record_ingest_stage
        from repro.telemetry.registry import get_registry

        recording = get_registry().enabled
        mark = time.perf_counter() if recording else 0.0
        events = self._source.poll(self._batch_events)
        if recording:
            now = time.perf_counter()
            record_ingest_stage("poll", len(events), now - mark)
            mark = now
        if not events:
            return None
        self._trace.append_batch(events)
        save = getattr(self._trace.store, "save", None)
        if callable(save):
            save()  # commit before the checkpoint that covers the batch
        if recording:
            now = time.perf_counter()
            record_ingest_stage("append", len(events), now - mark)
            mark = now
        index = self._batches
        self._batches += 1
        report: AuditReport | None = None
        new_violations: "tuple[Violation, ...]" = ()
        if self._session is not None:
            report = self._session.audit(self._trace)
            previous = self._last_report
            if previous is None:
                new_violations = report.violations
            else:
                new_violations = tuple(
                    violation
                    for violation in report.violations
                    if violation not in previous.violations
                )
            self._last_report = report
            if self._report_dir is not None:
                self._write_rolling_reports(report)
            if recording:
                now = time.perf_counter()
                record_ingest_stage("audit", len(events), now - mark)
                mark = now
        stats: TraceStats | None = None
        if self._stats_cadence and index % self._stats_cadence == 0:
            stats = trace_stats(
                self._trace, sources=self._source_stats()
            )
        position = dict(self._source.position)
        if self._checkpoint_path is not None:
            write_checkpoint(
                IngestCheckpoint(
                    source_position=position,
                    source_info=self._source.describe(),
                    dest_revision=self._trace.revision,
                    batches=self._batches,
                ),
                self._checkpoint_path,
            )
            if recording:
                record_ingest_stage(
                    "checkpoint", len(events), time.perf_counter() - mark
                )
        return IngestBatch(
            index=index,
            events=len(events),
            store_revision=self._trace.revision,
            source_position=position,
            report=report,
            new_violations=new_violations,
            stats=stats,
        )

    def _source_stats(self) -> dict | None:
        """Federation counters when the source publishes them.

        Only :class:`~repro.ingest.sources.MergedSource` does today;
        single sources contribute nothing to the stats snapshot.
        """
        source_stats = getattr(self._source, "source_stats", None)
        if callable(source_stats):
            return source_stats()
        return None

    def _write_rolling_reports(
        self, report: AuditReport, trace: "PlatformTrace | None" = None
    ) -> None:
        """Re-render every configured report file from the latest audit.

        Each audited batch overwrites the previous roll, so the files
        always describe the store as of the newest checkpointed batch.
        ``trace`` supplies the report's evidence context (default: the
        destination; the pipelined runner passes its shadow so the
        render never reads the destination store off-thread).
        """
        from repro.report import audit_document, export_report_files

        document = audit_document(
            report, trace if trace is not None else self._trace,
            source=self._report_source,
        )
        export_report_files(
            document, self._report_dir, self._report_formats
        )

    def run(
        self,
        *,
        max_batches: int | None = None,
        idle_limit: int | None = None,
        on_batch: Callable[[IngestBatch], None] | None = None,
    ) -> IngestSummary:
        """Drive :meth:`step` on the cadence until a stop condition.

        ``max_batches`` stops after that many non-empty batches;
        ``idle_limit`` stops after that many *consecutive* empty polls
        (the "caught up with a finished export" signal).  With neither,
        the runner follows the export forever — the live-tail posture.
        ``on_batch`` observes each completed batch.

        ``interval`` is honoured as a *rate*: after each cycle the
        runner sleeps only the part of the interval the poll (append,
        audit, checkpoint) did not already consume, so a slow batch is
        followed by the next poll immediately rather than a full
        fixed-length nap on top.
        """
        if max_batches is not None and max_batches < 1:
            raise IngestError(
                f"max_batches must be >= 1, got {max_batches}"
            )
        if idle_limit is not None and idle_limit < 1:
            raise IngestError(
                f"idle_limit must be >= 1, got {idle_limit}"
            )
        batches = 0
        events = 0
        idle = 0
        stopped_on = "idle"
        while True:
            cycle_started = self._clock()
            batch = self.step()
            if batch is None:
                idle += 1
                if idle_limit is not None and idle >= idle_limit:
                    break
            else:
                idle = 0
                batches += 1
                events += batch.events
                if on_batch is not None:
                    on_batch(batch)
                if max_batches is not None and batches >= max_batches:
                    stopped_on = "max_batches"
                    break
            if self._interval:
                remaining = self._interval - (
                    self._clock() - cycle_started
                )
                if remaining > 0:
                    self._sleep(remaining)
        return IngestSummary(
            batches=batches,
            events=events,
            store_revision=self._trace.revision,
            stopped_on=stopped_on,
            report=self._last_report,
        )
