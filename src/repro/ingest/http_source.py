"""``HTTPIngestSource``: tail an audit-service tenant over HTTP.

The service's export endpoint (``GET /tenants/{name}/events?start=N``)
is a positional cursor read — exactly the shape
:meth:`~repro.core.trace.PlatformTrace.events_since` has locally — so
the source's position token is simply the next unread sequence number.
That makes this the simplest source in the ingest family: no byte
offsets, no torn tails, no rotation detection; the server owns
durability and the sequence numbers are stable forever.

With it, one service's tenant can be tailed into any local store (or
another service) with the standard checkpointed pipeline::

    python -m repro trace tail http://host:8040/tenants/acme live.db \\
        --audit --interval 2

The URL form is ``http(s)://host:port/tenants/<name>`` — the same base
path the other tenant endpoints hang off.  Network failures and
non-JSON responses raise :class:`~repro.errors.IngestError`, matching
the fail-loudly stance of the file sources (a checkpointed runner
retries by simply running again; the cursor never moves past an
unfetched record).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.serialize import event_from_dict
from repro.errors import IngestError, TraceError
from repro.ingest.sources import IngestSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import Event


def is_http_url(path: str) -> bool:
    """True for the URL forms this source tails."""
    return path.startswith(("http://", "https://"))


class HTTPIngestSource(IngestSource):
    """Tail one service tenant's export endpoint.

    ``url`` is the tenant base URL (``http://host:port/tenants/name``);
    a trailing slash or an explicit ``/events`` suffix is accepted and
    normalised.  ``position`` is ``{"next_seq": <sequence number>}``.
    """

    source_kind = "http"

    def __init__(self, url: str, *, timeout: float = 30.0) -> None:
        if not is_http_url(url):
            raise IngestError(
                f"not an HTTP source URL: {url!r} (expected "
                "http(s)://host:port/tenants/<name>)"
            )
        url = url.rstrip("/")
        if url.endswith("/events"):
            url = url[: -len("/events")]
        self._url = url
        self._timeout = timeout
        self._next_seq = 0

    @property
    def url(self) -> str:
        return self._url

    @property
    def position(self) -> dict[str, Any]:
        return {"next_seq": self._next_seq}

    def seek(self, position: Mapping[str, Any]) -> None:
        next_seq = position.get("next_seq")
        if not isinstance(next_seq, int) or next_seq < 0:
            raise IngestError(
                f"invalid {self.source_kind} source position {position!r}; "
                "expected {'next_seq': <sequence number>}"
            )
        self._next_seq = next_seq

    def describe(self) -> dict[str, Any]:
        return {"kind": self.source_kind, "path": self._url}

    def _fetch(self, start: int, limit: int) -> dict[str, Any]:
        query = urllib.parse.urlencode({"start": start, "limit": limit})
        url = f"{self._url}/events?{query}"
        try:
            with urllib.request.urlopen(url, timeout=self._timeout) as response:
                raw = response.read()
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                body = json.loads(error.read().decode("utf-8"))
                detail = f": {body.get('error', {}).get('message', '')}"
            except Exception:  # noqa: BLE001 - non-JSON error body
                pass
            raise IngestError(
                f"HTTP source {url!r} answered {error.code}{detail}"
            ) from None
        except urllib.error.URLError as error:
            raise IngestError(
                f"HTTP source {url!r} is unreachable: {error.reason}"
            ) from None
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise IngestError(
                f"HTTP source {url!r} returned a non-JSON body: {error}"
            ) from None
        if not isinstance(document, dict) or not isinstance(
            document.get("events"), list
        ):
            raise IngestError(
                f"HTTP source {url!r} returned an unexpected document "
                "(no 'events' list) — is this an audit-service tenant URL?"
            )
        return document

    def poll(self, max_records: int) -> "list[Event]":
        if max_records < 1:
            raise IngestError(f"max_records must be >= 1, got {max_records}")
        document = self._fetch(self._next_seq, max_records)
        events: "list[Event]" = []
        for record in document["events"]:
            try:
                events.append(event_from_dict(record))
            except TraceError as error:
                raise IngestError(
                    f"unrecognised record from {self._url!r}: {error}"
                ) from None
        self._next_seq += len(events)
        return events
