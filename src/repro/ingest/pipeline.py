"""Pipelined ingest: overlap polling, appending, and auditing.

:class:`~repro.ingest.runner.IngestRunner.step` runs poll → append →
audit → checkpoint strictly in sequence, so the audit engine idles
while the source is polled and the source idles while the audit runs.
:class:`PipelinedIngestRunner` splits the same cycle into three stages
connected by bounded queues:

* **poll** (worker thread) — owns the :class:`~repro.ingest.sources.
  IngestSource`, polls on the configured interval *rate*, and emits
  ``(batch index, events, source position, source stats)`` tuples.
* **append** (the calling thread) — owns the destination store (store
  handles are not thread-safe; all access to one store stays on this
  thread), appends each batch write-through, commits,
  and checkpoints.  The PR 4 crash contract is untouched: events are
  committed *before* the checkpoint that covers them, and the
  checkpoint never depends on the audit, so a kill at any stage leaves
  the store at-or-ahead of its token and
  :meth:`~repro.ingest.runner.IngestRunner.resume` reconciles exactly
  as for a sequential ingest.
* **audit** (worker thread) — maintains a private in-memory *shadow*
  of the destination (same events, same order; the delta-audit
  contract makes verdicts backend-independent) and runs the delta
  session — sharded when ``audit_jobs > 1`` — against it, so verdict
  computation never touches the destination store off-thread.

Backpressure is the queue bound: each queue holds at most
``pipeline_depth`` batches, so when audits are slower than the export
grows the append stage blocks handing off, the poll queue fills, and
polling throttles — the source is never read faster than the slowest
stage drains.  How far the audit stage actually fell behind is the
**audit-lag watermark**: batches and events appended-but-not-yet-
audited, sampled at its per-run peak into
:class:`~repro.ingest.runner.IngestSummary` and attached live to
:func:`~repro.query.trace_stats` snapshots.

By default the audit stage *coalesces*: when it falls behind it drains
every queued batch and audits once at the newest boundary, amortising
the per-audit fixed costs (touched-entity re-sweeps, verdict
materialisation) over the backlog — the batches it skipped are
reported with ``report=None``.  Every report it does emit is still an
*exact* batch-audit verdict at that boundary (the delta ≡ batch
contract).  ``coalesce_audits=False`` forces an audit at every batch
boundary, making the pipelined runner's per-batch output —
reports, new violations, stats, summary — bit-for-bit equal to the
sequential runner's; the differential property suite pins both modes.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.audit import AuditReport
from repro.core.trace import PlatformTrace
from repro.errors import IngestError
from repro.ingest.checkpoint import IngestCheckpoint, write_checkpoint
from repro.ingest.runner import (
    IngestBatch,
    IngestRunner,
    IngestSummary,
    TraceStats,
)
from repro.query import trace_stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import Event
    from repro.core.violations import Violation

#: Poll granularity of every blocking queue wait: how quickly a stage
#: notices a stop request or a peer's failure.
_TICK = 0.05


def validate_pipeline_options(pipeline_depth: int = 4) -> None:
    """Validate pipeline-only options (see
    :func:`~repro.ingest.runner.validate_runner_options` for why this
    is a free function)."""
    if pipeline_depth < 1:
        raise IngestError(
            f"pipeline_depth must be >= 1, got {pipeline_depth}"
        )


class _AuditLagWatermark:
    """Thread-safe appended-vs-audited counters with peak tracking."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._appended_batches = 0
        self._appended_events = 0
        self._audited_batches = 0
        self._audited_events = 0
        self.max_lag_batches = 0
        self.max_lag_events = 0

    def appended(self, batches: int, events: int) -> tuple[int, int]:
        """Record an append; returns the lag it opened (the peak
        moment — the audit stage can only catch *up* from here)."""
        with self._lock:
            self._appended_batches += batches
            self._appended_events += events
            lag_batches = self._appended_batches - self._audited_batches
            lag_events = self._appended_events - self._audited_events
            self.max_lag_batches = max(self.max_lag_batches, lag_batches)
            self.max_lag_events = max(self.max_lag_events, lag_events)
            return lag_batches, lag_events

    def audited(self, batches: int, events: int) -> tuple[int, int]:
        """Record an audit; returns the lag remaining after it."""
        with self._lock:
            self._audited_batches += batches
            self._audited_events += events
            return (
                self._appended_batches - self._audited_batches,
                self._appended_events - self._audited_events,
            )

    def peaks(self) -> tuple[int, int]:
        with self._lock:
            return self.max_lag_batches, self.max_lag_events


@dataclass(frozen=True)
class _PendingAudit:
    """One committed batch handed from the append to the audit stage."""

    index: int
    events: "tuple[Event, ...]"
    store_revision: int
    source_position: dict[str, Any]
    stats: TraceStats | None


class PipelinedIngestRunner(IngestRunner):
    """An :class:`IngestRunner` whose :meth:`run` overlaps its stages.

    Accepts every :class:`IngestRunner` option plus ``pipeline_depth``
    (bound of each inter-stage queue, in batches — the backpressure
    window) and ``coalesce_audits`` (see the module docstring).  The
    observable contract — destination bytes, checkpoint semantics,
    resume behaviour, audit verdicts at audited boundaries — is the
    sequential runner's; only the schedule differs.
    """

    def __init__(
        self,
        source: Any,
        store: Any,
        *,
        pipeline_depth: int = 4,
        coalesce_audits: bool = True,
        **options: Any,
    ) -> None:
        validate_pipeline_options(pipeline_depth)
        super().__init__(source, store, **options)
        self._pipeline_depth = pipeline_depth
        self._coalesce = coalesce_audits
        # The audit stage's private replica of the destination.  An
        # in-memory trace: verdicts are backend-independent (delta ≡
        # batch, proven per backend), and the destination store cannot
        # be read from the audit thread.
        self._shadow = PlatformTrace()
        self._progress = _AuditLagWatermark()
        self._stop = threading.Event()

    @property
    def pipeline_depth(self) -> int:
        return self._pipeline_depth

    def close(self) -> None:
        self._stop.set()
        super().close()

    # ------------------------------------------------------------------
    # Shadow maintenance

    def _ensure_shadow(self) -> None:
        """Bring the shadow level with the destination (caller's
        thread — the only one allowed to read the destination)."""
        if self._session is None:
            return
        if self._shadow.revision < self._trace.revision:
            self._shadow.append_batch(
                self._trace.events_since(self._shadow.revision)
            )

    def _baseline_audit(self) -> AuditReport:
        # Resume path: the delta session must be bound to the shadow
        # (one session, one trace), so the baseline audits the shadow
        # after seeding it from the already-ingested destination.
        assert self._session is not None
        self._ensure_shadow()
        return self._session.audit(self._shadow)

    # ------------------------------------------------------------------
    # The pipeline

    def step(self) -> IngestBatch | None:
        raise IngestError(
            "PipelinedIngestRunner has no single-step mode: its stages "
            "only exist inside run(); use IngestRunner for step-wise "
            "ingest"
        )

    def run(
        self,
        *,
        max_batches: int | None = None,
        idle_limit: int | None = None,
        on_batch: Callable[[IngestBatch], None] | None = None,
    ) -> IngestSummary:
        """Drive the three-stage pipeline until a stop condition.

        Same stop conditions and callback contract as
        :meth:`IngestRunner.run`; ``on_batch`` is invoked on the
        calling thread, in batch order.  With auditing enabled,
        batches the coalescing audit stage skipped arrive with
        ``report=None`` and their group's newest batch carries the
        verdict (plus every violation new since the previous audited
        boundary).
        """
        if max_batches is not None and max_batches < 1:
            raise IngestError(
                f"max_batches must be >= 1, got {max_batches}"
            )
        if idle_limit is not None and idle_limit < 1:
            raise IngestError(
                f"idle_limit must be >= 1, got {idle_limit}"
            )
        self._ensure_shadow()
        self._stop = threading.Event()
        self._progress = _AuditLagWatermark()
        self._described = self._source.describe()
        failures: list[BaseException] = []
        poll_q: "queue.Queue" = queue.Queue(maxsize=self._pipeline_depth)
        results_q: "queue.Queue" = queue.Queue()
        audit_q: "queue.Queue | None" = None
        threads: list[threading.Thread] = []
        poller = threading.Thread(
            target=self._poll_stage,
            args=(poll_q, max_batches, idle_limit, failures),
            name="ingest-poll",
            daemon=True,
        )
        threads.append(poller)
        if self._session is not None:
            audit_q = queue.Queue(maxsize=self._pipeline_depth)
            auditor = threading.Thread(
                target=self._audit_stage,
                args=(audit_q, results_q, failures),
                name="ingest-audit",
                daemon=True,
            )
            threads.append(auditor)
        batches = 0
        events = 0
        stopped_on = "idle"
        try:
            for thread in threads:
                thread.start()
            while True:
                item = self._driver_get(
                    poll_q, failures, results_q, on_batch
                )
                if item[0] == "done":
                    stopped_on = item[1]
                    break
                _, index, polled, position, source_stats = item
                batch = self._append_batch(
                    index, polled, position, source_stats
                )
                batches += 1
                events += batch.events
                if audit_q is not None:
                    self._driver_put(
                        audit_q,
                        _PendingAudit(
                            index=batch.index,
                            events=tuple(polled),
                            store_revision=batch.store_revision,
                            source_position=batch.source_position,
                            stats=batch.stats,
                        ),
                        failures, results_q, on_batch,
                    )
                elif on_batch is not None:
                    on_batch(batch)
            if audit_q is not None:
                self._driver_put(
                    audit_q, "flush", failures, results_q, on_batch
                )
                self._drain_results(results_q, on_batch, failures)
        except BaseException:
            self._stop.set()
            raise
        finally:
            self._stop.set()
            for thread in threads:
                thread.join(timeout=5.0)
        lag_batches, lag_events = self._progress.peaks()
        return IngestSummary(
            batches=batches,
            events=events,
            store_revision=self._trace.revision,
            stopped_on=stopped_on,
            report=self._last_report,
            max_audit_lag_batches=lag_batches,
            max_audit_lag_events=lag_events,
        )

    # ------------------------------------------------------------------
    # Append stage (the calling thread — it owns the destination store)

    def _append_batch(
        self,
        index: int,
        polled: "list[Event]",
        position: dict[str, Any],
        source_stats: dict | None = None,
    ) -> IngestBatch:
        from repro.telemetry.instruments import (
            record_ingest_stage,
            set_audit_lag,
        )
        from repro.telemetry.registry import get_registry

        recording = get_registry().enabled
        mark = time.perf_counter() if recording else 0.0
        self._trace.append_batch(polled)
        save = getattr(self._trace.store, "save", None)
        if callable(save):
            save()  # commit before the checkpoint that covers the batch
        if recording:
            record_ingest_stage(
                "append", len(polled), time.perf_counter() - mark
            )
        self._batches += 1
        lag_batches, lag_events = self._progress.appended(1, len(polled))
        if recording and self._session is not None:
            set_audit_lag(lag_batches, lag_events)
        stats: TraceStats | None = None
        if self._stats_cadence and index % self._stats_cadence == 0:
            stats = trace_stats(
                self._trace,
                audit_lag=(
                    None
                    if self._session is None
                    else {"batches": lag_batches, "events": lag_events}
                ),
                sources=source_stats,
            )
        if self._checkpoint_path is not None:
            write_checkpoint(
                IngestCheckpoint(
                    source_position=position,
                    source_info=self._described,
                    dest_revision=self._trace.revision,
                    batches=self._batches,
                    metadata={"pipelined": True},
                ),
                self._checkpoint_path,
            )
        return IngestBatch(
            index=index,
            events=len(polled),
            store_revision=self._trace.revision,
            source_position=position,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Poll stage (worker thread — it owns the source)

    def _poll_stage(
        self,
        poll_q: "queue.Queue",
        max_batches: int | None,
        idle_limit: int | None,
        failures: list[BaseException],
    ) -> None:
        try:
            produced = 0
            idle = 0
            start_index = self._batches
            from repro.telemetry.instruments import (
                record_ingest_stage,
                set_ingest_queue_depth,
            )
            from repro.telemetry.registry import get_registry

            while not self._stop.is_set():
                recording = get_registry().enabled
                cycle_started = self._clock()
                mark = time.perf_counter() if recording else 0.0
                polled = self._source.poll(self._batch_events)
                if recording:
                    record_ingest_stage(
                        "poll", len(polled), time.perf_counter() - mark
                    )
                if polled:
                    idle = 0
                    position = dict(self._source.position)
                    # Snapshot federation counters on this thread — the
                    # source is owned by the poll stage, so the append
                    # stage must not call source_stats() itself.
                    source_stats = self._source_stats()
                    if not self._worker_put(
                        poll_q,
                        ("batch", start_index + produced, polled, position,
                         source_stats),
                    ):
                        return  # stopped while blocked on backpressure
                    if recording:
                        set_ingest_queue_depth("poll", poll_q.qsize())
                    produced += 1
                    if max_batches is not None and produced >= max_batches:
                        self._worker_put(poll_q, ("done", "max_batches"))
                        return
                else:
                    idle += 1
                    if idle_limit is not None and idle >= idle_limit:
                        self._worker_put(poll_q, ("done", "idle"))
                        return
                if self._interval:
                    remaining = self._interval - (
                        self._clock() - cycle_started
                    )
                    if remaining > 0:
                        self._nap(remaining)
        except BaseException as error:
            failures.append(error)

    def _nap(self, seconds: float) -> None:
        # A real sleep must stay interruptible so shutdown is prompt;
        # an injected sleep (tests) is honoured verbatim.
        if self._sleep is time.sleep:
            self._stop.wait(seconds)
        else:
            self._sleep(seconds)

    # ------------------------------------------------------------------
    # Audit stage (worker thread — it owns the shadow and the session)

    def _audit_stage(
        self,
        audit_q: "queue.Queue",
        results_q: "queue.Queue",
        failures: list[BaseException],
    ) -> None:
        assert self._session is not None
        try:
            while True:
                item = self._worker_get(audit_q)
                if item is None:
                    return  # stopped
                flushing = item == "flush"
                group: list[_PendingAudit] = []
                if not flushing:
                    group.append(item)
                    if self._coalesce:
                        # Gather up to pipeline_depth batches before
                        # paying one audit at the newest boundary.  The
                        # short blocking get matters: waiting releases
                        # the GIL, so the append stage runs at full
                        # speed and actually builds the backlog a
                        # coalesced audit amortises — an eager drain
                        # would start auditing into a near-empty queue
                        # and starve the producer right back.  A tick
                        # with no arrivals (source idle or slow) bounds
                        # the added verdict latency.
                        while (
                            len(group) < self._pipeline_depth
                            and not flushing
                            and not self._stop.is_set()
                        ):
                            try:
                                extra = audit_q.get(timeout=_TICK)
                            except queue.Empty:
                                break
                            if extra == "flush":
                                flushing = True
                                break
                            group.append(extra)
                if group:
                    from repro.telemetry.instruments import (
                        set_ingest_queue_depth,
                    )

                    set_ingest_queue_depth("audit", audit_q.qsize())
                    self._audit_group(group, results_q)
                if flushing:
                    results_q.put("finished")
                    return
        except BaseException as error:
            failures.append(error)

    def _audit_group(
        self, group: "list[_PendingAudit]", results_q: "queue.Queue"
    ) -> None:
        from repro.telemetry.instruments import (
            record_ingest_stage,
            set_audit_lag,
        )
        from repro.telemetry.registry import get_registry

        assert self._session is not None
        recording = get_registry().enabled
        mark = time.perf_counter() if recording else 0.0
        for pending in group:
            self._shadow.append_batch(pending.events)
        report = self._session.audit(self._shadow)
        previous = self._last_report
        if previous is None:
            new_violations: "tuple[Violation, ...]" = report.violations
        else:
            new_violations = tuple(
                violation
                for violation in report.violations
                if violation not in previous.violations
            )
        self._last_report = report
        if self._report_dir is not None:
            self._write_rolling_reports(report, self._shadow)
        group_events = sum(len(pending.events) for pending in group)
        lag_batches, lag_events = self._progress.audited(
            len(group), group_events
        )
        if recording:
            record_ingest_stage(
                "audit", group_events, time.perf_counter() - mark
            )
            set_audit_lag(lag_batches, lag_events)
        for pending in group[:-1]:
            results_q.put(
                IngestBatch(
                    index=pending.index,
                    events=len(pending.events),
                    store_revision=pending.store_revision,
                    source_position=pending.source_position,
                    stats=pending.stats,
                )
            )
        last = group[-1]
        results_q.put(
            IngestBatch(
                index=last.index,
                events=len(last.events),
                store_revision=last.store_revision,
                source_position=last.source_position,
                report=report,
                new_violations=new_violations,
                stats=last.stats,
            )
        )

    # ------------------------------------------------------------------
    # Queue plumbing

    def _raise_failure(self, failures: list[BaseException]) -> None:
        if failures:
            raise failures[0]

    def _worker_put(self, target: "queue.Queue", item: Any) -> bool:
        """Blocking put from a stage thread; False when stopped."""
        while not self._stop.is_set():
            try:
                target.put(item, timeout=_TICK)
                return True
            except queue.Full:
                continue
        return False

    def _worker_get(self, source_q: "queue.Queue") -> Any:
        """Blocking get from a stage thread; ``None`` when stopped."""
        while not self._stop.is_set():
            try:
                return source_q.get(timeout=_TICK)
            except queue.Empty:
                continue
        return None

    def _driver_get(
        self,
        poll_q: "queue.Queue",
        failures: list[BaseException],
        results_q: "queue.Queue",
        on_batch: Callable[[IngestBatch], None] | None,
    ) -> Any:
        while True:
            self._raise_failure(failures)
            self._deliver_ready(results_q, on_batch)
            try:
                return poll_q.get(timeout=_TICK)
            except queue.Empty:
                continue

    def _driver_put(
        self,
        audit_q: "queue.Queue",
        item: Any,
        failures: list[BaseException],
        results_q: "queue.Queue",
        on_batch: Callable[[IngestBatch], None] | None,
    ) -> None:
        while True:
            self._raise_failure(failures)
            self._deliver_ready(results_q, on_batch)
            try:
                audit_q.put(item, timeout=_TICK)
                return
            except queue.Full:
                continue

    def _deliver_ready(
        self,
        results_q: "queue.Queue",
        on_batch: Callable[[IngestBatch], None] | None,
    ) -> None:
        while True:
            try:
                item = results_q.get_nowait()
            except queue.Empty:
                return
            if on_batch is not None and isinstance(item, IngestBatch):
                on_batch(item)

    def _drain_results(
        self,
        results_q: "queue.Queue",
        on_batch: Callable[[IngestBatch], None] | None,
        failures: list[BaseException],
    ) -> None:
        while True:
            self._raise_failure(failures)
            try:
                item = results_q.get(timeout=_TICK)
            except queue.Empty:
                continue
            if item == "finished":
                return
            if on_batch is not None and isinstance(item, IngestBatch):
                on_batch(item)
