"""E9 — Redundancy, aggregation, and the budget-optimal premise.

KOS [11] buys reliability with redundancy; this experiment regenerates
the two curves that justify the :class:`BudgetOptimalAssigner`:

* **redundancy curve** (figure): majority-vote accuracy vs redundancy
  for several worker-accuracy levels, against the Chernoff bound —
  accuracy rises with redundancy and the bound is conservative;
* **aggregator comparison** (table): majority vs reliability-weighted
  vote vs one-coin EM on a mixed-quality simulated market — weighting
  and EM dominate plain majority as worker quality becomes uneven.
"""

from __future__ import annotations

from repro.aggregation import (
    MajorityVote,
    OneCoinEM,
    WeightedVote,
    aggregate_trace,
    collect_answers,
    empirical_accuracy_curve,
    majority_error_bound,
)
from repro.experiments.e5_malice_detection import labelled_market_trace
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import Table
from repro.metrics.quality import quality_by_worker


def run(
    accuracies: tuple[float, ...] = (0.6, 0.7, 0.8),
    redundancies: tuple[int, ...] = (1, 3, 5, 7, 9),
    n_tasks: int = 400,
    market_workers: int = 30,
    market_tasks: int = 40,
    spam_fraction: float = 0.4,
    seed: int = 3,
) -> ExperimentResult:
    curve = Table(
        title="E9 (figure): majority accuracy vs redundancy",
        columns=("redundancy",) + tuple(
            f"p={p:g}" for p in accuracies
        ) + tuple(f"bound_p={p:g}" for p in accuracies),
    )
    empirical = {
        p: empirical_accuracy_curve(p, redundancies, n_tasks=n_tasks,
                                    seed=seed)
        for p in accuracies
    }
    for redundancy in redundancies:
        row: list[object] = [redundancy]
        for p in accuracies:
            row.append(empirical[p][redundancy])
        for p in accuracies:
            row.append(1.0 - majority_error_bound(p, redundancy))
        curve.add_row(*row)

    # Aggregator comparison on a realistic mixed market (40 % malicious).
    trace, _ = labelled_market_trace(
        n_workers=market_workers, n_tasks=market_tasks,
        spam_fraction=spam_fraction, redundancy=5, gold_fraction=1.0,
        seed=seed,
    )
    gold = {
        task_id: str(task.gold_answer)
        for task_id, task in trace.tasks.items()
        if task.gold_answer is not None
    }
    reliability = quality_by_worker(trace)
    comparison = Table(
        title=(
            "E9: aggregator accuracy on a market with "
            f"{spam_fraction:.0%} malicious workers"
        ),
        columns=("aggregator", "accuracy", "tasks_decided"),
    )
    aggregators = [
        MajorityVote(),
        WeightedVote(reliability=reliability),
        OneCoinEM(iterations=15),
    ]
    answers = collect_answers(trace)
    for aggregator in aggregators:
        if isinstance(aggregator, OneCoinEM):
            estimated, _ = aggregator.fit(answers)
        else:
            estimated = aggregate_trace(aggregator, trace)
        decided = {t: a for t, a in estimated.items() if t in gold}
        correct = sum(
            1 for task_id, answer in decided.items()
            if str(answer) == gold[task_id]
        )
        accuracy = correct / len(decided) if decided else 0.0
        comparison.add_row(aggregator.name, accuracy, len(decided))
    return ExperimentResult(
        experiment_id="E9",
        title="Redundancy and aggregation (budget-optimal premise)",
        tables=(curve, comparison),
    )
