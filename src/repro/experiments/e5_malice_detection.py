"""E5 — Malicious-worker detection across spam regimes.

Vuurens et al. [20] observed ~40 % malicious answers on AMT; Axiom 4
obliges platforms to surface such workers.  This experiment sweeps the
malicious fraction of the population from 0 to 50 %, runs a redundant-
labelling market (each task answered by several workers, some tasks
gold-seeded), and scores each detector's precision/recall/F1 against
the ground-truth behaviour assignment.

Expected shape: the ensemble dominates single signals in F1; agreement
degrades as spam saturates the majority vote (near 50 % the majority
itself is polluted); gold stays robust but covers only seeded tasks.
"""

from __future__ import annotations

import random

from repro.core.entities import Requester
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import Table
from repro.malice import (
    AgreementDetector,
    Detector,
    EnsembleDetector,
    GoldStandardDetector,
    TimingDetector,
    evaluate_detector,
)
from repro.platform.behavior import behavior_named
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.review import AcceptAllReview
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import uniform_tasks
from repro.workloads.workers import worker


def labelled_market_trace(
    n_workers: int = 30,
    n_tasks: int = 40,
    spam_fraction: float = 0.4,
    redundancy: int = 5,
    gold_fraction: float = 0.5,
    seed: int = 0,
):
    """Run a redundant labelling market; return (trace, malicious ids).

    Half the bad workers are spammers (fast + random), half malicious
    (wrong but unhurried) so the timing detector's blind spot shows.
    """
    rng = random.Random(seed)
    vocabulary = standard_vocabulary()
    platform = CrowdsourcingPlatform(
        review_policy=AcceptAllReview(), seed=seed
    )
    requester = Requester(requester_id="r0001", name="labels inc")
    platform.register_requester(requester)
    n_bad = round(n_workers * spam_fraction)
    malicious_ids: set[str] = set()
    workers = []
    behaviors = {}
    for index in range(n_workers):
        worker_id = f"w{index + 1:04d}"
        entity = worker(worker_id, vocabulary, skills=("categorization",))
        platform.register_worker(entity)
        workers.append(entity)
        if index < n_bad:
            malicious_ids.add(worker_id)
            behaviors[worker_id] = behavior_named(
                "spammer" if index % 2 == 0 else "malicious"
            )
        else:
            behaviors[worker_id] = behavior_named("diligent")
    tasks = uniform_tasks(
        n_tasks, vocabulary, requester.requester_id, reward=0.05,
        skills=("categorization",), gold=False,
    )
    # Gold-seed a fraction; give every task a plausible duration so the
    # timing detector has signal.
    seeded = []
    for index, task in enumerate(tasks):
        gold = "A" if index < n_tasks * gold_fraction else None
        seeded.append(
            task.__class__(
                task_id=task.task_id,
                requester_id=task.requester_id,
                required_skills=task.required_skills,
                reward=task.reward,
                kind=task.kind,
                duration=3,
                gold_answer=gold,
            )
        )
    for task in seeded:
        platform.post_task(task)
        chosen = rng.sample(workers, min(redundancy, len(workers)))
        for entity in chosen:
            platform.start_work(entity.worker_id, task.task_id)
            platform.process_contribution(
                entity.worker_id, task.task_id, behaviors[entity.worker_id]
            )
        platform.close_task(task.task_id)
    return platform.trace, malicious_ids


def default_detectors() -> list[Detector]:
    return [
        GoldStandardDetector(),
        AgreementDetector(),
        TimingDetector(),
        EnsembleDetector(),
    ]


def run(
    n_workers: int = 30,
    n_tasks: int = 40,
    redundancy: int = 5,
    spam_fractions: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    threshold: float = 0.5,
    seed: int = 3,
) -> ExperimentResult:
    table = Table(
        title=(
            f"E5: detector performance vs malicious fraction "
            f"({n_workers} workers, {n_tasks} tasks, redundancy {redundancy})"
        ),
        columns=(
            "spam_fraction", "detector", "precision", "recall", "f1",
        ),
    )
    for spam_fraction in spam_fractions:
        trace, malicious = labelled_market_trace(
            n_workers=n_workers, n_tasks=n_tasks,
            spam_fraction=spam_fraction, redundancy=redundancy, seed=seed,
        )
        for detector in default_detectors():
            outcome = evaluate_detector(detector, trace, malicious, threshold)
            table.add_row(
                spam_fraction, detector.name,
                outcome.precision, outcome.recall, outcome.f1,
            )
    return ExperimentResult(
        experiment_id="E5",
        title="Malicious-worker detection across spam regimes",
        tables=(table,),
    )
