"""E6 — Transparency-DSL expressiveness and cross-platform comparison.

Demonstrates the paper's two claims for a declarative language: (1) the
disclosure surfaces of the surveyed platforms/tools are all expressible
(each preset parses, validates, and round-trips), and (2) policies
compare mechanically across platforms — the Turkopticon preset is a
strict superset of stock AMT, etc.
"""

from __future__ import annotations

from itertools import combinations

from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import Table
from repro.transparency.compare import compare_policies
from repro.transparency.parser import parse_policy
from repro.transparency.presets import PRESETS, preset
from repro.transparency.render import render_policy


def run() -> ExperimentResult:
    expressiveness = Table(
        title="E6: preset policies and their coverage",
        columns=(
            "policy", "rules", "mandated_coverage", "schema_coverage",
            "round_trips", "description_lines",
        ),
    )
    for name in PRESETS:
        policy = preset(name)
        reparsed = parse_policy(policy.to_source())
        description = render_policy(policy.ast)
        expressiveness.add_row(
            name,
            policy.rule_count,
            policy.mandated_coverage(),
            policy.schema_coverage(),
            reparsed == policy.ast,
            len(description.splitlines()),
        )

    comparison = Table(
        title="E6 (detail): pairwise policy comparison",
        columns=(
            "left", "right", "shared", "only_left", "only_right",
            "coverage_gap", "right_superset",
        ),
    )
    for left_name, right_name in combinations(PRESETS, 2):
        diff = compare_policies(preset(left_name), preset(right_name))
        comparison.add_row(
            left_name, right_name,
            len(diff.shared), len(diff.only_left), len(diff.only_right),
            diff.coverage_gap, diff.right_is_superset,
        )
    return ExperimentResult(
        experiment_id="E6",
        title="Transparency DSL expressiveness",
        tables=(expressiveness, comparison),
    )
