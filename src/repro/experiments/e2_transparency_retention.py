"""E2 — Worker retention vs transparency level.

Section 4.1 proposes "worker retention for transparency" as the
objective measure; Section 1 hypothesizes that "a crowdsourcing platform
that provides better transparency would generate less frustration among
workers and see better worker retention."  This experiment runs the
same market under each preset policy (opaque -> full) and reports final
retention, the retention curve, and mean satisfaction.

Expected shape: retention increases monotonically (modulo noise) with
mandated-disclosure coverage.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import Table, series_table
from repro.platform.review import SilentRejectReview
from repro.platform.session import Session, SessionConfig
from repro.transparency.enforcement import PolicyEnforcer
from repro.transparency.presets import PRESETS, preset
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import TaskStream
from repro.workloads.workers import PopulationSpec, population
from repro.core.entities import Requester


def _requesters() -> list[Requester]:
    return [
        Requester(
            requester_id="r0001",
            name="acme research",
            hourly_wage=6.0,
            payment_delay=5,
            recruitment_criteria="qualified workers",
            rejection_criteria="quality below 0.5",
            rating=4.2,
        )
    ]


def run(
    n_workers: int = 120,
    rounds: int = 25,
    tasks_per_round: int = 60,
    seed: int = 7,
    policies: tuple[str, ...] = PRESETS,
) -> ExperimentResult:
    """One session per policy preset; same seed, same market."""
    vocabulary = standard_vocabulary()
    summary = Table(
        title=(
            f"E2: retention vs transparency ({n_workers} workers, "
            f"{rounds} rounds)"
        ),
        columns=(
            "policy", "coverage", "retention", "mean_satisfaction",
            "mean_quality", "total_paid",
        ),
    )
    curves: dict[str, list[float]] = {}
    for policy_name in policies:
        policy = preset(policy_name)
        enforcer = PolicyEnforcer(
            policy,
            platform_stats={
                "fee_structure": "20% fee on rewards",
                "dispute_process": "email support within 48h",
                "estimated_hourly_wage": 5.5,
            },
        )
        spec = PopulationSpec(
            size=n_workers,
            behavior_mix={"diligent": 0.7, "sloppy": 0.3},
            seed=seed,
        )
        workers, behaviors = population(spec, vocabulary)
        stream = TaskStream(
            vocabulary=vocabulary,
            tasks_per_round=tasks_per_round,
            skills_per_task=1,
        )
        config = SessionConfig(
            rounds=rounds,
            tasks_per_round=tasks_per_round,
            seed=seed,
            # A harsh but realistic market: silent rejections create the
            # opacity pressure that transparency is supposed to relieve.
            review_policy=SilentRejectReview(threshold=0.55),
            transparency=enforcer,
        )
        session = Session(
            config=config,
            workers=workers,
            behaviors=behaviors,
            requesters=_requesters(),
            task_factory=stream,
        )
        result = session.run()
        curves[policy_name] = result.retention_series()
        mean_quality = (
            sum(r.mean_quality for r in result.rounds) / len(result.rounds)
        )
        satisfaction = (
            result.rounds[-1].mean_satisfaction if result.rounds else 0.0
        )
        summary.add_row(
            policy_name,
            enforcer.coverage,
            result.retention,
            satisfaction,
            mean_quality,
            sum(r.total_paid for r in result.rounds),
        )
    curve_table = series_table(
        title="E2 (figure): retention curve per policy",
        x_name="round",
        series={name: values for name, values in curves.items()},
        x_values=list(range(1, rounds + 1)),
    )
    return ExperimentResult(
        experiment_id="E2",
        title="Worker retention vs transparency level",
        tables=(summary, curve_table),
    )
