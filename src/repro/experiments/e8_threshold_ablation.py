"""E8 — Ablation: similarity-threshold sensitivity of the Axiom 1 checker.

The paper leaves "similar" open: "Similarity can be platform-dependent
and ranges from perfect equality to threshold-based similarity."  This
ablation quantifies the consequence of that choice.  Two platforms are
replayed with identical worker populations:

* a *noisy but unbiased* platform (RandomSubsetVisibility): every
  worker's view is an independent coin-flip subset — differences are
  pure chance;
* a *biased* platform (BiasedVisibility): premium tasks are
  systematically hidden from one group.

Sweeping the checker's ``visibility_threshold`` shows the trade-off:
a strict threshold (1.0) flags the random noise as unfairness (false
positives), a lax one misses the real bias (false negatives); the
table locates the separating band.
"""

from __future__ import annotations

from repro.core.axiom_assignment import WorkerFairnessInAssignment
from repro.core.entities import Requester
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import Table
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.visibility import BiasedVisibility, RandomSubsetVisibility
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import uniform_tasks
from repro.workloads.workers import homogeneous_population


def _browse_trace(visibility, n_workers: int, n_rounds: int, seed: int):
    """All workers browse simultaneously each round under ``visibility``."""
    platform = CrowdsourcingPlatform(visibility=visibility, seed=seed)
    vocabulary = standard_vocabulary()
    platform.register_requester(Requester(requester_id="r0001"))
    blue = homogeneous_population(
        n_workers // 2, vocabulary, skills=("survey",),
        declared={"group": "blue"}, prefix="wb",
    )
    green = homogeneous_population(
        n_workers - n_workers // 2, vocabulary, skills=("survey",),
        declared={"group": "green"}, prefix="wg",
    )
    for worker in blue + green:
        platform.register_worker(worker)
    next_task = 1
    for _ in range(n_rounds):
        tasks = uniform_tasks(
            4, vocabulary, "r0001", reward=0.05, skills=("survey",),
            start_index=next_task,
        ) + uniform_tasks(
            4, vocabulary, "r0001", reward=0.5, skills=("survey",),
            start_index=next_task + 4,
        )
        next_task += 8
        for task in tasks:
            platform.post_task(task)
        for worker in blue + green:
            platform.browse(worker.worker_id)
        for task in tasks:
            platform.close_task(task.task_id)
        platform.clock.tick(1)
    return platform.trace


def run(
    n_workers: int = 12,
    n_rounds: int = 4,
    seed: int = 2,
    thresholds: tuple[float, ...] = (1.0, 0.9, 0.8, 0.6, 0.4, 0.2),
    noise_keep_probability: float = 0.8,
) -> ExperimentResult:
    noisy_trace = _browse_trace(
        RandomSubsetVisibility(keep_probability=noise_keep_probability),
        n_workers, n_rounds, seed,
    )
    biased_trace = _browse_trace(
        BiasedVisibility(attribute="group", disadvantaged_value="green",
                         reward_ceiling=0.2),
        n_workers, n_rounds, seed,
    )
    table = Table(
        title=(
            "E8: Axiom 1 visibility-threshold ablation "
            f"({n_workers} workers, keep={noise_keep_probability:g} noise)"
        ),
        columns=(
            "threshold", "noisy_violations", "noisy_score",
            "biased_violations", "biased_score",
        ),
    )
    for threshold in thresholds:
        checker = WorkerFairnessInAssignment(
            visibility_threshold=threshold, audit_derivations=False
        )
        noisy = checker.check(noisy_trace)
        biased = checker.check(biased_trace)
        table.add_row(
            threshold,
            noisy.violation_count, noisy.score,
            biased.violation_count, biased.score,
        )
    return ExperimentResult(
        experiment_id="E8",
        title="Similarity-threshold ablation for the Axiom 1 checker",
        tables=(table,),
    )
