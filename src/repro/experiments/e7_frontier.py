"""E7 — The cost of fairness: requester utility vs parity frontier.

Section 3.1.1 frames assignment fairness as a trade-off: requester-
centric allocation "could be discriminatory to workers" while worker-
centric allocation "may be unfavorable to requesters".  This experiment
makes the trade-off explicit: the :class:`EpsilonFairAssigner` is swept
from epsilon = 0 (pure requester-centric) to epsilon = 1 (pure
egalitarian) on the E1 population, tracing a utility/parity Pareto
frontier; the group-parity-constrained assigner is swept alongside.

Note the two epsilons point in opposite directions: for
``EpsilonFairAssigner`` epsilon is the *fairness weight* (1 = most
fair), while for ``FairnessConstrainedAssigner`` it is the *allowed
disparity* (0 = most fair).  Each sweep is monotone in its own
direction.

Expected shape: for the epsilon-fair sweep, requester gain decreases
monotonically in epsilon while disparate impact rises toward 1.0 —
fairness is bought at a smooth, quantifiable utility cost; the
constrained sweep mirrors it.
"""

from __future__ import annotations

import random

from repro.assignment import (
    AssignmentInstance,
    EpsilonFairAssigner,
    FairnessConstrainedAssigner,
)
from repro.experiments.e1_assignment_discrimination import (
    biased_reputation_population,
)
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import Table
from repro.metrics.inequality import gini_coefficient
from repro.metrics.parity import disparate_impact
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import uniform_tasks


def run(
    n_workers: int = 80,
    n_tasks: int = 60,
    capacity: int = 2,
    seed: int = 5,
    epsilons: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    reliability_gap: float = 0.3,
) -> ExperimentResult:
    vocabulary = standard_vocabulary()
    workers = biased_reputation_population(n_workers, seed, reliability_gap)
    tasks = uniform_tasks(
        n_tasks, vocabulary, reward=0.2,
        skills=("image_recognition",), gold=False,
    )
    instance = AssignmentInstance(
        workers=tuple(workers), tasks=tuple(tasks), capacity=capacity
    )
    group_of = {
        w.worker_id: str(w.declared.get("group", "<none>")) for w in workers
    }
    group_sizes: dict[str, int] = {}
    for group in group_of.values():
        group_sizes[group] = group_sizes.get(group, 0) + 1

    def measure(assigner) -> tuple[float, float, float]:
        result = assigner.assign(instance, random.Random(seed))
        counts = {w.worker_id: 0 for w in workers}
        for pair in result.pairs:
            counts[pair.worker_id] += 1
        per_group = {g: 0.0 for g in group_sizes}
        for worker_id, count in counts.items():
            per_group[group_of[worker_id]] += count
        rates = {g: per_group[g] / group_sizes[g] for g in per_group}
        return (
            result.requester_gain,
            disparate_impact(rates),
            gini_coefficient(list(counts.values())),
        )

    table = Table(
        title=(
            f"E7: utility/fairness frontier ({n_workers} workers, "
            f"{n_tasks} tasks, reliability gap {reliability_gap:g})"
        ),
        columns=(
            "assigner", "epsilon", "requester_gain", "disparate_impact",
            "gini",
        ),
    )
    for epsilon in epsilons:
        gain, impact, gini = measure(EpsilonFairAssigner(epsilon=epsilon))
        table.add_row("epsilon_fair", epsilon, gain, impact, gini)
    for epsilon in epsilons:
        gain, impact, gini = measure(
            FairnessConstrainedAssigner("group", epsilon=epsilon)
        )
        table.add_row("fairness_constrained", epsilon, gain, impact, gini)
    return ExperimentResult(
        experiment_id="E7",
        title="Cost of fairness: utility vs parity frontier",
        tables=(table,),
    )
