"""ASCII table construction for experiment output.

Experiments report tables shaped like a paper's evaluation section:
named columns, typed cells (floats rendered with fixed precision), and
a title.  Tables know how to render themselves and how to expose raw
columns for programmatic assertions in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Table:
    """A titled grid of results."""

    title: str
    columns: tuple[str, ...]
    rows: list[tuple[object, ...]] = field(default_factory=list)
    float_precision: int = 3

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in table {self.title!r}") from None
        return [row[index] for row in self.rows]

    def row_dict(self, index: int) -> dict[str, object]:
        return dict(zip(self.columns, self.rows[index]))

    def rows_as_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def _format_cell(self, value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.{self.float_precision}f}"
        return str(value)

    def render(self) -> str:
        """The table as aligned monospace text."""
        cells = [
            [self._format_cell(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        def line(values: Sequence[str]) -> str:
            return "  ".join(v.ljust(w) for v, w in zip(values, widths)).rstrip()

        separator = "  ".join("-" * w for w in widths)
        body = [line(row) for row in cells]
        return "\n".join(
            [self.title, line(self.columns), separator, *body]
        )

    def __str__(self) -> str:
        return self.render()


def series_table(
    title: str, x_name: str, series: dict[str, Iterable[float]],
    x_values: Iterable[object],
) -> Table:
    """A table from named y-series over shared x values (a 'figure')."""
    names = tuple(series)
    table = Table(title=title, columns=(x_name, *names))
    columns = {name: list(values) for name, values in series.items()}
    for index, x in enumerate(x_values):
        table.add_row(x, *(columns[name][index] for name in names))
    return table
