"""E3 — Contribution quality vs fairness of compensation.

Section 4.1's other objective measure: "contributions quality for
fairness".  The same market runs under each compensation regime; unfair
regimes (wage theft, biased review, bonus reneging) depress worker
satisfaction, which feeds back into contribution quality via the
session's morale coupling, and light up the Axiom 3 checker.

Expected shape: quality-based pricing >= fixed pay > discriminatory
regimes in mean quality; Axiom 3 violation counts are ~zero for the
fair regimes and large for the unfair ones; retention follows the same
ordering.

The experiment reports Axiom 3 under *two readings* of "similar
contributions" (see :class:`repro.core.axiom_compensation.FairCompensation`):
the quality-aware reading (the headline — quality-based pricing is
fair) and the strict payload-only reading (the ablation — quality-based
pricing is flagged because identical answers earn different pay).  The
tension between Axiom 3 and the quality-based rewards of [21] is a
finding of this reproduction.
"""

from __future__ import annotations

from repro.compensation.discriminatory import WageTheftScheme
from repro.compensation.fixed import FixedRewardScheme, PartialCreditScheme
from repro.compensation.quality_based import QualityBasedScheme
from repro.core.audit import AuditEngine
from repro.core.axiom_compensation import FairCompensation
from repro.core.axioms import AxiomRegistry
from repro.core.entities import Requester
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import Table
from repro.platform.review import BiasedReview, QualityThresholdReview, ReviewPolicy
from repro.platform.session import Session, SessionConfig
from repro.platform.market import PricingScheme
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import TaskStream
from repro.workloads.workers import PopulationSpec, population


def _regimes() -> list[tuple[str, PricingScheme, ReviewPolicy]]:
    """(name, pricing, review) triples, fair first."""
    fair_review = QualityThresholdReview(threshold=0.5)
    return [
        ("quality_based", QualityBasedScheme(), fair_review),
        ("fixed_reward", FixedRewardScheme(), fair_review),
        ("partial_credit", PartialCreditScheme(), fair_review),
        ("wage_theft", WageTheftScheme(theft_probability=0.35), fair_review),
        (
            "biased_review",
            FixedRewardScheme(),
            BiasedReview(
                attribute="group", disadvantaged_value="green",
                rejection_probability=0.6, threshold=0.5,
            ),
        ),
    ]


def run(
    n_workers: int = 100,
    rounds: int = 18,
    tasks_per_round: int = 50,
    seed: int = 11,
) -> ExperimentResult:
    vocabulary = standard_vocabulary()
    table = Table(
        title=(
            f"E3: quality and fairness per compensation regime "
            f"({n_workers} workers, {rounds} rounds; quality-aware Axiom 3)"
        ),
        columns=(
            "regime", "mean_quality", "axiom3_violations", "axiom3_score",
            "retention", "total_paid",
        ),
    )
    ablation = Table(
        title=(
            "E3 (ablation): Axiom 3 under strict payload-only similarity"
        ),
        columns=("regime", "strict_violations", "strict_score"),
    )
    # Headline reading: contributions are similar only when both payload
    # and latent quality agree; the payment tolerance absorbs the pay
    # difference a within-tolerance quality gap can legitimately cause.
    quality_aware = AuditEngine(
        registry=AxiomRegistry().register(
            FairCompensation(
                similarity_threshold=0.95,
                quality_tolerance=0.02,
                payment_tolerance=0.02,
            )
        )
    )
    strict = AuditEngine(
        registry=AxiomRegistry().register(
            FairCompensation(similarity_threshold=0.95)
        )
    )
    for name, pricing, review in _regimes():
        spec = PopulationSpec(
            size=n_workers,
            behavior_mix={"diligent": 0.7, "sloppy": 0.3},
            seed=seed,
        )
        workers, behaviors = population(spec, vocabulary)
        stream = TaskStream(
            vocabulary=vocabulary, tasks_per_round=tasks_per_round,
            skills_per_task=1, gold_fraction=1.0,
        )
        config = SessionConfig(
            rounds=rounds,
            tasks_per_round=tasks_per_round,
            seed=seed,
            review_policy=review,
            pricing=pricing,
        )
        session = Session(
            config=config, workers=workers, behaviors=behaviors,
            requesters=[
                Requester(
                    requester_id="r0001", name="acme", hourly_wage=6.0,
                    payment_delay=5,
                    recruitment_criteria="any", rejection_criteria="quality",
                )
            ],
            task_factory=stream,
        )
        result = session.run()
        axiom3 = quality_aware.audit(result.trace).result_for(3)
        strict_axiom3 = strict.audit(result.trace).result_for(3)
        mean_quality = (
            sum(r.mean_quality for r in result.rounds) / len(result.rounds)
        )
        table.add_row(
            name,
            mean_quality,
            axiom3.violation_count,
            axiom3.score,
            result.retention,
            sum(r.total_paid for r in result.rounds),
        )
        ablation.add_row(name, strict_axiom3.violation_count, strict_axiom3.score)
    return ExperimentResult(
        experiment_id="E3",
        title="Contribution quality vs compensation fairness",
        tables=(table, ablation),
    )
