"""Experiment registry and runner.

Each experiment module's ``run`` function returns an
:class:`ExperimentResult`; the registry maps experiment ids (E1..E7) to
lazily imported runners so ``python -m repro E2`` works without paying
for the others.

:func:`run_many` executes a selection of experiments, optionally
concurrently (``jobs`` > 1, also reachable as ``--jobs`` on the CLI;
``backend="process"`` / ``--backend process`` fans out over processes
for true multi-core scaling, falling back to threads with a warning if
a runner cannot be pickled).  Experiments are independent seeded
simulations, so results are collected in registry order and are
identical for every worker count and backend.
"""

from __future__ import annotations

import importlib
import inspect
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError
from repro.experiments.replication import resolve_backend
from repro.experiments.tables import Table


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment's output: one or more tables."""

    experiment_id: str
    title: str
    tables: tuple[Table, ...]

    def render(self) -> str:
        header = f"=== {self.experiment_id}: {self.title} ==="
        return "\n\n".join([header, *(table.render() for table in self.tables)])

    def table(self, index: int = 0) -> Table:
        return self.tables[index]


#: experiment id -> module path holding a ``run(**kwargs)`` function.
EXPERIMENTS: dict[str, str] = {
    "E1": "repro.experiments.e1_assignment_discrimination",
    "E2": "repro.experiments.e2_transparency_retention",
    "E3": "repro.experiments.e3_compensation_fairness",
    "E4": "repro.experiments.e4_axiom_benchmarks",
    "E5": "repro.experiments.e5_malice_detection",
    "E6": "repro.experiments.e6_dsl_expressiveness",
    "E7": "repro.experiments.e7_frontier",
    "E8": "repro.experiments.e8_threshold_ablation",
    "E9": "repro.experiments.e9_aggregation",
    "E10": "repro.experiments.e10_power_analysis",
}


def experiment_runner(experiment_id: str) -> Callable[..., ExperimentResult]:
    """The ``run`` callable of one experiment."""
    try:
        module_path = EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    module = importlib.import_module(module_path)
    return module.run


def run_experiment(experiment_id: str, **kwargs: object) -> ExperimentResult:
    """Run one experiment by id with keyword parameters."""
    return experiment_runner(experiment_id)(**kwargs)


def run_many(
    experiment_ids: list[str],
    jobs: int = 1,
    backend: str = "thread",
    **kwargs: object,
) -> list[ExperimentResult]:
    """Run the selected experiments, ``jobs`` at a time.

    Only parameters an experiment's ``run`` accepts are forwarded.
    Results come back in the order of ``experiment_ids`` regardless of
    the worker count or backend — scheduling affects wall-clock only.
    Registered runners are module-level functions, so the ``process``
    backend normally applies; anything unpicklable (monkeypatched
    runners, closure kwargs) degrades to threads with a warning.
    """
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    calls: list[tuple[Callable[..., ExperimentResult], dict]] = []
    for experiment_id in experiment_ids:
        runner = experiment_runner(experiment_id)
        accepted = set(inspect.signature(runner).parameters)
        forwarded = {k: v for k, v in kwargs.items() if k in accepted}
        calls.append((runner, forwarded))
    if jobs == 1 or len(calls) == 1:
        return [runner(**forwarded) for runner, forwarded in calls]
    backend = resolve_backend(
        backend, *(item for runner, forwarded in calls
                   for item in (runner, forwarded))
    )
    executor_cls = (
        ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
    )
    with executor_cls(max_workers=min(jobs, len(calls))) as pool:
        futures = [
            pool.submit(runner, **forwarded) for runner, forwarded in calls
        ]
        return [future.result() for future in futures]


def run_all(
    jobs: int = 1, backend: str = "thread", **kwargs: object
) -> list[ExperimentResult]:
    """Run every registered experiment with shared keyword parameters."""
    return run_many(sorted(EXPERIMENTS), jobs=jobs, backend=backend, **kwargs)
