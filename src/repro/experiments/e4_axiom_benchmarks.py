"""E4 — The per-axiom fairness-check benchmark suite.

Section 3.3.1: "we intend to develop fairness check benchmarks and
algorithms for existing crowdsourcing systems."  Benchmark protocol:
every Section 3.1 scenario (eleven injections + one clean control) is
audited with the full default suite; for each axiom we count

* true positives — scenarios labelled as violating the axiom where the
  checker fired;
* false positives — scenarios *not* labelled where it fired anyway;
* false negatives — labelled scenarios it missed;

and report precision/recall per axiom.  Expected shape: 1.0/1.0 across
the board, and zero violations of any kind on the clean control.
"""

from __future__ import annotations

from repro.core.audit import AuditEngine
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import Table
from repro.workloads.scenarios import Scenario, all_scenarios


def run(seed: int = 0, scenarios: list[Scenario] | None = None) -> ExperimentResult:
    suite = scenarios if scenarios is not None else all_scenarios(seed)
    engine = AuditEngine()
    fired_by_scenario: dict[str, set[int]] = {}
    for scenario in suite:
        report = engine.audit(scenario.trace)
        fired_by_scenario[scenario.name] = {
            result.axiom_id
            for result in report.results
            if result.violation_count > 0
        }

    per_axiom = Table(
        title="E4: per-axiom detection over the scenario suite",
        columns=(
            "axiom", "true_pos", "false_pos", "false_neg",
            "precision", "recall",
        ),
    )
    for axiom_id in range(1, 8):
        tp = fp = fn = 0
        for scenario in suite:
            expected = axiom_id in scenario.violated_axioms
            fired = axiom_id in fired_by_scenario[scenario.name]
            if expected and fired:
                tp += 1
            elif fired and not expected:
                fp += 1
            elif expected and not fired:
                fn += 1
        precision = tp / (tp + fp) if (tp + fp) else 1.0
        recall = tp / (tp + fn) if (tp + fn) else 1.0
        per_axiom.add_row(axiom_id, tp, fp, fn, precision, recall)

    per_scenario = Table(
        title="E4 (detail): axioms fired per scenario",
        columns=("scenario", "expected_axioms", "fired_axioms", "exact_match"),
    )
    for scenario in suite:
        expected = sorted(scenario.violated_axioms)
        fired = sorted(fired_by_scenario[scenario.name])
        per_scenario.add_row(
            scenario.name,
            ",".join(map(str, expected)) or "-",
            ",".join(map(str, fired)) or "-",
            expected == fired,
        )
    return ExperimentResult(
        experiment_id="E4",
        title="Fairness-check benchmark suite",
        tables=(per_axiom, per_scenario),
    )
