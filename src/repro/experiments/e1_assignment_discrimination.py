"""E1 — Discriminatory power of task-assignment algorithms.

The paper's Section 4.2 agenda: "review existing algorithms for task
assignment ... to assess their discriminatory power."  Setup: a worker
population split into two demographic groups that are *equally skilled*,
but one group carries systematically lower platform-computed reliability
(``C_w``) — the residue of historically biased reviews, the
inter-process dependency of Section 3.3.1.  Every assigner allocates
the same task batch; we measure, per assigner:

* disparate impact of per-worker assignment counts across groups
  (four-fifths rule: < 0.8 is conventionally discriminatory);
* Gini coefficient of the task-count allocation;
* total requester gain and worker surplus.

Expected shape: requester-centric and Hungarian(requester) concentrate
work on the high-reliability group (low disparate impact); self-
appointment, round-robin, and worker-centric stay near parity; the
fairness-constrained assigners restore parity at a modest gain cost.
"""

from __future__ import annotations

import random

from repro.assignment import (
    AssignmentInstance,
    BudgetOptimalAssigner,
    EpsilonFairAssigner,
    FairnessConstrainedAssigner,
    HungarianAssigner,
    OnlineGreedyAssigner,
    RequesterCentricAssigner,
    RoundRobinAssigner,
    SelfAppointmentAssigner,
    WorkerCentricAssigner,
)
from repro.assignment.base import Assigner
from repro.core.attributes import ComputedAttributes, DeclaredAttributes
from repro.core.entities import Worker
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import Table
from repro.metrics.inequality import gini_coefficient
from repro.metrics.parity import disparate_impact, statistical_parity_difference
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import task_batch


def biased_reputation_population(
    size: int, seed: int = 0, reliability_gap: float = 0.3
) -> list[Worker]:
    """Two equally skilled groups; 'green' carries depressed ``C_w``.

    Blue workers have acceptance ratios around 0.9; green workers are
    identical except their published ratio is lower by
    ``reliability_gap`` — the imprint of historically biased reviews.
    """
    rng = random.Random(seed)
    vocabulary = standard_vocabulary()
    skills = ("image_recognition", "categorization")
    workers = []
    for index in range(size):
        group = "blue" if index % 2 == 0 else "green"
        base_ratio = 0.9 + rng.uniform(-0.05, 0.05)
        ratio = base_ratio - (reliability_gap if group == "green" else 0.0)
        workers.append(
            Worker(
                worker_id=f"w{index + 1:04d}",
                declared=DeclaredAttributes({"group": group}),
                computed=ComputedAttributes(
                    {
                        "acceptance_ratio": max(0.0, min(1.0, ratio)),
                        "tasks_completed": 20,
                    }
                ),
                skills=vocabulary.vector(skills),
            )
        )
    return workers


def default_assigners(group_attribute: str = "group") -> list[Assigner]:
    """The E1 catalogue, discriminatory-to-fair."""
    return [
        RequesterCentricAssigner(),
        HungarianAssigner(objective="requester"),
        OnlineGreedyAssigner(),
        BudgetOptimalAssigner(redundancy=2),
        SelfAppointmentAssigner(),
        RoundRobinAssigner(),
        WorkerCentricAssigner(),
        FairnessConstrainedAssigner(group_attribute, epsilon=0.05),
        EpsilonFairAssigner(epsilon=0.6),
    ]


def run(
    n_workers: int = 120,
    n_tasks: int = 90,
    capacity: int = 2,
    seed: int = 0,
    reliability_gap: float = 0.3,
    assigners: list[Assigner] | None = None,
) -> ExperimentResult:
    """Run the sweep; one table row per assigner."""
    rng = random.Random(seed)
    workers = biased_reputation_population(n_workers, seed, reliability_gap)
    vocabulary = standard_vocabulary()
    tasks = task_batch(
        n_tasks, vocabulary, rng,
        skills_per_task=1, gold_fraction=0.0,
    )
    # All workers qualify for all tasks: restrict required skills to the
    # population's shared skills so reliability is the only differentiator.
    tasks = [
        task.__class__(
            task_id=task.task_id,
            requester_id=task.requester_id,
            required_skills=vocabulary.vector(("image_recognition",)),
            reward=task.reward,
            kind=task.kind,
            duration=task.duration,
        )
        for task in tasks
    ]
    instance = AssignmentInstance(
        workers=tuple(workers), tasks=tuple(tasks), capacity=capacity
    )
    group_of = {
        w.worker_id: str(w.declared.get("group", "<none>")) for w in workers
    }
    group_sizes: dict[str, int] = {}
    for group in group_of.values():
        group_sizes[group] = group_sizes.get(group, 0) + 1

    table = Table(
        title=(
            "E1: discriminatory power of assignment algorithms "
            f"({n_workers} workers, {n_tasks} tasks, reliability gap "
            f"{reliability_gap:g})"
        ),
        columns=(
            "assigner", "assigned", "disparate_impact", "parity_diff",
            "gini", "requester_gain", "worker_surplus",
        ),
    )
    for assigner in assigners if assigners is not None else default_assigners():
        result = assigner.assign(instance, random.Random(seed))
        counts = {w.worker_id: 0 for w in workers}
        for pair in result.pairs:
            counts[pair.worker_id] += 1
        per_group: dict[str, float] = {g: 0.0 for g in group_sizes}
        for worker_id, count in counts.items():
            per_group[group_of[worker_id]] += count
        rates = {
            group: per_group[group] / group_sizes[group] for group in per_group
        }
        table.add_row(
            assigner.name,
            len(result.pairs),
            disparate_impact(rates),
            statistical_parity_difference(rates),
            gini_coefficient(list(counts.values())),
            result.requester_gain,
            result.worker_surplus,
        )
    return ExperimentResult(
        experiment_id="E1",
        title="Discriminatory power of task-assignment algorithms",
        tables=(table,),
    )
