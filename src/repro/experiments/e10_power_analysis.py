"""E10 — Statistical power of the Axiom 1 checker vs bias intensity.

Real discrimination is rarely total: a platform may throttle a group's
premium visibility only *sometimes*.  This experiment sweeps the bias
probability of :class:`~repro.platform.visibility.BiasedVisibility`
from 0 (no discrimination) to 1 (always) and measures, per intensity:

* raw Axiom 1 violations and the fairness score;
* the *detection rate* across independent replications — the checker's
  statistical power;
* the false-positive anchor at bias 0 (must be ~0 detections).

Expected shape: power rises steeply with bias probability, reaching
1.0 well below total discrimination — a few observed browse windows
suffice because each simultaneous unequal view is direct evidence.
"""

from __future__ import annotations

from repro.core.axiom_assignment import WorkerFairnessInAssignment
from repro.core.entities import Requester
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import Table
from repro.platform.market import CrowdsourcingPlatform
from repro.platform.visibility import BiasedVisibility
from repro.workloads.skills import standard_vocabulary
from repro.workloads.tasks import uniform_tasks
from repro.workloads.workers import homogeneous_population


def _biased_browse_trace(
    bias_probability: float, n_workers: int, n_rounds: int, seed: int
):
    """Simultaneous browse rounds under partially biased visibility."""
    platform = CrowdsourcingPlatform(
        visibility=BiasedVisibility(
            attribute="group", disadvantaged_value="green",
            reward_ceiling=0.2, bias_probability=bias_probability,
        ),
        seed=seed,
    )
    vocabulary = standard_vocabulary()
    platform.register_requester(Requester(requester_id="r0001"))
    blue = homogeneous_population(
        n_workers // 2, vocabulary, skills=("survey",),
        declared={"group": "blue"}, prefix="wb",
    )
    green = homogeneous_population(
        n_workers - n_workers // 2, vocabulary, skills=("survey",),
        declared={"group": "green"}, prefix="wg",
    )
    for worker in blue + green:
        platform.register_worker(worker)
    next_task = 1
    for _ in range(n_rounds):
        tasks = uniform_tasks(
            3, vocabulary, "r0001", reward=0.05, skills=("survey",),
            start_index=next_task,
        ) + uniform_tasks(
            3, vocabulary, "r0001", reward=0.5, skills=("survey",),
            start_index=next_task + 3,
        )
        next_task += 6
        for task in tasks:
            platform.post_task(task)
        for worker in blue + green:
            platform.browse(worker.worker_id)
        for task in tasks:
            platform.close_task(task.task_id)
        platform.clock.tick(1)
    return platform.trace


def run(
    bias_probabilities: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0),
    n_workers: int = 10,
    n_rounds: int = 4,
    replications: int = 10,
    seed: int = 17,
) -> ExperimentResult:
    checker = WorkerFairnessInAssignment(audit_derivations=False)
    table = Table(
        title=(
            f"E10: Axiom 1 detection power vs bias intensity "
            f"({n_workers} workers, {n_rounds} browse rounds, "
            f"{replications} replications)"
        ),
        columns=(
            "bias_probability", "detection_rate", "mean_violations",
            "mean_score",
        ),
    )
    for bias_probability in bias_probabilities:
        detections = 0
        violation_total = 0
        score_total = 0.0
        for replication in range(replications):
            trace = _biased_browse_trace(
                bias_probability, n_workers, n_rounds,
                seed=seed + replication,
            )
            check = checker.check(trace)
            if check.violation_count > 0:
                detections += 1
            violation_total += check.violation_count
            score_total += check.score
        table.add_row(
            bias_probability,
            detections / replications,
            violation_total / replications,
            score_total / replications,
        )
    return ExperimentResult(
        experiment_id="E10",
        title="Statistical power of the Axiom 1 checker",
        tables=(table,),
    )
