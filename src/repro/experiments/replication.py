"""Multi-seed replication of controlled experiments.

Section 4.1 proposes *controlled experiments*; a single seeded run is
one sample.  :func:`replicate` reruns a metric-extracting experiment
across seeds and summarizes each metric with mean, standard deviation,
and min/max — enough to tell a real effect (e.g. transparency lifting
retention) from seed noise without external stats packages.

Replications are embarrassingly parallel: each seed's run is an
independent, self-seeded simulation.  ``replicate(..., jobs=4)`` fans
the seeds out over an executor while collecting results *in seed
order*, so the summaries — and any table rendered from them — are
byte-identical for every worker count and backend (the determinism
regression tests lock this down).  Two backends:

* ``backend="thread"`` (default) keeps arbitrary closures usable as
  experiments but shares one GIL;
* ``backend="process"`` unlocks true multi-core scaling for *picklable*
  experiments (module-level functions).  When the experiment cannot be
  pickled the call falls back to threads with a warning rather than
  failing — the results are identical either way, only wall-clock
  differs.
"""

from __future__ import annotations

import math
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import ReproError
from repro.experiments.tables import Table

#: Executor families for parallel replication.
REPLICATION_BACKENDS = ("thread", "process")


def resolve_backend(
    backend: str, *callables: object, noun: str = "experiment"
) -> str:
    """Validate a backend name; degrade ``process`` to ``thread`` when
    any of ``callables`` cannot cross a process boundary.

    The pickle probe runs up front so a failure costs a warning, not a
    half-spawned pool.  ``noun`` names what is being probed in that
    warning — other subsystems (the sharded audit engine probes axioms
    and partitioners) reuse this machinery.
    """
    if backend not in REPLICATION_BACKENDS:
        raise ReproError(
            f"unknown replication backend {backend!r}; "
            f"known: {', '.join(REPLICATION_BACKENDS)}"
        )
    if backend != "process":
        return backend
    for item in callables:
        try:
            pickle.dumps(item)
        except Exception:  # pickle raises a zoo of types
            warnings.warn(
                f"{noun} {getattr(item, '__name__', item)!r} is not "
                "picklable (closures and lambdas cannot cross process "
                "boundaries); falling back to the thread backend",
                RuntimeWarning,
                stacklevel=3,
            )
            return "thread"
    return "process"


@dataclass(frozen=True)
class MetricSummary:
    """Mean/spread of one metric across replications."""

    name: str
    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Sample standard deviation (0.0 for a single replication)."""
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    def interval(self, z: float = 1.96) -> tuple[float, float]:
        """A normal-approximation confidence interval for the mean."""
        if self.n < 2:
            return (self.mean, self.mean)
        half = z * self.std / math.sqrt(self.n)
        return (self.mean - half, self.mean + half)


@dataclass(frozen=True)
class ReplicationResult:
    """All metric summaries of one replicated experiment."""

    summaries: tuple[MetricSummary, ...]
    seeds: tuple[int, ...]

    def summary(self, name: str) -> MetricSummary:
        for summary in self.summaries:
            if summary.name == name:
                return summary
        raise ReproError(f"no metric {name!r} in replication result")

    def table(self, title: str = "replication summary") -> Table:
        table = Table(
            title=f"{title} (n={len(self.seeds)} seeds)",
            columns=("metric", "mean", "std", "min", "max"),
        )
        for summary in self.summaries:
            table.add_row(
                summary.name, summary.mean, summary.std,
                summary.minimum, summary.maximum,
            )
        return table


def replicate(
    experiment: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
    jobs: int = 1,
    backend: str = "thread",
) -> ReplicationResult:
    """Run ``experiment(seed)`` per seed and summarize its metrics.

    The experiment returns a flat mapping of metric name -> float; all
    replications must return the same metric names.  ``jobs`` > 1 runs
    the seeds concurrently — over threads by default, or over processes
    with ``backend="process"`` when the experiment is picklable (an
    unpicklable experiment falls back to threads with a warning).
    Results are folded in seed order either way, so the summaries do
    not depend on the worker count or backend (only on ``experiment``
    being deterministic per seed, which every simulation here is — each
    run seeds its own RNGs).
    """
    if not seeds:
        raise ReproError("replicate needs at least one seed")
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    if backend not in REPLICATION_BACKENDS:
        raise ReproError(
            f"unknown replication backend {backend!r}; "
            f"known: {', '.join(REPLICATION_BACKENDS)}"
        )
    if jobs == 1 or len(seeds) == 1:
        per_seed = [dict(experiment(seed)) for seed in seeds]
    else:
        # Probe picklability only when a pool will actually spawn, so a
        # serial run of a closure never warns about a moot fallback.
        backend = resolve_backend(backend, experiment)
        executor_cls = (
            ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
        )
        with executor_cls(max_workers=min(jobs, len(seeds))) as pool:
            futures = [pool.submit(experiment, seed) for seed in seeds]
            per_seed = [dict(future.result()) for future in futures]
    per_metric: dict[str, list[float]] = {}
    expected_names: set[str] | None = None
    for seed, metrics in zip(seeds, per_seed):
        names = set(metrics)
        if expected_names is None:
            expected_names = names
        elif names != expected_names:
            raise ReproError(
                f"seed {seed} produced metrics {sorted(names)}, expected "
                f"{sorted(expected_names)}"
            )
        for name, value in metrics.items():
            per_metric.setdefault(name, []).append(float(value))
    summaries = tuple(
        MetricSummary(name=name, values=tuple(values))
        for name, values in sorted(per_metric.items())
    )
    return ReplicationResult(summaries=summaries, seeds=tuple(seeds))


def significant_difference(
    left: MetricSummary, right: MetricSummary, z: float = 1.96
) -> bool:
    """True when the two metrics' confidence intervals do not overlap.

    A deliberately conservative reading: non-overlapping intervals are
    sufficient (not necessary) evidence of a real difference.
    """
    left_low, left_high = left.interval(z)
    right_low, right_high = right.interval(z)
    return left_high < right_low or right_high < left_low
