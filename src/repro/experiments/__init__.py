"""Experiment harness: the E1-E7 studies of DESIGN.md.

Each experiment module exposes a ``run(...) -> ExperimentResult``
function with tunable size parameters (benchmarks use small sizes, the
CLI defaults to paper-scale).  ``repro.experiments.runner`` registers
them all; ``python -m repro`` runs them from the command line.
"""

from repro.experiments.runner import (
    EXPERIMENTS,
    ExperimentResult,
    run_all,
    run_experiment,
)
from repro.experiments.tables import Table

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "Table",
    "run_all",
    "run_experiment",
]
