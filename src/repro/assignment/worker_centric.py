"""Worker-centric assignment: allocate by workers' preferences.

The paper's counterpoint to requester-centric allocation: "a
worker-centric assignment that allocates tasks based on workers'
preferences is more likely to be fair to workers, by favoring their
expected compensation, but may be unfavorable to requesters."

Workers are served in order of how little they have received so far
(least-served first), and each is given the available task of highest
personal value.  This maximizes worker surplus subject to an egalitarian
serving order.
"""

from __future__ import annotations

import random

from repro.assignment.base import (
    AssignmentInstance,
    AssignmentPair,
    AssignmentResult,
    result_totals,
    worker_value,
)


class WorkerCentricAssigner:
    """Egalitarian, preference-respecting allocation."""

    name = "worker_centric"

    def assign(
        self, instance: AssignmentInstance, rng: random.Random
    ) -> AssignmentResult:
        tasks_by_id = {task.task_id: task for task in instance.tasks}
        remaining = {task.task_id: instance.need(task.task_id)
                     for task in instance.tasks}
        served: dict[str, int] = {w.worker_id: 0 for w in instance.workers}
        taken: set[tuple[str, str]] = set()
        pairs: list[AssignmentPair] = []
        # Shuffle once for tie-breaking among equally served workers.
        order = list(instance.workers)
        rng.shuffle(order)
        progressed = True
        while progressed:
            progressed = False
            # Least-served workers first each pass.
            for worker in sorted(order, key=lambda w: served[w.worker_id]):
                if served[worker.worker_id] >= instance.capacity:
                    continue
                open_ids = [
                    tid for tid, need in remaining.items()
                    if need > 0 and (worker.worker_id, tid) not in taken
                ]
                if not open_ids:
                    continue
                best = max(
                    open_ids,
                    key=lambda tid: (worker_value(worker, tasks_by_id[tid]), tid),
                )
                if worker_value(worker, tasks_by_id[best]) <= 0.0:
                    continue
                pairs.append(AssignmentPair(worker.worker_id, best))
                taken.add((worker.worker_id, best))
                served[worker.worker_id] += 1
                remaining[best] -= 1
                progressed = True
        gain, surplus = result_totals(instance, pairs)
        return AssignmentResult(
            pairs=tuple(pairs), assigner=self.name,
            requester_gain=gain, worker_surplus=surplus,
        )
