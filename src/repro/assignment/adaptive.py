"""Adaptive task assignment (Ho, Jabbari & Vaughan style [7]).

The paper's related work cites adaptive assignment for crowdsourced
classification: the platform *learns* worker reliability from observed
review outcomes and routes tasks accordingly.  This assigner keeps a
Beta posterior per worker (successes = accepted reviews, failures =
rejections) and assigns by **Thompson sampling**: each round it draws a
reliability sample per worker and runs gain-greedy allocation on the
samples — exploring uncertain workers early, exploiting reliable ones
later.

Feedback arrives through :meth:`AdaptiveAssigner.observe`, which the
session driver calls after each round with the new review events.

Fairness caveat (why this belongs in the catalogue): the learned
posterior inherits any bias in the review process — a biased reviewer
teaches the assigner to starve the victims.  E1's setup is the static
version of exactly this loop.
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.assignment.base import (
    AssignmentInstance,
    AssignmentPair,
    AssignmentResult,
    result_totals,
)
from repro.core.events import ContributionReviewed
from repro.core.trace import PlatformTrace


class AdaptiveAssigner:
    """Thompson-sampling assignment over Beta reliability posteriors."""

    name = "adaptive_thompson"

    def __init__(self, prior_alpha: float = 1.0, prior_beta: float = 1.0) -> None:
        if prior_alpha <= 0 or prior_beta <= 0:
            raise ValueError("Beta prior parameters must be positive")
        self.prior_alpha = prior_alpha
        self.prior_beta = prior_beta
        self._successes: dict[str, int] = defaultdict(int)
        self._failures: dict[str, int] = defaultdict(int)
        self._observed_reviews = 0

    # ------------------------------------------------------------------
    # Learning

    def observe(self, trace: PlatformTrace) -> int:
        """Absorb review outcomes not yet seen; returns how many.

        Idempotent across calls on a growing trace: only events beyond
        the last observed count are consumed.
        """
        reviews = trace.of_kind(ContributionReviewed)
        fresh = reviews[self._observed_reviews:]
        for review in fresh:
            if review.accepted:
                self._successes[review.worker_id] += 1
            else:
                self._failures[review.worker_id] += 1
        self._observed_reviews = len(reviews)
        return len(fresh)

    def observe_outcome(self, worker_id: str, accepted: bool) -> None:
        """Absorb a single outcome directly (for non-trace callers)."""
        if accepted:
            self._successes[worker_id] += 1
        else:
            self._failures[worker_id] += 1

    def posterior_mean(self, worker_id: str) -> float:
        """Current point estimate of the worker's reliability."""
        alpha = self.prior_alpha + self._successes[worker_id]
        beta = self.prior_beta + self._failures[worker_id]
        return alpha / (alpha + beta)

    def _sample_reliability(self, worker_id: str, rng: random.Random) -> float:
        alpha = self.prior_alpha + self._successes[worker_id]
        beta = self.prior_beta + self._failures[worker_id]
        return rng.betavariate(alpha, beta)

    # ------------------------------------------------------------------
    # Assignment

    def assign(
        self, instance: AssignmentInstance, rng: random.Random
    ) -> AssignmentResult:
        if not instance.workers or not instance.tasks:
            return AssignmentResult(pairs=(), assigner=self.name)
        samples = {
            worker.worker_id: self._sample_reliability(worker.worker_id, rng)
            for worker in instance.workers
        }
        workers_by_id = {w.worker_id: w for w in instance.workers}
        candidates = []
        for worker in instance.workers:
            for task in instance.tasks:
                if not worker.qualifies_for(task):
                    continue
                gain = samples[worker.worker_id] * task.reward
                candidates.append((gain, worker.worker_id, task.task_id))
        candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
        load: dict[str, int] = defaultdict(int)
        remaining = {t.task_id: instance.need(t.task_id) for t in instance.tasks}
        taken: set[tuple[str, str]] = set()
        pairs: list[AssignmentPair] = []
        for gain, worker_id, task_id in candidates:
            if gain <= 0.0:
                continue
            if load[worker_id] >= instance.capacity:
                continue
            if remaining[task_id] <= 0 or (worker_id, task_id) in taken:
                continue
            pairs.append(AssignmentPair(worker_id, task_id))
            taken.add((worker_id, task_id))
            load[worker_id] += 1
            remaining[task_id] -= 1
        total_gain, surplus = result_totals(instance, pairs)
        return AssignmentResult(
            pairs=tuple(pairs), assigner=self.name,
            requester_gain=total_gain, worker_surplus=surplus,
        )
