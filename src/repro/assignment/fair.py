"""Fairness-by-design assigners.

Two constructions that enforce Axiom-1-style parity at assignment time
rather than auditing it post hoc (the design-vs-audit ablation of
DESIGN.md):

* :class:`FairnessConstrainedAssigner` — group-parity constrained
  greedy: while maximizing requester gain, never let one demographic
  group's served rate exceed the least-served group's rate by more than
  ``epsilon``.
* :class:`EpsilonFairAssigner` — a smooth interpolation between pure
  requester-centric (``epsilon = 0``) and pure egalitarian
  (``epsilon = 1``) allocation; sweeping ``epsilon`` traces the E7
  utility/fairness frontier.
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.assignment.base import (
    AssignmentInstance,
    AssignmentPair,
    AssignmentResult,
    expected_gain,
    result_totals,
)
from repro.errors import AssignmentError


class FairnessConstrainedAssigner:
    """Gain-greedy assignment under a group served-rate parity constraint.

    Workers are partitioned by the declared attribute ``group_attribute``
    (workers missing it form their own group).  A group's *served rate*
    is assigned-slots / (group size x capacity).  At every step the
    assigner only considers workers from groups whose served rate is
    within ``epsilon`` of the minimum, picking the highest-gain pair
    among them; when no such pair exists it relaxes to all groups so
    work is never wasted.
    """

    def __init__(self, group_attribute: str, epsilon: float = 0.1) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise AssignmentError("epsilon must be in [0, 1]")
        self.group_attribute = group_attribute
        self.epsilon = epsilon
        self.name = f"fairness_constrained(eps={epsilon:g})"

    def assign(
        self, instance: AssignmentInstance, rng: random.Random
    ) -> AssignmentResult:
        if not instance.workers:
            return AssignmentResult(pairs=(), assigner=self.name)
        group_of = {
            w.worker_id: str(w.declared.get(self.group_attribute, "<none>"))
            for w in instance.workers
        }
        group_size: dict[str, int] = defaultdict(int)
        for wid, group in group_of.items():
            group_size[group] += 1
        served: dict[str, int] = defaultdict(int)  # slots per group
        load: dict[str, int] = {w.worker_id: 0 for w in instance.workers}
        remaining = {t.task_id: instance.need(t.task_id) for t in instance.tasks}
        tasks_by_id = {t.task_id: t for t in instance.tasks}
        workers_by_id = {w.worker_id: w for w in instance.workers}
        taken: set[tuple[str, str]] = set()
        pairs: list[AssignmentPair] = []

        def rate(group: str) -> float:
            return served[group] / (group_size[group] * instance.capacity)

        def candidates(allowed_groups: set[str]) -> list[tuple[float, str, str]]:
            found = []
            for wid, worker in workers_by_id.items():
                if load[wid] >= instance.capacity:
                    continue
                if group_of[wid] not in allowed_groups:
                    continue
                for tid, need in remaining.items():
                    if need <= 0 or (wid, tid) in taken:
                        continue
                    gain = expected_gain(worker, tasks_by_id[tid])
                    if gain > 0.0:
                        found.append((gain, wid, tid))
            return found

        while True:
            min_rate = min(rate(g) for g in group_size)
            lagging = {g for g in group_size if rate(g) <= min_rate + self.epsilon}
            pool = candidates(lagging)
            if not pool:
                pool = candidates(set(group_size))
            if not pool:
                break
            gain, wid, tid = max(pool, key=lambda c: (c[0], c[1], c[2]))
            pairs.append(AssignmentPair(wid, tid))
            taken.add((wid, tid))
            load[wid] += 1
            served[group_of[wid]] += 1
            remaining[tid] -= 1
        total_gain, surplus = result_totals(instance, pairs)
        return AssignmentResult(
            pairs=tuple(pairs), assigner=self.name,
            requester_gain=total_gain, worker_surplus=surplus,
        )


class EpsilonFairAssigner:
    """Interpolates requester-centric and egalitarian allocation.

    Each slot is given to the worker maximizing
    ``(1 - epsilon) * normalized_gain - epsilon * normalized_load``:
    at ``epsilon = 0`` this is greedy gain maximization, at
    ``epsilon = 1`` it is least-loaded-first (task-count egalitarian).
    """

    def __init__(self, epsilon: float = 0.5) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise AssignmentError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self.name = f"epsilon_fair(eps={epsilon:g})"

    def assign(
        self, instance: AssignmentInstance, rng: random.Random
    ) -> AssignmentResult:
        if not instance.workers:
            return AssignmentResult(pairs=(), assigner=self.name)
        tasks_by_id = {t.task_id: t for t in instance.tasks}
        max_gain = max(
            (
                expected_gain(w, t)
                for w in instance.workers
                for t in instance.tasks
            ),
            default=0.0,
        )
        load: dict[str, int] = {w.worker_id: 0 for w in instance.workers}
        remaining = {t.task_id: instance.need(t.task_id) for t in instance.tasks}
        taken: set[tuple[str, str]] = set()
        pairs: list[AssignmentPair] = []
        while True:
            best: tuple[float, str, str] | None = None
            for worker in instance.workers:
                wid = worker.worker_id
                if load[wid] >= instance.capacity:
                    continue
                for tid, need in remaining.items():
                    if need <= 0 or (wid, tid) in taken:
                        continue
                    gain = expected_gain(worker, tasks_by_id[tid])
                    if gain <= 0.0 and self.epsilon == 0.0:
                        continue
                    norm_gain = gain / max_gain if max_gain > 0 else 0.0
                    norm_load = load[wid] / instance.capacity
                    score = (1.0 - self.epsilon) * norm_gain - self.epsilon * norm_load
                    key = (score, wid, tid)
                    if best is None or key > best:
                        best = key
            if best is None:
                break
            _, wid, tid = best
            pairs.append(AssignmentPair(wid, tid))
            taken.add((wid, tid))
            load[wid] += 1
            remaining[tid] -= 1
        gain, surplus = result_totals(instance, pairs)
        return AssignmentResult(
            pairs=tuple(pairs), assigner=self.name,
            requester_gain=gain, worker_surplus=surplus,
        )
