"""Requester-centric greedy assignment (Ho & Vaughan style [8]).

Maximizes total requester gain: repeatedly give the next task slot to
the highest-reliability qualified worker.  The paper's Section 3.1.1
names this family as potentially discriminatory to workers: high-
reliability workers hoard the well-paid tasks while equally *qualified*
but lower-scored workers get nothing — exactly what E1 measures.
"""

from __future__ import annotations

import random

from repro.assignment.base import (
    AssignmentInstance,
    AssignmentPair,
    AssignmentResult,
    expected_gain,
    result_totals,
)


class RequesterCentricAssigner:
    """Greedy gain maximization over (worker, task) pairs."""

    name = "requester_centric"

    def assign(
        self, instance: AssignmentInstance, rng: random.Random
    ) -> AssignmentResult:
        # All candidate pairs with positive gain, best first.  Ties
        # break deterministically on ids so runs are reproducible.
        candidates = [
            (expected_gain(worker, task), worker.worker_id, task.task_id)
            for worker in instance.workers
            for task in instance.tasks
            if expected_gain(worker, task) > 0.0
        ]
        candidates.sort(key=lambda item: (-item[0], item[1], item[2]))
        load: dict[str, int] = {}
        remaining = {task.task_id: instance.need(task.task_id)
                     for task in instance.tasks}
        pairs: list[AssignmentPair] = []
        taken: set[tuple[str, str]] = set()
        for _, worker_id, task_id in candidates:
            if load.get(worker_id, 0) >= instance.capacity:
                continue
            if remaining[task_id] <= 0:
                continue
            if (worker_id, task_id) in taken:
                continue
            pairs.append(AssignmentPair(worker_id, task_id))
            taken.add((worker_id, task_id))
            load[worker_id] = load.get(worker_id, 0) + 1
            remaining[task_id] -= 1
        gain, surplus = result_totals(instance, pairs)
        return AssignmentResult(
            pairs=tuple(pairs), assigner=self.name,
            requester_gain=gain, worker_surplus=surplus,
        )
