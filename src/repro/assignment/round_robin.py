"""Round-robin assignment: tasks dealt to workers like cards.

The equal-share baseline: perfectly fair in task *count* regardless of
attributes, oblivious to skill or preference.  Useful as the fairness
upper bound in E1 (and the utility lower bound in E7).
"""

from __future__ import annotations

import random

from repro.assignment.base import (
    AssignmentInstance,
    AssignmentPair,
    AssignmentResult,
    result_totals,
)


class RoundRobinAssigner:
    """Deal task slots to workers cyclically in shuffled order."""

    name = "round_robin"

    def assign(
        self, instance: AssignmentInstance, rng: random.Random
    ) -> AssignmentResult:
        if not instance.workers:
            return AssignmentResult(pairs=(), assigner=self.name)
        # Expand tasks into slots (one per needed worker).
        slots: list[str] = []
        for task in instance.tasks:
            slots.extend([task.task_id] * instance.need(task.task_id))
        order = list(instance.workers)
        rng.shuffle(order)
        load: dict[str, int] = {w.worker_id: 0 for w in order}
        assigned_to: dict[str, set[str]] = {w.worker_id: set() for w in order}
        pairs: list[AssignmentPair] = []
        cursor = 0
        for task_id in slots:
            # Find the next worker with spare capacity who does not
            # already hold this task.
            for offset in range(len(order)):
                worker = order[(cursor + offset) % len(order)]
                wid = worker.worker_id
                if load[wid] < instance.capacity and task_id not in assigned_to[wid]:
                    pairs.append(AssignmentPair(wid, task_id))
                    load[wid] += 1
                    assigned_to[wid].add(task_id)
                    cursor = (cursor + offset + 1) % len(order)
                    break
        gain, surplus = result_totals(instance, pairs)
        return AssignmentResult(
            pairs=tuple(pairs), assigner=self.name,
            requester_gain=gain, worker_surplus=surplus,
        )
