"""Task-assignment algorithms.

The paper's Section 4.2 agenda is to "review existing algorithms for
task assignment ... to assess their discriminatory power".  This package
implements that catalogue:

* :class:`SelfAppointmentAssigner` — workers pick what they like (the
  AMT model the paper calls fair by access);
* :class:`RequesterCentricAssigner` — maximizes requester gain [8],
  the paper's canonical example of a discriminatory objective;
* :class:`WorkerCentricAssigner` — maximizes workers' expected
  compensation (fairer to workers, costlier to requesters);
* :class:`RoundRobinAssigner` — equal-share baseline;
* :class:`HungarianAssigner` — globally optimal matching (scipy);
* :class:`BudgetOptimalAssigner` — KOS-style redundancy allocation [11];
* :class:`OnlineGreedyAssigner` — tasks arrive online [8];
* :class:`FairnessConstrainedAssigner` / :class:`EpsilonFairAssigner` —
  fairness-by-design assigners enforcing Axiom 1 style parity.

All assigners share the :class:`Assigner` protocol: given workers and
tasks, return an :class:`AssignmentResult` (a set of worker-task pairs
plus diagnostics).
"""

from repro.assignment.adaptive import AdaptiveAssigner
from repro.assignment.base import (
    Assigner,
    AssignmentInstance,
    AssignmentPair,
    AssignmentResult,
    expected_gain,
    worker_value,
)
from repro.assignment.budget_optimal import BudgetOptimalAssigner
from repro.assignment.fair import EpsilonFairAssigner, FairnessConstrainedAssigner
from repro.assignment.hungarian import HungarianAssigner
from repro.assignment.online import OnlineGreedyAssigner
from repro.assignment.requester_centric import RequesterCentricAssigner
from repro.assignment.round_robin import RoundRobinAssigner
from repro.assignment.self_appointment import SelfAppointmentAssigner
from repro.assignment.worker_centric import WorkerCentricAssigner

ALL_ASSIGNERS = (
    AdaptiveAssigner,
    SelfAppointmentAssigner,
    RequesterCentricAssigner,
    WorkerCentricAssigner,
    RoundRobinAssigner,
    HungarianAssigner,
    BudgetOptimalAssigner,
    OnlineGreedyAssigner,
    FairnessConstrainedAssigner,
    EpsilonFairAssigner,
)

__all__ = [
    "ALL_ASSIGNERS",
    "AdaptiveAssigner",
    "Assigner",
    "AssignmentInstance",
    "AssignmentPair",
    "AssignmentResult",
    "BudgetOptimalAssigner",
    "EpsilonFairAssigner",
    "FairnessConstrainedAssigner",
    "HungarianAssigner",
    "OnlineGreedyAssigner",
    "RequesterCentricAssigner",
    "RoundRobinAssigner",
    "SelfAppointmentAssigner",
    "WorkerCentricAssigner",
    "expected_gain",
    "worker_value",
]
