"""Globally optimal assignment via min-cost flow.

Solves the exact gain-maximizing assignment.  With unit capacities and
unit needs this is the classic Hungarian matching (and is solved with
scipy's ``linear_sum_assignment``); the general case — worker capacity
``c``, per-task redundancy ``k``, and the constraint that a worker
contributes to a task at most once — is a transportation problem,
solved as min-cost max-flow (networkx) over

    source --(cap c)--> worker --(cap 1, cost -value)--> task --(cap k)--> sink.

This is the offline optimum the online and greedy algorithms
approximate, and the utility reference point in E7.
"""

from __future__ import annotations

import random

import networkx as nx
import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.assignment.base import (
    AssignmentInstance,
    AssignmentPair,
    AssignmentResult,
    expected_gain,
    result_totals,
    worker_value,
)

#: Fixed-point scale for float values in the integer-cost flow solver.
_COST_SCALE = 1_000_000


class HungarianAssigner:
    """Exact maximum-value assignment.

    ``objective`` selects whose value is maximized: ``"requester"``
    (expected gain, the default) or ``"worker"`` (worker surplus) — the
    same solver serves both sides of the paper's trade-off.  Zero-value
    pairs are never reported (they carry no information and would skew
    allocation-count comparisons against the greedy algorithms).
    """

    def __init__(self, objective: str = "requester") -> None:
        if objective not in ("requester", "worker"):
            raise ValueError(f"unknown objective: {objective!r}")
        self.objective = objective
        self.name = f"hungarian_{objective}"

    def assign(
        self, instance: AssignmentInstance, rng: random.Random
    ) -> AssignmentResult:
        if not instance.workers or not instance.tasks:
            return AssignmentResult(pairs=(), assigner=self.name)
        value = expected_gain if self.objective == "requester" else worker_value
        simple = instance.capacity == 1 and all(
            instance.need(t.task_id) == 1 for t in instance.tasks
        )
        pairs = (
            self._solve_matching(instance, value)
            if simple
            else self._solve_flow(instance, value)
        )
        gain, surplus = result_totals(instance, pairs)
        return AssignmentResult(
            pairs=tuple(pairs), assigner=self.name,
            requester_gain=gain, worker_surplus=surplus,
        )

    def _solve_matching(self, instance: AssignmentInstance, value) -> list:
        """Unit capacity/need: plain rectangular Hungarian matching."""
        weights = np.zeros((len(instance.workers), len(instance.tasks)))
        for row, worker in enumerate(instance.workers):
            for col, task in enumerate(instance.tasks):
                weights[row, col] = value(worker, task)
        rows, cols = linear_sum_assignment(weights, maximize=True)
        return [
            AssignmentPair(
                instance.workers[row].worker_id,
                instance.tasks[col].task_id,
            )
            for row, col in zip(rows, cols)
            if weights[row, col] > 0.0
        ]

    def _solve_flow(self, instance: AssignmentInstance, value) -> list:
        """General case: min-cost max-flow transportation problem."""
        graph = nx.DiGraph()
        source, sink = "__source__", "__sink__"
        for worker in instance.workers:
            graph.add_edge(source, f"w:{worker.worker_id}",
                           capacity=instance.capacity, weight=0)
        positive_edges = 0
        for worker in instance.workers:
            for task in instance.tasks:
                pair_value = value(worker, task)
                weight = int(round(pair_value * _COST_SCALE))
                # Values below the fixed-point resolution (1/_COST_SCALE)
                # quantize to zero and are treated as worthless pairs.
                if weight <= 0:
                    continue
                positive_edges += 1
                graph.add_edge(
                    f"w:{worker.worker_id}", f"t:{task.task_id}",
                    capacity=1, weight=-weight,
                )
        for task in instance.tasks:
            graph.add_edge(f"t:{task.task_id}", sink,
                           capacity=instance.need(task.task_id), weight=0)
        if positive_edges == 0:
            return []
        # Per-worker bypass to the sink: skipping capacity is free, so
        # the max-flow value is always the total worker capacity and the
        # min-cost step selects pairs purely by value.  (A single
        # source->sink bypass would not work: max-flow-min-cost maximizes
        # flow volume first, which can force a larger-cardinality but
        # lower-value matching through the real edges.)
        for worker in instance.workers:
            graph.add_edge(f"w:{worker.worker_id}", sink,
                           capacity=instance.capacity, weight=0)
        flow = nx.max_flow_min_cost(graph, source, sink)
        pairs = []
        for worker in instance.workers:
            worker_node = f"w:{worker.worker_id}"
            for target, amount in flow.get(worker_node, {}).items():
                if amount > 0 and target.startswith("t:"):
                    pairs.append(
                        AssignmentPair(worker.worker_id, target[2:])
                    )
        return pairs
