"""Self-appointment: workers choose the tasks they like.

This is the AMT/CrowdFlower model the paper describes as fair "because
workers have access to the same set of tasks".  Each worker picks up to
``capacity`` tasks from those still needing workers, preferring higher
personal value; worker order is shuffled so no worker has structural
priority.
"""

from __future__ import annotations

import random

from repro.assignment.base import (
    AssignmentInstance,
    AssignmentPair,
    AssignmentResult,
    result_totals,
    worker_value,
)


class SelfAppointmentAssigner:
    """Workers self-select tasks in random arrival order."""

    name = "self_appointment"

    def __init__(self, pick_probability: float = 1.0) -> None:
        """``pick_probability`` models workers who browse without
        committing; 1.0 means every worker takes their best options."""
        if not 0.0 <= pick_probability <= 1.0:
            raise ValueError("pick_probability must be in [0, 1]")
        self.pick_probability = pick_probability

    def assign(
        self, instance: AssignmentInstance, rng: random.Random
    ) -> AssignmentResult:
        remaining = {task.task_id: instance.need(task.task_id)
                     for task in instance.tasks}
        tasks_by_id = {task.task_id: task for task in instance.tasks}
        order = list(instance.workers)
        rng.shuffle(order)
        pairs: list[AssignmentPair] = []
        for worker in order:
            if rng.random() >= self.pick_probability and self.pick_probability < 1.0:
                continue
            # The worker ranks open tasks by personal value and takes
            # the best ones still available.
            open_ids = [tid for tid, need in remaining.items() if need > 0]
            ranked = sorted(
                open_ids,
                key=lambda tid: (-worker_value(worker, tasks_by_id[tid]), tid),
            )
            for task_id in ranked[: instance.capacity]:
                pairs.append(AssignmentPair(worker.worker_id, task_id))
                remaining[task_id] -= 1
        gain, surplus = result_totals(instance, pairs)
        return AssignmentResult(
            pairs=tuple(pairs), assigner=self.name,
            requester_gain=gain, worker_surplus=surplus,
        )
