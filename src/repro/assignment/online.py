"""Online greedy assignment: tasks arrive one at a time [8].

Ho & Vaughan's online setting: when a task arrives, it must be assigned
immediately using only current knowledge.  The greedy rule gives each
arriving task to the best available (highest expected gain) worker.
Because it cannot rebalance later, early arrivals capture the best
workers — a distinct discrimination mechanism from the offline greedy.
"""

from __future__ import annotations

import random

from repro.assignment.base import (
    AssignmentInstance,
    AssignmentPair,
    AssignmentResult,
    expected_gain,
    result_totals,
)


class OnlineGreedyAssigner:
    """Tasks processed in (shuffled) arrival order; each takes the
    current best worker with spare capacity."""

    name = "online_greedy"

    def __init__(self, shuffle_arrivals: bool = True) -> None:
        self.shuffle_arrivals = shuffle_arrivals

    def assign(
        self, instance: AssignmentInstance, rng: random.Random
    ) -> AssignmentResult:
        arrivals = list(instance.tasks)
        if self.shuffle_arrivals:
            rng.shuffle(arrivals)
        load: dict[str, int] = {w.worker_id: 0 for w in instance.workers}
        pairs: list[AssignmentPair] = []
        for task in arrivals:
            for _ in range(instance.need(task.task_id)):
                already = {
                    p.worker_id for p in pairs if p.task_id == task.task_id
                }
                candidates = [
                    w for w in instance.workers
                    if load[w.worker_id] < instance.capacity
                    and w.worker_id not in already
                    and expected_gain(w, task) > 0.0
                ]
                if not candidates:
                    break
                best = max(
                    candidates,
                    key=lambda w: (expected_gain(w, task), w.worker_id),
                )
                pairs.append(AssignmentPair(best.worker_id, task.task_id))
                load[best.worker_id] += 1
        gain, surplus = result_totals(instance, pairs)
        return AssignmentResult(
            pairs=tuple(pairs), assigner=self.name,
            requester_gain=gain, worker_surplus=surplus,
        )
