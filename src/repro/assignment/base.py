"""Assignment protocol and shared instance/result types.

An assignment *instance* is a set of workers, a set of tasks, and
per-worker capacities.  An assigner returns worker-task pairs.  Two
standard value functions are shared by several algorithms:

* :func:`expected_gain` — the requester's expected value of giving the
  task to this worker: reward-weighted worker reliability (the
  requester-centric objective of Ho & Vaughan [8]);
* :func:`worker_value` — the worker's value for the task: the reward,
  discounted when the worker lacks required skills (they would likely
  be rejected and unpaid).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence

from repro.core.entities import Task, Worker
from repro.errors import AssignmentError


@dataclass(frozen=True)
class AssignmentPair:
    """One worker-task allocation."""

    worker_id: str
    task_id: str


@dataclass(frozen=True)
class AssignmentInstance:
    """The input to an assigner.

    ``capacity`` bounds how many tasks each worker may receive this
    round (default 1).  ``tasks_need`` bounds how many distinct workers
    a task may be given to (redundancy; default 1).
    """

    workers: tuple[Worker, ...]
    tasks: tuple[Task, ...]
    capacity: int = 1
    tasks_need: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise AssignmentError("worker capacity must be >= 1")
        worker_ids = [w.worker_id for w in self.workers]
        if len(set(worker_ids)) != len(worker_ids):
            raise AssignmentError("duplicate worker ids in instance")
        task_ids = [t.task_id for t in self.tasks]
        if len(set(task_ids)) != len(task_ids):
            raise AssignmentError("duplicate task ids in instance")

    def need(self, task_id: str) -> int:
        """How many workers the task still needs (>= 1)."""
        return max(1, int(self.tasks_need.get(task_id, 1)))


@dataclass(frozen=True)
class AssignmentResult:
    """The output of an assigner: pairs plus simple diagnostics."""

    pairs: tuple[AssignmentPair, ...]
    assigner: str
    requester_gain: float = 0.0
    worker_surplus: float = 0.0

    def by_worker(self) -> dict[str, list[str]]:
        grouped: dict[str, list[str]] = {}
        for pair in self.pairs:
            grouped.setdefault(pair.worker_id, []).append(pair.task_id)
        return grouped

    def by_task(self) -> dict[str, list[str]]:
        grouped: dict[str, list[str]] = {}
        for pair in self.pairs:
            grouped.setdefault(pair.task_id, []).append(pair.worker_id)
        return grouped

    def task_count(self, worker_id: str) -> int:
        return sum(1 for pair in self.pairs if pair.worker_id == worker_id)


class Assigner(Protocol):
    """Maps an assignment instance to an assignment result."""

    name: str

    def assign(
        self, instance: AssignmentInstance, rng: random.Random
    ) -> AssignmentResult: ...


def reliability(worker: Worker) -> float:
    """A worker's estimated reliability from published ``C_w``.

    Uses ``mean_quality`` when available, else ``acceptance_ratio``,
    else an optimistic prior of 1.0 (new workers get the benefit of the
    doubt, as platforms do).
    """
    quality = worker.computed.get("mean_quality")
    if isinstance(quality, (int, float)) and not isinstance(quality, bool):
        return max(0.0, min(1.0, float(quality)))
    ratio = worker.computed.get("acceptance_ratio")
    if isinstance(ratio, (int, float)) and not isinstance(ratio, bool):
        return max(0.0, min(1.0, float(ratio)))
    return 1.0


def expected_gain(worker: Worker, task: Task) -> float:
    """Requester's expected gain: reliability x reward, zero when the
    worker is unqualified (their work would be unusable)."""
    if not worker.qualifies_for(task):
        return 0.0
    return reliability(worker) * task.reward


def worker_value(worker: Worker, task: Task) -> float:
    """Worker's value for the task: the reward, discounted by the risk
    of rejection when unqualified."""
    if worker.qualifies_for(task):
        return task.reward
    return 0.25 * task.reward


def validate_result(
    instance: AssignmentInstance, result: AssignmentResult
) -> None:
    """Check structural feasibility of a result against its instance.

    Raises :class:`AssignmentError` on capacity violations, unknown
    ids, over-assignment of a task, or duplicate pairs.
    """
    worker_ids = {w.worker_id for w in instance.workers}
    task_ids = {t.task_id for t in instance.tasks}
    seen: set[tuple[str, str]] = set()
    per_worker: dict[str, int] = {}
    per_task: dict[str, int] = {}
    for pair in result.pairs:
        if pair.worker_id not in worker_ids:
            raise AssignmentError(f"unknown worker in result: {pair.worker_id}")
        if pair.task_id not in task_ids:
            raise AssignmentError(f"unknown task in result: {pair.task_id}")
        key = (pair.worker_id, pair.task_id)
        if key in seen:
            raise AssignmentError(f"duplicate pair in result: {key}")
        seen.add(key)
        per_worker[pair.worker_id] = per_worker.get(pair.worker_id, 0) + 1
        per_task[pair.task_id] = per_task.get(pair.task_id, 0) + 1
    for worker_id, count in per_worker.items():
        if count > instance.capacity:
            raise AssignmentError(
                f"worker {worker_id} got {count} tasks, capacity "
                f"{instance.capacity}"
            )
    for task_id, count in per_task.items():
        if count > instance.need(task_id):
            raise AssignmentError(
                f"task {task_id} assigned to {count} workers, needs at most "
                f"{instance.need(task_id)}"
            )


def result_totals(
    instance: AssignmentInstance, pairs: Sequence[AssignmentPair]
) -> tuple[float, float]:
    """(requester_gain, worker_surplus) totals for a pair set."""
    workers = {w.worker_id: w for w in instance.workers}
    tasks = {t.task_id: t for t in instance.tasks}
    gain = sum(
        expected_gain(workers[p.worker_id], tasks[p.task_id]) for p in pairs
    )
    surplus = sum(
        worker_value(workers[p.worker_id], tasks[p.task_id]) for p in pairs
    )
    return gain, surplus
