"""Budget-optimal redundant allocation (Karger-Oh-Shah inspired [11]).

KOS show that under a total budget, reliability is best bought by
assigning each task to a *redundant* set of workers sized to the target
confidence, spreading load evenly (their random regular bipartite
graphs).  We implement the allocation side: given a per-task budget in
worker-slots, build an (approximately) regular random bipartite
assignment — each task gets ``redundancy`` distinct workers, and worker
loads stay within one of each other.
"""

from __future__ import annotations

import math
import random

from repro.assignment.base import (
    AssignmentInstance,
    AssignmentPair,
    AssignmentResult,
    result_totals,
)
from repro.errors import AssignmentError


def redundancy_for_reliability(
    worker_accuracy: float, target_error: float
) -> int:
    """Number of redundant answers for majority vote to reach the target.

    Chernoff-style bound: with i.i.d. workers of accuracy ``p > 0.5``,
    majority error after ``k`` answers is at most
    ``exp(-2 k (p - 1/2)^2)``; solve for the smallest odd ``k``.
    """
    if not 0.5 < worker_accuracy <= 1.0:
        raise AssignmentError(
            f"majority voting needs accuracy in (0.5, 1], got {worker_accuracy}"
        )
    if not 0.0 < target_error < 1.0:
        raise AssignmentError(f"target error must be in (0, 1), got {target_error}")
    margin = worker_accuracy - 0.5
    k = math.log(1.0 / target_error) / (2.0 * margin * margin)
    k_int = max(1, math.ceil(k))
    return k_int if k_int % 2 == 1 else k_int + 1


class BudgetOptimalAssigner:
    """Regular random redundant assignment under a slot budget."""

    name = "budget_optimal"

    def __init__(self, redundancy: int = 3) -> None:
        if redundancy < 1:
            raise AssignmentError("redundancy must be >= 1")
        self.redundancy = redundancy

    def assign(
        self, instance: AssignmentInstance, rng: random.Random
    ) -> AssignmentResult:
        if not instance.workers:
            return AssignmentResult(pairs=(), assigner=self.name)
        load: dict[str, int] = {w.worker_id: 0 for w in instance.workers}
        pairs: list[AssignmentPair] = []
        for task in instance.tasks:
            # The configured redundancy is the KOS budget per task, but
            # the instance's per-task need is a hard cap (an instance
            # that says a task needs one worker gets exactly one).
            want = min(
                self.redundancy, instance.need(task.task_id),
                len(instance.workers),
            )
            # Pick the least-loaded workers with spare capacity, with a
            # random shuffle as tie-break -> approximately regular graph.
            eligible = [
                w for w in instance.workers
                if load[w.worker_id] < instance.capacity
            ]
            rng.shuffle(eligible)
            eligible.sort(key=lambda w: load[w.worker_id])
            for worker in eligible[:want]:
                pairs.append(AssignmentPair(worker.worker_id, task.task_id))
                load[worker.worker_id] += 1
        gain, surplus = result_totals(instance, pairs)
        return AssignmentResult(
            pairs=tuple(pairs), assigner=self.name,
            requester_gain=gain, worker_surplus=surplus,
        )
