"""Demographic parity measures over traces.

These quantify the *discriminatory power* the paper's agenda asks us to
assess: how unevenly assignment/visibility/earnings fall across
demographic groups.  ``disparate_impact`` follows the EEOC four-fifths
convention: a ratio below 0.8 is conventionally discriminatory.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping

from repro.core.events import AssignmentMade, PaymentIssued, TasksShown
from repro.core.trace import PlatformTrace


@dataclass(frozen=True)
class GroupExposure:
    """Per-group aggregate exposure extracted from one trace."""

    group: str
    workers: int
    tasks_shown: int
    tasks_assigned: int
    total_paid: float

    @property
    def shown_per_worker(self) -> float:
        return self.tasks_shown / self.workers if self.workers else 0.0

    @property
    def assigned_per_worker(self) -> float:
        return self.tasks_assigned / self.workers if self.workers else 0.0

    @property
    def paid_per_worker(self) -> float:
        return self.total_paid / self.workers if self.workers else 0.0


def exposure_by_group(
    trace: PlatformTrace, group_attribute: str = "group"
) -> dict[str, GroupExposure]:
    """Aggregate visibility, assignment, and pay per demographic group."""
    group_of: dict[str, str] = {}
    for worker_id in trace.worker_ids:
        worker = trace.final_worker(worker_id)
        group_of[worker_id] = str(worker.declared.get(group_attribute, "<none>"))
    workers_per_group: dict[str, int] = defaultdict(int)
    for group in group_of.values():
        workers_per_group[group] += 1
    shown: dict[str, int] = defaultdict(int)
    for event in trace.of_kind(TasksShown):
        shown[group_of.get(event.worker_id, "<none>")] += len(event.task_ids)
    assigned: dict[str, int] = defaultdict(int)
    for event in trace.of_kind(AssignmentMade):
        assigned[group_of.get(event.worker_id, "<none>")] += 1
    paid: dict[str, float] = defaultdict(float)
    for event in trace.of_kind(PaymentIssued):
        paid[group_of.get(event.worker_id, "<none>")] += event.amount
    return {
        group: GroupExposure(
            group=group,
            workers=workers_per_group[group],
            tasks_shown=shown.get(group, 0),
            tasks_assigned=assigned.get(group, 0),
            total_paid=paid.get(group, 0.0),
        )
        for group in workers_per_group
    }


def disparate_impact(rates: Mapping[str, float]) -> float:
    """min rate / max rate across groups (1.0 = parity; < 0.8 = red flag).

    ``rates`` maps group -> a non-negative per-capita rate (e.g. tasks
    assigned per worker).  Fewer than two groups is parity by
    definition; a zero max rate (nobody got anything) is also parity.
    """
    if any(rate < 0 for rate in rates.values()):
        raise ValueError("rates must be non-negative")
    if len(rates) < 2:
        return 1.0
    highest = max(rates.values())
    if highest == 0:
        return 1.0
    return min(rates.values()) / highest


def statistical_parity_difference(rates: Mapping[str, float]) -> float:
    """max rate - min rate across groups (0.0 = parity)."""
    if len(rates) < 2:
        return 0.0
    return max(rates.values()) - min(rates.values())


def assignment_disparate_impact(
    trace: PlatformTrace, group_attribute: str = "group"
) -> float:
    """Disparate impact of per-worker assignment counts (the E1 headline)."""
    exposures = exposure_by_group(trace, group_attribute)
    return disparate_impact(
        {group: e.assigned_per_worker for group, e in exposures.items()}
    )
