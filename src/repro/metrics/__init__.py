"""Objective measures for validating fairness and transparency.

Section 4.1: "objective measures such as quality of worker contribution
and worker retention, can be used in controlled experiments to quantify
the level of fairness and transparency of a system".  This package
computes those measures (and standard auxiliary ones) from traces and
session results:

* contribution quality (:mod:`repro.metrics.quality`);
* worker retention and survival (:mod:`repro.metrics.retention`);
* inequality indexes over allocations (:mod:`repro.metrics.inequality`);
* demographic parity and disparate impact (:mod:`repro.metrics.parity`);
* earnings and requester utility (:mod:`repro.metrics.earnings`).
"""

from repro.metrics.earnings import (
    effective_hourly_wages,
    requester_utility,
    worker_earnings,
)
from repro.metrics.inequality import atkinson_index, gini_coefficient, theil_index
from repro.metrics.parity import (
    GroupExposure,
    disparate_impact,
    exposure_by_group,
    statistical_parity_difference,
)
from repro.metrics.quality import accuracy_against_gold, mean_quality, quality_by_group
from repro.metrics.retention import dropout_reasons, retention_rate, survival_curve

__all__ = [
    "GroupExposure",
    "accuracy_against_gold",
    "atkinson_index",
    "disparate_impact",
    "dropout_reasons",
    "effective_hourly_wages",
    "exposure_by_group",
    "gini_coefficient",
    "mean_quality",
    "quality_by_group",
    "requester_utility",
    "retention_rate",
    "statistical_parity_difference",
    "survival_curve",
    "theil_index",
    "worker_earnings",
]
