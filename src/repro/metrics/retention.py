"""Worker retention (the paper's transparency validation metric)."""

from __future__ import annotations

from collections import Counter

from repro.core.events import WorkerDeparted, WorkerRegistered
from repro.core.trace import PlatformTrace


def retention_rate(trace: PlatformTrace) -> float:
    """Fraction of ever-registered workers who never departed."""
    registered = {e.worker.worker_id for e in trace.of_kind(WorkerRegistered)}
    if not registered:
        return 1.0
    departed = {e.worker_id for e in trace.of_kind(WorkerDeparted)}
    return len(registered - departed) / len(registered)


def survival_curve(trace: PlatformTrace, buckets: int = 10) -> list[float]:
    """Active fraction at ``buckets`` evenly spaced times over the trace.

    The curve starts at 1.0 (everyone registered is counted from their
    registration; the simulator registers all workers up front) and
    decreases as departures accumulate.
    """
    if buckets < 1:
        raise ValueError("buckets must be >= 1")
    registered = {e.worker.worker_id for e in trace.of_kind(WorkerRegistered)}
    if not registered:
        return [1.0] * buckets
    departures = sorted(
        (e.time, e.worker_id) for e in trace.of_kind(WorkerDeparted)
    )
    end = max(trace.end_time, 1)
    curve: list[float] = []
    for bucket in range(1, buckets + 1):
        cutoff = end * bucket / buckets
        gone = {wid for time, wid in departures if time <= cutoff}
        curve.append(len(registered - gone) / len(registered))
    return curve


def dropout_reasons(trace: PlatformTrace) -> dict[str, int]:
    """Histogram of departure reasons."""
    return dict(Counter(e.reason or "<none>" for e in trace.of_kind(WorkerDeparted)))
