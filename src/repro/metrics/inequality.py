"""Inequality indexes over allocations (task counts, earnings).

Standard econometric measures used to summarize how unevenly a
quantity is distributed over workers; the E1 benchmark reports the Gini
of task allocation per assigner.
"""

from __future__ import annotations

import math
from typing import Sequence


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini index in [0, 1]; 0 = perfectly equal.

    Accepts non-negative values; an empty or all-zero sequence is
    perfectly equal (0.0).
    """
    if any(v < 0 for v in values):
        raise ValueError("gini is defined for non-negative values")
    n = len(values)
    if n == 0:
        return 0.0
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    weighted = 0.0
    for rank, value in enumerate(ordered, start=1):
        weighted += rank * value
    raw = (2.0 * weighted) / (n * total) - (n + 1.0) / n
    return min(1.0, max(0.0, raw))


def atkinson_index(values: Sequence[float], epsilon: float = 0.5) -> float:
    """Atkinson inequality index with aversion ``epsilon`` in (0, 1].

    0 = equal; approaches 1 as inequality grows.  Zero incomes make the
    index 1 for epsilon >= 1; we restrict epsilon to (0, 1] and treat
    all-zero sequences as equal.
    """
    if not 0.0 < epsilon <= 1.0:
        raise ValueError("epsilon must be in (0, 1]")
    if any(v < 0 for v in values):
        raise ValueError("atkinson is defined for non-negative values")
    n = len(values)
    if n == 0:
        return 0.0
    mean = sum(values) / n
    if mean == 0:
        return 0.0
    if epsilon == 1.0:
        if any(v == 0 for v in values):
            return 1.0
        log_mean = sum(math.log(v) for v in values) / n
        raw = 1.0 - math.exp(log_mean) / mean
    else:
        power = 1.0 - epsilon
        ede = (sum(v**power for v in values) / n) ** (1.0 / power)
        raw = 1.0 - ede / mean
    return min(1.0, max(0.0, raw))


def theil_index(values: Sequence[float]) -> float:
    """Theil T index; 0 = equal, log(n) = maximal concentration.

    Zero values contribute zero (the ``x log x -> 0`` limit).
    """
    if any(v < 0 for v in values):
        raise ValueError("theil is defined for non-negative values")
    n = len(values)
    if n == 0:
        return 0.0
    mean = sum(values) / n
    if mean == 0:
        return 0.0
    total = 0.0
    for value in values:
        if value > 0:
            ratio = value / mean
            # Tiny values can underflow to a zero ratio; their x*log(x)
            # contribution is 0 in the limit, so skip them.
            if ratio > 0.0:
                total += ratio * math.log(ratio)
    return max(0.0, total / n)
