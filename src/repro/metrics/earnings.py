"""Earnings-side measures: worker pay, wages, requester utility."""

from __future__ import annotations

from collections import defaultdict

from repro.core.events import ContributionSubmitted, PaymentIssued
from repro.core.trace import PlatformTrace


def worker_earnings(trace: PlatformTrace) -> dict[str, float]:
    """Total amount paid per worker (task payments)."""
    return trace.payments_by_worker()


def effective_hourly_wages(trace: PlatformTrace) -> dict[str, float]:
    """Per-worker pay per tick of work (the Turkopticon-style number).

    Workers with recorded work time but zero pay get 0.0; workers with
    no timed work are omitted.
    """
    work_time: dict[str, int] = defaultdict(int)
    for event in trace.of_kind(ContributionSubmitted):
        contribution = event.contribution
        if contribution.work_time:
            work_time[contribution.worker_id] += contribution.work_time
    earnings = trace.payments_by_worker()
    return {
        worker_id: earnings.get(worker_id, 0.0) / ticks
        for worker_id, ticks in work_time.items()
        if ticks > 0
    }


def requester_utility(trace: PlatformTrace) -> dict[str, float]:
    """Quality-weighted value received per requester.

    Each accepted contribution contributes ``quality x reward`` (what
    the requester actually got), minus what they paid; rejected work
    costs the payment only (normally zero).  This is the utility the
    requester-centric assigners maximize in expectation.
    """
    reviews = trace.reviews_by_contribution()
    utility: dict[str, float] = defaultdict(float)
    tasks = trace.tasks
    paid_for: dict[str, float] = defaultdict(float)
    for event in trace.of_kind(PaymentIssued):
        paid_for[event.contribution_id] += event.amount
    for event in trace.of_kind(ContributionSubmitted):
        contribution = event.contribution
        task = tasks.get(contribution.task_id)
        if task is None:
            continue
        review = reviews.get(contribution.contribution_id)
        value = 0.0
        if review is not None and review.accepted:
            quality = contribution.quality if contribution.quality is not None else 1.0
            value = quality * task.reward
        utility[task.requester_id] += value - paid_for[contribution.contribution_id]
    return dict(utility)


def total_platform_volume(trace: PlatformTrace) -> float:
    """Total money moved through the platform (payments only)."""
    return sum(event.amount for event in trace.of_kind(PaymentIssued))
