"""Contribution-quality measures (the paper's fairness validation metric)."""

from __future__ import annotations

from collections import defaultdict

from repro.core.events import ContributionSubmitted
from repro.core.trace import PlatformTrace


def mean_quality(trace: PlatformTrace) -> float:
    """Mean latent quality over all contributions (0.0 for none)."""
    qualities = [
        e.contribution.quality
        for e in trace.of_kind(ContributionSubmitted)
        if e.contribution.quality is not None
    ]
    return sum(qualities) / len(qualities) if qualities else 0.0


def accuracy_against_gold(trace: PlatformTrace) -> float:
    """Fraction of gold-task answers matching gold (1.0 for none)."""
    total = 0
    correct = 0
    tasks = trace.tasks
    for event in trace.of_kind(ContributionSubmitted):
        task = tasks.get(event.contribution.task_id)
        if task is None or task.gold_answer is None:
            continue
        total += 1
        if str(event.contribution.payload) == str(task.gold_answer):
            correct += 1
    return correct / total if total else 1.0


def quality_by_worker(trace: PlatformTrace) -> dict[str, float]:
    """Mean latent quality per worker."""
    sums: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    for event in trace.of_kind(ContributionSubmitted):
        contribution = event.contribution
        if contribution.quality is None:
            continue
        sums[contribution.worker_id] += contribution.quality
        counts[contribution.worker_id] += 1
    return {wid: sums[wid] / counts[wid] for wid in sums}


def quality_by_group(
    trace: PlatformTrace, group_attribute: str = "group"
) -> dict[str, float]:
    """Mean latent quality per demographic group of the contributor."""
    sums: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    for event in trace.of_kind(ContributionSubmitted):
        contribution = event.contribution
        if contribution.quality is None:
            continue
        worker = trace.final_worker(contribution.worker_id)
        group = str(worker.declared.get(group_attribute, "<none>"))
        sums[group] += contribution.quality
        counts[group] += 1
    return {group: sums[group] / counts[group] for group in sums}
