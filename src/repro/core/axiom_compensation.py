"""Axiom 3: fairness in worker compensation.

"Given two distinct workers wi and wj who contributed to the same task
t, if their contributions are similar, they should receive the same
reward d_t."

The checker examines, per task, every pair of contributions by distinct
workers whose similarity (kind-aware; see
:mod:`repro.similarity.contributions`) clears ``similarity_threshold``,
and flags pairs paid differently beyond ``payment_tolerance``.

Two further compensation abuses from Section 3.1.1 are folded in as
optional sub-checks, each a distinct witness type:

* *wrongful rejection*: a rejected contribution highly similar to an
  accepted one on the same task (same work, opposite verdicts);
* *bonus reneging*: a promised bonus never paid by the end of the
  trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.core.axioms import Axiom, AxiomCheck
from repro.core.events import BonusPaid, BonusPromised
from repro.core.trace import PlatformTrace
from repro.core.violations import Violation, ViolationSeverity
from repro.similarity.contributions import ContributionSimilarity


@dataclass
class FairCompensation(Axiom):
    """Axiom 3 checker: equal pay for similar contributions.

    ``quality_tolerance`` controls what "similar contributions" means
    when latent quality is observable: ``None`` (default) compares
    payloads only — the strict reading, under which quality-based
    pricing [21] *violates* Axiom 3 (same answer, different pay);
    a float requires qualities to also agree within the tolerance —
    the charitable reading, under which quality-based pricing is fair
    because differently-skilled work is not "similar".  E3 reports
    both readings; the tension is a finding, not a bug.
    """

    similarity_threshold: float = 0.9
    payment_tolerance: float = 1e-9
    quality_tolerance: float | None = None
    check_wrongful_rejection: bool = True
    check_bonus_promises: bool = True
    similarity: ContributionSimilarity = field(
        default_factory=ContributionSimilarity
    )

    axiom_id = 3
    title = "Fairness in worker compensation"

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        violations: list[Violation] = []
        opportunities = 0
        reviews = trace.reviews_by_contribution()
        tasks = trace.tasks
        for task_id, contributions in sorted(trace.contributions_by_task().items()):
            task = tasks.get(task_id)
            kind = task.kind if task is not None else "label"
            reviewed = [
                c for c in contributions if c.contribution_id in reviews
            ]
            for left, right in combinations(reviewed, 2):
                if left.worker_id == right.worker_id:
                    continue
                score = self.similarity(left, right, kind)
                if score < self.similarity_threshold:
                    continue
                if self.quality_tolerance is not None:
                    left_quality = left.quality if left.quality is not None else 1.0
                    right_quality = (
                        right.quality if right.quality is not None else 1.0
                    )
                    if abs(left_quality - right_quality) > self.quality_tolerance:
                        continue
                opportunities += 1
                left_paid = trace.payment_for_contribution(left.contribution_id)
                right_paid = trace.payment_for_contribution(right.contribution_id)
                if abs(left_paid - right_paid) > self.payment_tolerance:
                    violations.append(
                        Violation(
                            axiom_id=3,
                            message=(
                                f"similar contributions (score {score:.2f}) "
                                f"paid {left_paid:.3f} vs {right_paid:.3f}"
                            ),
                            time=max(left.submitted_at, right.submitted_at),
                            severity=ViolationSeverity.CRITICAL,
                            subjects=(left.worker_id, right.worker_id),
                            witness={
                                "task_id": task_id,
                                "contributions": (
                                    left.contribution_id,
                                    right.contribution_id,
                                ),
                                "similarity": score,
                                "payments": (left_paid, right_paid),
                                "type": "unequal_pay",
                            },
                        )
                    )
                elif self.check_wrongful_rejection:
                    left_accepted = reviews[left.contribution_id].accepted
                    right_accepted = reviews[right.contribution_id].accepted
                    if left_accepted != right_accepted:
                        rejected = left if not left_accepted else right
                        violations.append(
                            Violation(
                                axiom_id=3,
                                message=(
                                    "similar contributions received opposite "
                                    "review verdicts (wrongful rejection)"
                                ),
                                time=max(left.submitted_at, right.submitted_at),
                                severity=ViolationSeverity.CRITICAL,
                                subjects=(rejected.worker_id,),
                                witness={
                                    "task_id": task_id,
                                    "similarity": score,
                                    "rejected_contribution": (
                                        rejected.contribution_id
                                    ),
                                    "type": "wrongful_rejection",
                                },
                            )
                        )
        if self.check_bonus_promises:
            bonus_violations, bonus_opportunities = self._check_bonuses(trace)
            violations.extend(bonus_violations)
            opportunities += bonus_opportunities
        return self._result(violations, opportunities)

    def _check_bonuses(self, trace: PlatformTrace) -> tuple[list[Violation], int]:
        """Every promise must be settled by a matching bonus payment."""
        violations: list[Violation] = []
        promises = trace.of_kind(BonusPromised)
        payments = list(trace.of_kind(BonusPaid))
        for promise in promises:
            settled = None
            for payment in payments:
                same_worker = payment.worker_id == promise.worker_id
                same_amount = abs(payment.amount - promise.amount) < 1e-9
                if same_worker and same_amount and payment.time >= promise.time:
                    settled = payment
                    break
            if settled is not None:
                payments.remove(settled)
            else:
                violations.append(
                    Violation(
                        axiom_id=3,
                        message=(
                            f"bonus of {promise.amount:.3f} promised by "
                            f"{promise.requester_id} was never paid"
                        ),
                        time=promise.time,
                        severity=ViolationSeverity.CRITICAL,
                        subjects=(promise.worker_id, promise.requester_id),
                        witness={
                            "amount": promise.amount,
                            "condition": promise.condition,
                            "type": "bonus_reneged",
                        },
                    )
                )
        return violations, len(promises)
