"""Axiom 3: fairness in worker compensation.

"Given two distinct workers wi and wj who contributed to the same task
t, if their contributions are similar, they should receive the same
reward d_t."

The checker examines, per task, every pair of contributions by distinct
workers whose similarity (kind-aware; see
:mod:`repro.similarity.contributions`) clears ``similarity_threshold``,
and flags pairs paid differently beyond ``payment_tolerance``.

Two further compensation abuses from Section 3.1.1 are folded in as
optional sub-checks, each a distinct witness type:

* *wrongful rejection*: a rejected contribution highly similar to an
  accepted one on the same task (same work, opposite verdicts);
* *bonus reneging*: a promised bonus never paid by the end of the
  trace.

The streaming counterpart (:meth:`FairCompensation.incremental`) pays
the dominant cost — pairwise contribution similarity — exactly once per
pair, when the later contribution of the pair is reviewed; snapshots
then re-judge only the price/verdict comparison of the memoised
qualifying pairs against payments received so far, so a pair flagged
while one payment is still in flight is (correctly) cleared once the
matching payment lands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.core.axioms import Axiom, AxiomCheck, IncrementalChecker
from repro.core.entities import Contribution
from repro.core.events import (
    BonusPaid,
    BonusPromised,
    ContributionReviewed,
    ContributionSubmitted,
    Event,
    PaymentIssued,
    TaskPosted,
)
from repro.core.trace import PlatformTrace
from repro.core.violations import Violation, ViolationSeverity
from repro.similarity.contributions import ContributionSimilarity


@dataclass
class FairCompensation(Axiom):
    """Axiom 3 checker: equal pay for similar contributions.

    ``quality_tolerance`` controls what "similar contributions" means
    when latent quality is observable: ``None`` (default) compares
    payloads only — the strict reading, under which quality-based
    pricing [21] *violates* Axiom 3 (same answer, different pay);
    a float requires qualities to also agree within the tolerance —
    the charitable reading, under which quality-based pricing is fair
    because differently-skilled work is not "similar".  E3 reports
    both readings; the tension is a finding, not a bug.
    """

    similarity_threshold: float = 0.9
    payment_tolerance: float = 1e-9
    quality_tolerance: float | None = None
    check_wrongful_rejection: bool = True
    check_bonus_promises: bool = True
    similarity: ContributionSimilarity = field(
        default_factory=ContributionSimilarity
    )

    axiom_id = 3
    title = "Fairness in worker compensation"
    # Delta audits reuse the incremental checker: similarity is already
    # paid once per pair, and snapshots only re-judge cached pairs.
    supports_delta = True

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        violations: list[Violation] = []
        opportunities = 0
        reviews = trace.reviews_by_contribution()
        tasks = trace.tasks
        for task_id, contributions in sorted(trace.contributions_by_task().items()):
            task = tasks.get(task_id)
            kind = task.kind if task is not None else "label"
            reviewed = [
                c for c in contributions if c.contribution_id in reviews
            ]
            for left, right in combinations(reviewed, 2):
                score = self._qualifying_score(left, right, kind)
                if score is None:
                    continue
                opportunities += 1
                left_paid = trace.payment_for_contribution(left.contribution_id)
                right_paid = trace.payment_for_contribution(right.contribution_id)
                violation = self._pair_violation(
                    task_id, left, right, score, left_paid, right_paid,
                    reviews[left.contribution_id].accepted,
                    reviews[right.contribution_id].accepted,
                )
                if violation is not None:
                    violations.append(violation)
        if self.check_bonus_promises:
            bonus_violations, bonus_opportunities = self._check_bonuses(
                trace.of_kind(BonusPromised), trace.of_kind(BonusPaid)
            )
            violations.extend(bonus_violations)
            opportunities += bonus_opportunities
        return self._result(violations, opportunities)

    def incremental(self) -> IncrementalChecker:
        return _IncrementalFairCompensation(self)

    def _qualifying_score(
        self, left: Contribution, right: Contribution, kind: str
    ) -> float | None:
        """Similarity score when the pair counts as an opportunity.

        Distinct workers, similarity over threshold, and (under the
        charitable reading) qualities within tolerance; ``None`` when
        the pair does not qualify.  Static per pair: depends only on
        the two immutable contributions and the task kind.
        """
        if left.worker_id == right.worker_id:
            return None
        score = self.similarity(left, right, kind)
        if score < self.similarity_threshold:
            return None
        if self.quality_tolerance is not None:
            left_quality = left.quality if left.quality is not None else 1.0
            right_quality = right.quality if right.quality is not None else 1.0
            if abs(left_quality - right_quality) > self.quality_tolerance:
                return None
        return score

    def _pair_violation(
        self,
        task_id: str,
        left: Contribution,
        right: Contribution,
        score: float,
        left_paid: float,
        right_paid: float,
        left_accepted: bool,
        right_accepted: bool,
    ) -> Violation | None:
        """The verdict for one qualifying pair given payments so far."""
        if abs(left_paid - right_paid) > self.payment_tolerance:
            return Violation(
                axiom_id=3,
                message=(
                    f"similar contributions (score {score:.2f}) "
                    f"paid {left_paid:.3f} vs {right_paid:.3f}"
                ),
                time=max(left.submitted_at, right.submitted_at),
                severity=ViolationSeverity.CRITICAL,
                subjects=(left.worker_id, right.worker_id),
                witness={
                    "task_id": task_id,
                    "contributions": (
                        left.contribution_id,
                        right.contribution_id,
                    ),
                    "similarity": score,
                    "payments": (left_paid, right_paid),
                    "type": "unequal_pay",
                },
            )
        if self.check_wrongful_rejection and left_accepted != right_accepted:
            rejected = left if not left_accepted else right
            return Violation(
                axiom_id=3,
                message=(
                    "similar contributions received opposite "
                    "review verdicts (wrongful rejection)"
                ),
                time=max(left.submitted_at, right.submitted_at),
                severity=ViolationSeverity.CRITICAL,
                subjects=(rejected.worker_id,),
                witness={
                    "task_id": task_id,
                    "similarity": score,
                    "rejected_contribution": rejected.contribution_id,
                    "type": "wrongful_rejection",
                },
            )
        return None

    def _check_bonuses(
        self, promises, payments
    ) -> tuple[list[Violation], int]:
        """Every promise must be settled by a matching bonus payment."""
        violations: list[Violation] = []
        promises = list(promises)
        payments = list(payments)
        for promise in promises:
            settled = None
            for payment in payments:
                same_worker = payment.worker_id == promise.worker_id
                same_amount = abs(payment.amount - promise.amount) < 1e-9
                if same_worker and same_amount and payment.time >= promise.time:
                    settled = payment
                    break
            if settled is not None:
                payments.remove(settled)
            else:
                violations.append(
                    Violation(
                        axiom_id=3,
                        message=(
                            f"bonus of {promise.amount:.3f} promised by "
                            f"{promise.requester_id} was never paid"
                        ),
                        time=promise.time,
                        severity=ViolationSeverity.CRITICAL,
                        subjects=(promise.worker_id, promise.requester_id),
                        witness={
                            "amount": promise.amount,
                            "condition": promise.condition,
                            "type": "bonus_reneged",
                        },
                    )
                )
        return violations, len(promises)


class _IncrementalFairCompensation(IncrementalChecker):
    """Streaming Axiom 3: similarity once per pair, cheap re-verdicts.

    When a contribution is reviewed it is paired against the already
    reviewed contributions of the same task; each pair's qualifying
    similarity (the expensive part) is decided exactly once and cached
    with the submission-order indexes that reproduce the batch
    iteration order.  Snapshots walk the cached qualifying pairs and
    re-apply only the payment/verdict comparison — necessarily so,
    because later payments can settle a difference that looked like a
    violation at an earlier prefix.  Bonus promise/payment matching is
    greedy over small event lists and is re-run per snapshot.
    """

    def __init__(self, axiom: FairCompensation) -> None:
        super().__init__(axiom)
        self._axiom = axiom
        self._tasks: dict[str, object] = {}
        # task_id -> contributions in submission order (batch iteration base).
        self._by_task: dict[str, list[Contribution]] = {}
        self._sub_index: dict[str, int] = {}
        self._contributions: dict[str, Contribution] = {}
        # contribution_id -> latest review's accepted flag.
        self._accepted: dict[str, bool] = {}
        # task_id -> [(left_index, right_index, left, right, score)].
        self._pairs: dict[str, list[tuple[int, int, Contribution, Contribution, float]]] = {}
        self._payments: dict[str, float] = {}
        self._promises: list[BonusPromised] = []
        self._bonus_payments: list[BonusPaid] = []

    def observe(self, event: Event) -> None:
        axiom = self._axiom
        if isinstance(event, TaskPosted):
            self._tasks[event.task.task_id] = event.task
        elif isinstance(event, ContributionSubmitted):
            contribution = event.contribution
            siblings = self._by_task.setdefault(contribution.task_id, [])
            self._sub_index[contribution.contribution_id] = len(siblings)
            siblings.append(contribution)
            self._contributions[contribution.contribution_id] = contribution
        elif isinstance(event, ContributionReviewed):
            first_review = event.contribution_id not in self._accepted
            self._accepted[event.contribution_id] = event.accepted
            if first_review:
                self._pair_up(event.contribution_id)
        elif isinstance(event, PaymentIssued):
            if event.contribution_id:
                self._payments[event.contribution_id] = (
                    self._payments.get(event.contribution_id, 0.0) + event.amount
                )
        elif isinstance(event, BonusPromised) and axiom.check_bonus_promises:
            self._promises.append(event)
        elif isinstance(event, BonusPaid) and axiom.check_bonus_promises:
            self._bonus_payments.append(event)

    def snapshot(self) -> AxiomCheck:
        axiom = self._axiom
        violations: list[Violation] = []
        opportunities = 0
        for task_id in sorted(self._by_task):
            qualifying = sorted(
                self._pairs.get(task_id, ()), key=lambda item: (item[0], item[1])
            )
            for _, _, left, right, score in qualifying:
                opportunities += 1
                violation = axiom._pair_violation(
                    task_id, left, right, score,
                    self._payments.get(left.contribution_id, 0.0),
                    self._payments.get(right.contribution_id, 0.0),
                    self._accepted[left.contribution_id],
                    self._accepted[right.contribution_id],
                )
                if violation is not None:
                    violations.append(violation)
        if axiom.check_bonus_promises:
            bonus_violations, bonus_opportunities = axiom._check_bonuses(
                self._promises, self._bonus_payments
            )
            violations.extend(bonus_violations)
            opportunities += bonus_opportunities
        return axiom._result(violations, opportunities)

    # ------------------------------------------------------------------

    def _pair_up(self, contribution_id: str) -> None:
        """Judge the newly reviewed contribution against its reviewed
        task siblings; cache qualifying pairs with batch ordering keys."""
        contribution = self._contributions.get(contribution_id)
        if contribution is None:
            return
        task = self._tasks.get(contribution.task_id)
        kind = task.kind if task is not None else "label"
        index = self._sub_index[contribution_id]
        pairs = self._pairs.setdefault(contribution.task_id, [])
        for other in self._by_task[contribution.task_id]:
            other_id = other.contribution_id
            if other_id == contribution_id or other_id not in self._accepted:
                continue
            other_index = self._sub_index[other_id]
            if other_index < index:
                left, right = other, contribution
                ordered = (other_index, index)
            else:
                left, right = contribution, other
                ordered = (index, other_index)
            score = self._axiom._qualifying_score(left, right, kind)
            if score is not None:
                pairs.append((ordered[0], ordered[1], left, right, score))
