"""Platform events — the auditable record of a crowdsourcing run.

Fairness and transparency are properties of *processes* (assignment,
completion, compensation, disclosure), so the framework audits an
append-only log of events rather than a final state.  Each event type
below corresponds to one observable step of the crowdsourcing lifecycle;
together they carry exactly the evidence Axioms 1-7 need:

==============================  =============================================
Event                           Used by
==============================  =============================================
:class:`WorkerRegistered` /     Axioms 1, 7 (attribute snapshots over time)
:class:`WorkerUpdated`
:class:`RequesterRegistered`    Axiom 6 (what the requester *could* disclose)
:class:`TaskPosted`             Axioms 1, 2
:class:`TasksShown`             Axioms 1, 2 (who saw which tasks)
:class:`AssignmentMade`         Axiom 1 diagnostics, E1/E7 utility
:class:`TaskStarted` /          Axiom 5 (no interruption)
:class:`TaskInterrupted` /
:class:`TaskCancelled`
:class:`ContributionSubmitted`  Axioms 3, 4
:class:`ContributionReviewed`   Axiom 3 (wrongful rejection), requester opacity
:class:`PaymentIssued`          Axiom 3
:class:`BonusPromised` /        Axiom 3 (bonus reneging)
:class:`BonusPaid`
:class:`MaliceFlagged`          Axiom 4 (platform lets requesters detect)
:class:`DisclosureShown`        Axioms 6, 7
:class:`WorkerDeparted`         retention metric (Section 4.1)
==============================  =============================================

Events are immutable dataclasses; a :class:`repro.core.trace.PlatformTrace`
orders and indexes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.entities import Contribution, Requester, Task, Worker


@dataclass(frozen=True)
class Event:
    """Base class: every event happens at a simulated ``time`` tick."""

    time: int

    @property
    def kind(self) -> str:
        """A stable, snake_case name for this event type."""
        return _KIND_NAMES[type(self)]


@dataclass(frozen=True)
class WorkerRegistered(Event):
    """A worker joined the platform; carries the full worker snapshot."""

    worker: Worker


@dataclass(frozen=True)
class WorkerUpdated(Event):
    """The platform recomputed a worker's attributes ``C_w``."""

    worker: Worker


@dataclass(frozen=True)
class WorkerDeparted(Event):
    """A worker left the platform (churn); ``reason`` is free-form."""

    worker_id: str
    reason: str = ""


@dataclass(frozen=True)
class RequesterRegistered(Event):
    """A requester joined; carries declared working conditions."""

    requester: Requester


@dataclass(frozen=True)
class TaskPosted(Event):
    """A requester published a task."""

    task: Task


@dataclass(frozen=True)
class TasksShown(Event):
    """The platform showed a set of tasks to a worker (browse view).

    This is the visibility evidence for Axioms 1 and 2: two similar
    workers must be shown the same tasks, and similar tasks must be shown
    to the same workers.
    """

    worker_id: str
    task_ids: frozenset[str]


@dataclass(frozen=True)
class AssignmentMade(Event):
    """A task was allocated to a worker by ``assigner``."""

    worker_id: str
    task_id: str
    assigner: str = ""


@dataclass(frozen=True)
class TaskStarted(Event):
    """A worker began working on an assigned task."""

    worker_id: str
    task_id: str


@dataclass(frozen=True)
class TaskInterrupted(Event):
    """A worker's in-progress work was interrupted (Axiom 5 violation
    evidence when the interruption was not worker-initiated)."""

    worker_id: str
    task_id: str
    reason: str = ""
    worker_initiated: bool = False


@dataclass(frozen=True)
class TaskCancelled(Event):
    """A requester withdrew a task (e.g. survey quota reached)."""

    task_id: str
    reason: str = ""


@dataclass(frozen=True)
class ContributionSubmitted(Event):
    """A worker submitted a contribution."""

    contribution: Contribution


@dataclass(frozen=True)
class ContributionReviewed(Event):
    """A requester accepted or rejected a contribution.

    ``feedback`` is the explanation shown to the worker; an empty
    feedback on rejection is the *requester opacity* of Section 3.1.2.
    """

    contribution_id: str
    task_id: str
    worker_id: str
    accepted: bool
    feedback: str = ""


@dataclass(frozen=True)
class PaymentIssued(Event):
    """A worker was paid ``amount`` for a contribution."""

    worker_id: str
    task_id: str
    contribution_id: str
    amount: float


@dataclass(frozen=True)
class BonusPromised(Event):
    """A requester promised a conditional bonus to a worker."""

    requester_id: str
    worker_id: str
    amount: float
    condition: str = ""


@dataclass(frozen=True)
class BonusPaid(Event):
    """A promised bonus was actually paid."""

    requester_id: str
    worker_id: str
    amount: float


@dataclass(frozen=True)
class MaliceFlagged(Event):
    """A malice detector flagged a worker with confidence ``score``."""

    worker_id: str
    detector: str
    score: float


@dataclass(frozen=True)
class DisclosureShown(Event):
    """The platform disclosed a field about ``subject`` to a worker.

    ``audience_worker_id`` is empty for public disclosures.  ``subject``
    identifies whose information was shown ("requester:r1", "worker:w3",
    "platform"), ``field_name`` which attribute, ``value`` its rendered
    value.  Axioms 6 and 7 check that mandated disclosures appear.
    """

    subject: str
    field_name: str
    value: object
    audience_worker_id: str = ""


@dataclass(frozen=True)
class CustomEvent(Event):
    """Extension point for platform-specific events."""

    name: str = "custom"
    payload: Mapping[str, object] = field(default_factory=dict)


_KIND_NAMES: dict[type, str] = {
    WorkerRegistered: "worker_registered",
    WorkerUpdated: "worker_updated",
    WorkerDeparted: "worker_departed",
    RequesterRegistered: "requester_registered",
    TaskPosted: "task_posted",
    TasksShown: "tasks_shown",
    AssignmentMade: "assignment_made",
    TaskStarted: "task_started",
    TaskInterrupted: "task_interrupted",
    TaskCancelled: "task_cancelled",
    ContributionSubmitted: "contribution_submitted",
    ContributionReviewed: "contribution_reviewed",
    PaymentIssued: "payment_issued",
    BonusPromised: "bonus_promised",
    BonusPaid: "bonus_paid",
    MaliceFlagged: "malice_flagged",
    DisclosureShown: "disclosure_shown",
    CustomEvent: "custom",
    Event: "event",
}

ALL_EVENT_TYPES: tuple[type, ...] = tuple(
    t for t in _KIND_NAMES if t not in (Event, CustomEvent)
)
