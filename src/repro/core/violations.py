"""Violation records produced by axiom checkers.

A :class:`Violation` is concrete evidence that a trace breaks an axiom:
it names the axiom, the affected subjects (worker/task/requester ids),
the time, and a ``witness`` mapping holding the raw facts a human (or a
test) can verify — e.g. the two similar workers and the task one of them
was denied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping


class ViolationSeverity(enum.Enum):
    """How severely a violation harms the affected party.

    ``INFO`` marks near-misses (useful when thresholds are strict),
    ``WARNING`` marks unfair treatment that is plausibly recoverable,
    ``CRITICAL`` marks unpaid work, wrongful rejection, or withheld
    access.
    """

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"

    def __lt__(self, other: "ViolationSeverity") -> bool:
        order = [ViolationSeverity.INFO, ViolationSeverity.WARNING,
                 ViolationSeverity.CRITICAL]
        return order.index(self) < order.index(other)


@dataclass(frozen=True)
class Violation:
    """One concrete breach of a fairness or transparency axiom."""

    axiom_id: int
    message: str
    time: int
    severity: ViolationSeverity = ViolationSeverity.WARNING
    subjects: tuple[str, ...] = ()
    witness: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "witness", dict(self.witness))

    def involves(self, subject_id: str) -> bool:
        """True when ``subject_id`` is among the affected subjects."""
        return subject_id in self.subjects

    def describe(self) -> str:
        """A single-line human-readable description."""
        who = ", ".join(self.subjects) if self.subjects else "-"
        return (
            f"[axiom {self.axiom_id}][{self.severity.value}] t={self.time} "
            f"({who}): {self.message}"
        )
