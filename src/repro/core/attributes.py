"""Declared and computed worker attributes (``A_w`` and ``C_w``).

The paper distinguishes *self-declared* attributes (demographics,
location) from *platform-computed* attributes (acceptance ratio,
performance).  Axiom 1 requires that workers with similar attributes of
both kinds see the same tasks, and Section 3.3.1 stresses that the
*derivation* of computed attributes must itself be fair — so computed
attributes here carry their derivation inputs, letting the audit engine
re-derive and verify them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import EntityError

#: Attribute values are restricted to simple scalars so similarity is
#: well-defined and policies can render them.
AttributeValue = str | int | float | bool


def _check_values(values: Mapping[str, AttributeValue], label: str) -> None:
    for key, value in values.items():
        if not isinstance(key, str) or not key:
            raise EntityError(f"{label}: attribute names must be non-empty strings")
        if not isinstance(value, (str, int, float, bool)):
            raise EntityError(
                f"{label}: attribute {key!r} has unsupported type {type(value).__name__}"
            )


@dataclass(frozen=True)
class DeclaredAttributes:
    """Self-declared worker attributes ``A_w`` (demographics, location)."""

    values: Mapping[str, AttributeValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_values(self.values, "declared attributes")
        object.__setattr__(self, "values", dict(self.values))

    def __getitem__(self, key: str) -> AttributeValue:
        return self.values[key]

    def __contains__(self, key: object) -> bool:
        return key in self.values

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def get(self, key: str, default: AttributeValue | None = None):
        return self.values.get(key, default)

    def keys(self) -> tuple[str, ...]:
        return tuple(self.values.keys())

    def as_dict(self) -> dict[str, AttributeValue]:
        return dict(self.values)


@dataclass(frozen=True)
class ComputedAttributes:
    """Platform-computed worker attributes ``C_w``.

    Standard attributes every platform derives:

    * ``acceptance_ratio`` — accepted / reviewed contributions;
    * ``tasks_completed`` — number of submitted contributions;
    * ``mean_quality`` — average contribution quality when measurable.

    ``derivation`` records the raw counters the attributes were derived
    from (e.g. ``{"accepted": 8, "reviewed": 10}``) so the audit engine
    can verify the derivation (paper Section 3.3.1: an algorithm that
    checks worker fairness "must check the fairness of deriving computed
    attributes").
    """

    values: Mapping[str, AttributeValue] = field(default_factory=dict)
    derivation: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_values(self.values, "computed attributes")
        object.__setattr__(self, "values", dict(self.values))
        object.__setattr__(self, "derivation", dict(self.derivation))

    def __getitem__(self, key: str) -> AttributeValue:
        return self.values[key]

    def __contains__(self, key: object) -> bool:
        return key in self.values

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def get(self, key: str, default: AttributeValue | None = None):
        return self.values.get(key, default)

    def keys(self) -> tuple[str, ...]:
        return tuple(self.values.keys())

    def as_dict(self) -> dict[str, AttributeValue]:
        return dict(self.values)

    @classmethod
    def from_history(
        cls,
        accepted: int,
        reviewed: int,
        submitted: int,
        quality_sum: float = 0.0,
        quality_count: int = 0,
    ) -> "ComputedAttributes":
        """Derive the standard attributes from raw history counters.

        This is *the* reference derivation: the simulator uses it to
        maintain ``C_w`` and the audit engine re-runs it to check that a
        platform's published attributes are derived fairly.
        """
        if not 0 <= accepted <= reviewed:
            raise EntityError(
                f"invalid history: accepted={accepted} reviewed={reviewed}"
            )
        if reviewed > submitted:
            raise EntityError(
                f"invalid history: reviewed={reviewed} submitted={submitted}"
            )
        values: dict[str, AttributeValue] = {
            "acceptance_ratio": (accepted / reviewed) if reviewed else 1.0,
            "tasks_completed": submitted,
        }
        if quality_count:
            values["mean_quality"] = quality_sum / quality_count
        derivation = {
            "accepted": float(accepted),
            "reviewed": float(reviewed),
            "submitted": float(submitted),
            "quality_sum": float(quality_sum),
            "quality_count": float(quality_count),
        }
        return cls(values=values, derivation=derivation)

    def rederive(self) -> "ComputedAttributes":
        """Re-run the reference derivation from the stored raw counters."""
        if not self.derivation:
            raise EntityError("no derivation inputs recorded")
        return ComputedAttributes.from_history(
            accepted=int(self.derivation.get("accepted", 0)),
            reviewed=int(self.derivation.get("reviewed", 0)),
            submitted=int(self.derivation.get("submitted", 0)),
            quality_sum=self.derivation.get("quality_sum", 0.0),
            quality_count=int(self.derivation.get("quality_count", 0)),
        )

    def derivation_consistent(self, tolerance: float = 1e-9) -> bool:
        """True when published values match the reference derivation.

        Only the standard attribute names are compared; platforms may
        publish extra attributes not covered by the reference derivation.
        """
        try:
            reference = self.rederive()
        except EntityError:
            return False
        for key, expected in reference.values.items():
            actual = self.values.get(key)
            if actual is None:
                return False
            if isinstance(expected, float) and isinstance(actual, (int, float)):
                if abs(float(actual) - expected) > tolerance:
                    return False
            elif actual != expected:
                return False
        return True
