"""The platform trace: an ordered, indexed log of platform events.

A :class:`PlatformTrace` is what audits consume.  The simulator in
:mod:`repro.platform` produces traces natively; an adapter for a real
platform would emit the same event schema.  The trace is a thin facade
over a pluggable :class:`~repro.core.store.TraceStore`, which owns the
event log and the secondary indexes (tasks by id, worker snapshots over
time, events by kind) that keep axiom checkers close to linear in trace
length.  Three backends ship with :mod:`repro.core.store`:

* ``memory`` (default) — everything indexed in RAM, unbounded;
* ``windowed`` — bounded memory for unbounded streams (newest ``window``
  events retained, entity registries complete);
* ``persistent`` — JSONL segment files with write-through append, so a
  platform log is captured once and re-audited forever
  (:meth:`PlatformTrace.open` / :meth:`PlatformTrace.save`).

Streaming consumers have two entry points:

* :meth:`PlatformTrace.events_since` — a positional cursor read: all
  events appended at or after sequence number ``n``.  Sequence numbers
  are append positions, so a reader that resumes from
  ``cursor = len(trace)`` after each read never skips or duplicates an
  event (:class:`TraceCursor` packages this pattern).
* :meth:`PlatformTrace.subscribe` — push delivery: a listener called
  with each event *after* it is indexed, in append order.  This is what
  the :class:`~repro.core.audit.StreamingAuditEngine` attaches to so a
  live platform is audited as it runs instead of re-scanned from
  scratch.

The facade is the write path: appends must go through
:meth:`PlatformTrace.append` (not the store directly) so subscribed
listeners observe every event.
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.core.entities import Contribution, Requester, Task, Worker
from repro.core.events import (
    AssignmentMade,
    ContributionReviewed,
    ContributionSubmitted,
    Event,
    PaymentIssued,
    RequesterRegistered,
    TaskPosted,
    TasksShown,
    WorkerRegistered,
    WorkerUpdated,
)
from repro.core.store import InMemoryTraceStore, TraceStore
from repro.errors import TraceError, UnknownEntityError

E = TypeVar("E", bound=Event)


def infer_disk_backend(
    path: str | os.PathLike[str], backend: str | None = None
) -> str:
    """Resolve which on-disk backend a capture path selects.

    An explicit ``backend`` wins; otherwise a ``.db``/``.sqlite``/
    ``.sqlite3`` suffix means sqlite and anything else means the JSONL
    persistent log.
    """
    if backend is not None:
        if backend not in ("persistent", "sqlite"):
            raise TraceError(
                f"unknown on-disk trace backend {backend!r} for path "
                f"{os.fspath(path)!r}; available backends: "
                "persistent, sqlite"
            )
        return backend
    suffix = os.path.splitext(os.fspath(path))[1].lower()
    return "sqlite" if suffix in (".db", ".sqlite", ".sqlite3") else "persistent"


def make_disk_store(
    path: str | os.PathLike[str],
    backend: str | None = None,
    segment_events: int = 4096,
):
    """A fresh on-disk capture store of the resolved backend.

    ``segment_events`` applies to the persistent (JSONL-segment)
    backend only.
    """
    from repro.core.store.persistent import PersistentTraceStore
    from repro.core.store.sqlite import SQLiteTraceStore

    if infer_disk_backend(path, backend) == "sqlite":
        return SQLiteTraceStore.create(path)
    return PersistentTraceStore.create(path, segment_events=segment_events)


class PlatformTrace:
    """Append-only, time-ordered event log with entity indexes.

    Events must be appended in non-decreasing time order; this mirrors
    how a platform log accumulates and keeps the per-kind indexes
    sorted for binary search.  Storage and indexing live in the
    injected :class:`~repro.core.store.TraceStore` (in-memory when not
    given); the facade adds subscription plumbing and derived views.
    """

    def __init__(
        self,
        events: Iterable[Event] = (),
        store: TraceStore | None = None,
    ) -> None:
        self._store = store if store is not None else InMemoryTraceStore()
        self._listeners: list[Callable[[Event], None]] = []
        for event in events:
            self.append(event)

    @property
    def store(self) -> TraceStore:
        """The storage backend behind this trace."""
        return self._store

    @classmethod
    def open(cls, path: str | os.PathLike[str]) -> "PlatformTrace":
        """Reopen a saved trace of either on-disk flavour.

        The format is detected from what is at ``path``: a JSONL
        segment-log directory or a SQLite trace database (see
        :func:`repro.core.store.open_store`).
        """
        from repro.core.store import open_store

        return cls(store=open_store(path))

    def save(
        self, path: str | os.PathLike[str], backend: str | None = None
    ) -> str:
        """Capture this trace as an on-disk log at ``path``.

        ``backend`` is ``"persistent"`` (JSONL segments) or ``"sqlite"``
        (single indexed database file); when ``None`` it is inferred
        from the path — a ``.db``/``.sqlite`` suffix selects sqlite.
        Returns the log path; reopen with :meth:`PlatformTrace.open`.
        When the trace is already disk-backed this writes an
        independent copy.
        """
        with make_disk_store(path, backend) as capture:
            capture.append_batch(self._store.events)
            return capture.save()

    # ------------------------------------------------------------------
    # Construction

    def append(self, event: Event) -> None:
        """Append one event; indexes update incrementally.

        Subscribed listeners are notified after the indexes are updated,
        in subscription order.
        """
        self._store.append(event)
        for listener in self._listeners:
            listener(event)

    def extend(self, events: Iterable[Event]) -> None:
        for event in events:
            self.append(event)

    def append_batch(self, events: Iterable[Event]) -> int:
        """Append many events through the store's batched write path.

        With no subscribed listeners this delegates to
        :meth:`TraceStore.append_batch` (one transaction on backends
        that batch); with listeners it falls back to per-event appends
        so every listener observes every event in order.  Returns how
        many events were appended.
        """
        if self._listeners:
            count = 0
            for event in events:
                self.append(event)
                count += 1
            return count
        return self._store.append_batch(events)

    # ------------------------------------------------------------------
    # Basic access

    def __len__(self) -> int:
        return self._store.revision

    def __iter__(self) -> Iterator[Event]:
        return iter(self._store.events)

    @property
    def events(self) -> Sequence[Event]:
        return tuple(self._store.events)

    @property
    def revision(self) -> int:
        """Total events ever appended (== ``len`` on every backend)."""
        return self._store.revision

    @property
    def end_time(self) -> int:
        """Time of the last event (0 for an empty trace)."""
        return self._store.end_time

    # ------------------------------------------------------------------
    # Streaming access

    def events_since(self, n: int) -> tuple[Event, ...]:
        """Events with sequence numbers ``>= n`` (append positions).

        ``events_since(len(trace))`` is always empty; a reader that
        advances its cursor to ``len(trace)`` after each call observes
        every event exactly once, in append order, regardless of how
        reads interleave with appends.  Evicting backends raise for
        cursors that point before their retained window.
        """
        return self._store.events_since(n)

    def cursor(self, start: int = 0) -> "TraceCursor":
        """A stateful read cursor over this trace (see :class:`TraceCursor`)."""
        return TraceCursor(self, start)

    def subscribe(self, listener: Callable[[Event], None]) -> Callable[[], None]:
        """Register a listener called with each newly appended event.

        Listeners run synchronously inside :meth:`append`, after the
        event is indexed, so a listener may read the trace and will see
        the event it was notified about.  Returns an unsubscribe
        callable (idempotent).
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def of_kind(self, event_type: type[E]) -> list[E]:
        """All events of the given type, in time order."""
        from repro.core.events import _KIND_NAMES  # private kind-name table

        try:
            name = _KIND_NAMES[event_type]
        except KeyError:
            raise TraceError(f"unknown event type: {event_type!r}") from None
        return list(self._store.of_kind(name))  # type: ignore[return-value]

    def where(self, predicate: Callable[[Event], bool]) -> list[Event]:
        """All events matching an arbitrary predicate."""
        return [event for event in self._store.events if predicate(event)]

    # ------------------------------------------------------------------
    # Entity lookups

    @property
    def tasks(self) -> dict[str, Task]:
        return dict(self._store.tasks)

    @property
    def requesters(self) -> dict[str, Requester]:
        return dict(self._store.requesters)

    @property
    def contributions(self) -> dict[str, Contribution]:
        return dict(self._store.contributions)

    @property
    def worker_ids(self) -> tuple[str, ...]:
        return self._store.worker_ids

    def task(self, task_id: str) -> Task:
        try:
            return self._store.tasks[task_id]
        except KeyError:
            raise UnknownEntityError(f"no task {task_id!r} in trace") from None

    def requester(self, requester_id: str) -> Requester:
        try:
            return self._store.requesters[requester_id]
        except KeyError:
            raise UnknownEntityError(
                f"no requester {requester_id!r} in trace"
            ) from None

    def contribution(self, contribution_id: str) -> Contribution:
        try:
            return self._store.contributions[contribution_id]
        except KeyError:
            raise UnknownEntityError(
                f"no contribution {contribution_id!r} in trace"
            ) from None

    def worker_at(self, worker_id: str, time: int) -> Worker:
        """The latest snapshot of a worker at or before ``time``."""
        return self._store.worker_at(worker_id, time)

    def final_worker(self, worker_id: str) -> Worker:
        """The last known snapshot of a worker."""
        return self._store.final_worker(worker_id)

    def final_workers(self) -> dict[str, Worker]:
        """Last known snapshot of every worker."""
        return self._store.final_workers()

    # ------------------------------------------------------------------
    # Derived views used by axiom checkers and metrics

    def visibility_by_worker(self) -> dict[str, set[str]]:
        """Union of task ids ever shown to each worker (Axioms 1, 2)."""
        shown: dict[str, set[str]] = defaultdict(set)
        for event in self.of_kind(TasksShown):
            shown[event.worker_id].update(event.task_ids)
        return dict(shown)

    def audience_by_task(self) -> dict[str, set[str]]:
        """Workers each task was ever shown to (Axiom 2)."""
        audience: dict[str, set[str]] = defaultdict(set)
        for event in self.of_kind(TasksShown):
            for task_id in event.task_ids:
                audience[task_id].add(event.worker_id)
        return dict(audience)

    def assignments_by_worker(self) -> dict[str, list[AssignmentMade]]:
        grouped: dict[str, list[AssignmentMade]] = defaultdict(list)
        for event in self.of_kind(AssignmentMade):
            grouped[event.worker_id].append(event)
        return dict(grouped)

    def contributions_by_task(self) -> dict[str, list[Contribution]]:
        grouped: dict[str, list[Contribution]] = defaultdict(list)
        for event in self.of_kind(ContributionSubmitted):
            grouped[event.contribution.task_id].append(event.contribution)
        return dict(grouped)

    def payments_by_worker(self) -> dict[str, float]:
        totals: dict[str, float] = defaultdict(float)
        for event in self.of_kind(PaymentIssued):
            totals[event.worker_id] += event.amount
        return dict(totals)

    def payment_for_contribution(self, contribution_id: str) -> float:
        """Total amount paid for one contribution (0.0 when unpaid)."""
        return sum(
            event.amount
            for event in self.of_kind(PaymentIssued)
            if event.contribution_id == contribution_id
        )

    def reviews_by_contribution(self) -> dict[str, ContributionReviewed]:
        """The (last) review of each contribution."""
        reviews: dict[str, ContributionReviewed] = {}
        for event in self.of_kind(ContributionReviewed):
            reviews[event.contribution_id] = event
        return reviews

    def slice(self, start: int, end: int) -> "PlatformTrace":
        """A sub-trace with events in ``[start, end)``; entity-bearing
        registration events before ``start`` are retained so lookups
        work.  The slice reads the backend's retained events (an
        evicting backend contributes only its window) and is always
        memory-backed."""
        kept: list[Event] = []
        for event in self._store.events:
            is_entity = isinstance(
                event, (WorkerRegistered, WorkerUpdated, RequesterRegistered,
                        TaskPosted)
            )
            if start <= event.time < end or (is_entity and event.time < end):
                kept.append(event)
        return PlatformTrace(kept)


def as_trace(source: "PlatformTrace | TraceStore") -> "PlatformTrace":
    """Coerce a raw :class:`~repro.core.store.TraceStore` to a trace.

    Audit entry points accept either; a store is wrapped in a facade
    without copying (the facade reads the store's live indexes).
    """
    if isinstance(source, PlatformTrace):
        return source
    if isinstance(source, TraceStore):
        return PlatformTrace(store=source)
    raise TraceError(
        f"expected a PlatformTrace or TraceStore, got {type(source).__name__}"
    )


class TraceCursor:
    """A resumable pull-based reader over a :class:`PlatformTrace`.

    Each :meth:`drain` returns the events appended since the previous
    drain and advances the cursor, so interleaving drains with appends
    yields every event exactly once, in append order.
    """

    def __init__(self, trace: PlatformTrace, start: int = 0) -> None:
        if start < 0 or start > len(trace):
            raise TraceError(
                f"cursor start {start} outside [0, {len(trace)}]"
            )
        self._trace = trace
        self._position = start

    @property
    def position(self) -> int:
        """The sequence number of the next unread event."""
        return self._position

    def drain(self) -> tuple[Event, ...]:
        """All events appended since the last drain (may be empty)."""
        events = self._trace.events_since(self._position)
        self._position += len(events)
        return events
