"""The platform trace: an ordered, indexed log of platform events.

A :class:`PlatformTrace` is what audits consume.  The simulator in
:mod:`repro.platform` produces traces natively; an adapter for a real
platform would emit the same event schema.  The trace maintains
secondary indexes (tasks by id, worker snapshots over time, events by
kind) so axiom checkers stay close to linear in trace length.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import defaultdict
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.core.entities import Contribution, Requester, Task, Worker
from repro.core.events import (
    AssignmentMade,
    ContributionReviewed,
    ContributionSubmitted,
    Event,
    PaymentIssued,
    RequesterRegistered,
    TaskPosted,
    TasksShown,
    WorkerRegistered,
    WorkerUpdated,
)
from repro.errors import TraceError, UnknownEntityError

E = TypeVar("E", bound=Event)


class PlatformTrace:
    """Append-only, time-ordered event log with entity indexes.

    Events must be appended in non-decreasing time order; this mirrors
    how a platform log accumulates and keeps the per-kind indexes
    sorted for binary search.
    """

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._events: list[Event] = []
        self._by_kind: dict[str, list[Event]] = defaultdict(list)
        self._tasks: dict[str, Task] = {}
        self._requesters: dict[str, Requester] = {}
        # Per-worker time series of snapshots: (time, Worker), time-sorted.
        self._worker_snapshots: dict[str, list[tuple[int, Worker]]] = defaultdict(list)
        self._contributions: dict[str, Contribution] = {}
        for event in events:
            self.append(event)

    # ------------------------------------------------------------------
    # Construction

    def append(self, event: Event) -> None:
        """Append one event; indexes update incrementally."""
        if self._events and event.time < self._events[-1].time:
            raise TraceError(
                f"event at t={event.time} appended after t={self._events[-1].time}; "
                "traces must be time-ordered"
            )
        self._events.append(event)
        self._by_kind[event.kind].append(event)
        if isinstance(event, TaskPosted):
            if event.task.task_id in self._tasks:
                raise TraceError(f"task {event.task.task_id} posted twice")
            self._tasks[event.task.task_id] = event.task
        elif isinstance(event, (WorkerRegistered, WorkerUpdated)):
            insort(
                self._worker_snapshots[event.worker.worker_id],
                (event.time, event.worker),
                key=lambda pair: pair[0],
            )
        elif isinstance(event, RequesterRegistered):
            self._requesters[event.requester.requester_id] = event.requester
        elif isinstance(event, ContributionSubmitted):
            self._contributions[event.contribution.contribution_id] = (
                event.contribution
            )

    def extend(self, events: Iterable[Event]) -> None:
        for event in events:
            self.append(event)

    # ------------------------------------------------------------------
    # Basic access

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> Sequence[Event]:
        return tuple(self._events)

    @property
    def end_time(self) -> int:
        """Time of the last event (0 for an empty trace)."""
        return self._events[-1].time if self._events else 0

    def of_kind(self, event_type: type[E]) -> list[E]:
        """All events of the given type, in time order."""
        from repro.core.events import _KIND_NAMES  # private kind-name table

        try:
            name = _KIND_NAMES[event_type]
        except KeyError:
            raise TraceError(f"unknown event type: {event_type!r}") from None
        return list(self._by_kind.get(name, []))  # type: ignore[return-value]

    def where(self, predicate: Callable[[Event], bool]) -> list[Event]:
        """All events matching an arbitrary predicate."""
        return [event for event in self._events if predicate(event)]

    # ------------------------------------------------------------------
    # Entity lookups

    @property
    def tasks(self) -> dict[str, Task]:
        return dict(self._tasks)

    @property
    def requesters(self) -> dict[str, Requester]:
        return dict(self._requesters)

    @property
    def contributions(self) -> dict[str, Contribution]:
        return dict(self._contributions)

    @property
    def worker_ids(self) -> tuple[str, ...]:
        return tuple(self._worker_snapshots.keys())

    def task(self, task_id: str) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise UnknownEntityError(f"no task {task_id!r} in trace") from None

    def requester(self, requester_id: str) -> Requester:
        try:
            return self._requesters[requester_id]
        except KeyError:
            raise UnknownEntityError(
                f"no requester {requester_id!r} in trace"
            ) from None

    def contribution(self, contribution_id: str) -> Contribution:
        try:
            return self._contributions[contribution_id]
        except KeyError:
            raise UnknownEntityError(
                f"no contribution {contribution_id!r} in trace"
            ) from None

    def worker_at(self, worker_id: str, time: int) -> Worker:
        """The latest snapshot of a worker at or before ``time``."""
        snapshots = self._worker_snapshots.get(worker_id)
        if not snapshots:
            raise UnknownEntityError(f"no worker {worker_id!r} in trace")
        index = bisect_right(snapshots, time, key=lambda pair: pair[0])
        if index == 0:
            raise UnknownEntityError(
                f"worker {worker_id!r} not yet registered at t={time}"
            )
        return snapshots[index - 1][1]

    def final_worker(self, worker_id: str) -> Worker:
        """The last known snapshot of a worker."""
        snapshots = self._worker_snapshots.get(worker_id)
        if not snapshots:
            raise UnknownEntityError(f"no worker {worker_id!r} in trace")
        return snapshots[-1][1]

    def final_workers(self) -> dict[str, Worker]:
        """Last known snapshot of every worker."""
        return {wid: snaps[-1][1] for wid, snaps in self._worker_snapshots.items()}

    # ------------------------------------------------------------------
    # Derived views used by axiom checkers and metrics

    def visibility_by_worker(self) -> dict[str, set[str]]:
        """Union of task ids ever shown to each worker (Axioms 1, 2)."""
        shown: dict[str, set[str]] = defaultdict(set)
        for event in self.of_kind(TasksShown):
            shown[event.worker_id].update(event.task_ids)
        return dict(shown)

    def audience_by_task(self) -> dict[str, set[str]]:
        """Workers each task was ever shown to (Axiom 2)."""
        audience: dict[str, set[str]] = defaultdict(set)
        for event in self.of_kind(TasksShown):
            for task_id in event.task_ids:
                audience[task_id].add(event.worker_id)
        return dict(audience)

    def assignments_by_worker(self) -> dict[str, list[AssignmentMade]]:
        grouped: dict[str, list[AssignmentMade]] = defaultdict(list)
        for event in self.of_kind(AssignmentMade):
            grouped[event.worker_id].append(event)
        return dict(grouped)

    def contributions_by_task(self) -> dict[str, list[Contribution]]:
        grouped: dict[str, list[Contribution]] = defaultdict(list)
        for event in self.of_kind(ContributionSubmitted):
            grouped[event.contribution.task_id].append(event.contribution)
        return dict(grouped)

    def payments_by_worker(self) -> dict[str, float]:
        totals: dict[str, float] = defaultdict(float)
        for event in self.of_kind(PaymentIssued):
            totals[event.worker_id] += event.amount
        return dict(totals)

    def payment_for_contribution(self, contribution_id: str) -> float:
        """Total amount paid for one contribution (0.0 when unpaid)."""
        return sum(
            event.amount
            for event in self.of_kind(PaymentIssued)
            if event.contribution_id == contribution_id
        )

    def reviews_by_contribution(self) -> dict[str, ContributionReviewed]:
        """The (last) review of each contribution."""
        reviews: dict[str, ContributionReviewed] = {}
        for event in self.of_kind(ContributionReviewed):
            reviews[event.contribution_id] = event
        return reviews

    def slice(self, start: int, end: int) -> "PlatformTrace":
        """A sub-trace with events in ``[start, end)``; entity-bearing
        registration events before ``start`` are retained so lookups work."""
        kept: list[Event] = []
        for event in self._events:
            is_entity = isinstance(
                event, (WorkerRegistered, WorkerUpdated, RequesterRegistered,
                        TaskPosted)
            )
            if start <= event.time < end or (is_entity and event.time < end):
                kept.append(event)
        return PlatformTrace(kept)
