"""The platform trace: an ordered, indexed log of platform events.

A :class:`PlatformTrace` is what audits consume.  The simulator in
:mod:`repro.platform` produces traces natively; an adapter for a real
platform would emit the same event schema.  The trace maintains
secondary indexes (tasks by id, worker snapshots over time, events by
kind) so axiom checkers stay close to linear in trace length.

Streaming consumers have two entry points:

* :meth:`PlatformTrace.events_since` — a positional cursor read: all
  events appended at or after sequence number ``n``.  Sequence numbers
  are append positions, so a reader that resumes from
  ``cursor = len(trace)`` after each read never skips or duplicates an
  event (:class:`TraceCursor` packages this pattern).
* :meth:`PlatformTrace.subscribe` — push delivery: a listener called
  with each event *after* it is indexed, in append order.  This is what
  the :class:`~repro.core.audit.StreamingAuditEngine` attaches to so a
  live platform is audited as it runs instead of re-scanned from
  scratch.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import defaultdict
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.core.entities import Contribution, Requester, Task, Worker
from repro.core.events import (
    AssignmentMade,
    ContributionReviewed,
    ContributionSubmitted,
    Event,
    PaymentIssued,
    RequesterRegistered,
    TaskPosted,
    TasksShown,
    WorkerRegistered,
    WorkerUpdated,
)
from repro.errors import TraceError, UnknownEntityError

E = TypeVar("E", bound=Event)


class PlatformTrace:
    """Append-only, time-ordered event log with entity indexes.

    Events must be appended in non-decreasing time order; this mirrors
    how a platform log accumulates and keeps the per-kind indexes
    sorted for binary search.
    """

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._events: list[Event] = []
        self._by_kind: dict[str, list[Event]] = defaultdict(list)
        self._tasks: dict[str, Task] = {}
        self._requesters: dict[str, Requester] = {}
        # Per-worker time series of snapshots: (time, Worker), time-sorted.
        self._worker_snapshots: dict[str, list[tuple[int, Worker]]] = defaultdict(list)
        self._contributions: dict[str, Contribution] = {}
        self._listeners: list[Callable[[Event], None]] = []
        for event in events:
            self.append(event)

    # ------------------------------------------------------------------
    # Construction

    def append(self, event: Event) -> None:
        """Append one event; indexes update incrementally.

        Subscribed listeners are notified after the indexes are updated,
        in subscription order.
        """
        if self._events and event.time < self._events[-1].time:
            raise TraceError(
                f"event at t={event.time} appended after t={self._events[-1].time}; "
                "traces must be time-ordered"
            )
        if isinstance(event, TaskPosted) and event.task.task_id in self._tasks:
            raise TraceError(f"task {event.task.task_id} posted twice")
        self._events.append(event)
        self._by_kind[event.kind].append(event)
        if isinstance(event, TaskPosted):
            self._tasks[event.task.task_id] = event.task
        elif isinstance(event, (WorkerRegistered, WorkerUpdated)):
            insort(
                self._worker_snapshots[event.worker.worker_id],
                (event.time, event.worker),
                key=lambda pair: pair[0],
            )
        elif isinstance(event, RequesterRegistered):
            self._requesters[event.requester.requester_id] = event.requester
        elif isinstance(event, ContributionSubmitted):
            self._contributions[event.contribution.contribution_id] = (
                event.contribution
            )
        for listener in self._listeners:
            listener(event)

    def extend(self, events: Iterable[Event]) -> None:
        for event in events:
            self.append(event)

    # ------------------------------------------------------------------
    # Basic access

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> Sequence[Event]:
        return tuple(self._events)

    @property
    def end_time(self) -> int:
        """Time of the last event (0 for an empty trace)."""
        return self._events[-1].time if self._events else 0

    # ------------------------------------------------------------------
    # Streaming access

    def events_since(self, n: int) -> tuple[Event, ...]:
        """Events with sequence numbers ``>= n`` (append positions).

        ``events_since(len(trace))`` is always empty; a reader that
        advances its cursor to ``len(trace)`` after each call observes
        every event exactly once, in append order, regardless of how
        reads interleave with appends.
        """
        if n < 0:
            raise TraceError(f"cursor must be >= 0, got {n}")
        if n > len(self._events):
            raise TraceError(
                f"cursor {n} is past the end of the trace "
                f"({len(self._events)} events); cursors never run ahead"
            )
        return tuple(self._events[n:])

    def cursor(self, start: int = 0) -> "TraceCursor":
        """A stateful read cursor over this trace (see :class:`TraceCursor`)."""
        return TraceCursor(self, start)

    def subscribe(self, listener: Callable[[Event], None]) -> Callable[[], None]:
        """Register a listener called with each newly appended event.

        Listeners run synchronously inside :meth:`append`, after the
        event is indexed, so a listener may read the trace and will see
        the event it was notified about.  Returns an unsubscribe
        callable (idempotent).
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def of_kind(self, event_type: type[E]) -> list[E]:
        """All events of the given type, in time order."""
        from repro.core.events import _KIND_NAMES  # private kind-name table

        try:
            name = _KIND_NAMES[event_type]
        except KeyError:
            raise TraceError(f"unknown event type: {event_type!r}") from None
        return list(self._by_kind.get(name, []))  # type: ignore[return-value]

    def where(self, predicate: Callable[[Event], bool]) -> list[Event]:
        """All events matching an arbitrary predicate."""
        return [event for event in self._events if predicate(event)]

    # ------------------------------------------------------------------
    # Entity lookups

    @property
    def tasks(self) -> dict[str, Task]:
        return dict(self._tasks)

    @property
    def requesters(self) -> dict[str, Requester]:
        return dict(self._requesters)

    @property
    def contributions(self) -> dict[str, Contribution]:
        return dict(self._contributions)

    @property
    def worker_ids(self) -> tuple[str, ...]:
        return tuple(self._worker_snapshots.keys())

    def task(self, task_id: str) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise UnknownEntityError(f"no task {task_id!r} in trace") from None

    def requester(self, requester_id: str) -> Requester:
        try:
            return self._requesters[requester_id]
        except KeyError:
            raise UnknownEntityError(
                f"no requester {requester_id!r} in trace"
            ) from None

    def contribution(self, contribution_id: str) -> Contribution:
        try:
            return self._contributions[contribution_id]
        except KeyError:
            raise UnknownEntityError(
                f"no contribution {contribution_id!r} in trace"
            ) from None

    def worker_at(self, worker_id: str, time: int) -> Worker:
        """The latest snapshot of a worker at or before ``time``."""
        snapshots = self._worker_snapshots.get(worker_id)
        if not snapshots:
            raise UnknownEntityError(f"no worker {worker_id!r} in trace")
        index = bisect_right(snapshots, time, key=lambda pair: pair[0])
        if index == 0:
            raise UnknownEntityError(
                f"worker {worker_id!r} not yet registered at t={time}"
            )
        return snapshots[index - 1][1]

    def final_worker(self, worker_id: str) -> Worker:
        """The last known snapshot of a worker."""
        snapshots = self._worker_snapshots.get(worker_id)
        if not snapshots:
            raise UnknownEntityError(f"no worker {worker_id!r} in trace")
        return snapshots[-1][1]

    def final_workers(self) -> dict[str, Worker]:
        """Last known snapshot of every worker."""
        return {wid: snaps[-1][1] for wid, snaps in self._worker_snapshots.items()}

    # ------------------------------------------------------------------
    # Derived views used by axiom checkers and metrics

    def visibility_by_worker(self) -> dict[str, set[str]]:
        """Union of task ids ever shown to each worker (Axioms 1, 2)."""
        shown: dict[str, set[str]] = defaultdict(set)
        for event in self.of_kind(TasksShown):
            shown[event.worker_id].update(event.task_ids)
        return dict(shown)

    def audience_by_task(self) -> dict[str, set[str]]:
        """Workers each task was ever shown to (Axiom 2)."""
        audience: dict[str, set[str]] = defaultdict(set)
        for event in self.of_kind(TasksShown):
            for task_id in event.task_ids:
                audience[task_id].add(event.worker_id)
        return dict(audience)

    def assignments_by_worker(self) -> dict[str, list[AssignmentMade]]:
        grouped: dict[str, list[AssignmentMade]] = defaultdict(list)
        for event in self.of_kind(AssignmentMade):
            grouped[event.worker_id].append(event)
        return dict(grouped)

    def contributions_by_task(self) -> dict[str, list[Contribution]]:
        grouped: dict[str, list[Contribution]] = defaultdict(list)
        for event in self.of_kind(ContributionSubmitted):
            grouped[event.contribution.task_id].append(event.contribution)
        return dict(grouped)

    def payments_by_worker(self) -> dict[str, float]:
        totals: dict[str, float] = defaultdict(float)
        for event in self.of_kind(PaymentIssued):
            totals[event.worker_id] += event.amount
        return dict(totals)

    def payment_for_contribution(self, contribution_id: str) -> float:
        """Total amount paid for one contribution (0.0 when unpaid)."""
        return sum(
            event.amount
            for event in self.of_kind(PaymentIssued)
            if event.contribution_id == contribution_id
        )

    def reviews_by_contribution(self) -> dict[str, ContributionReviewed]:
        """The (last) review of each contribution."""
        reviews: dict[str, ContributionReviewed] = {}
        for event in self.of_kind(ContributionReviewed):
            reviews[event.contribution_id] = event
        return reviews

    def slice(self, start: int, end: int) -> "PlatformTrace":
        """A sub-trace with events in ``[start, end)``; entity-bearing
        registration events before ``start`` are retained so lookups work."""
        kept: list[Event] = []
        for event in self._events:
            is_entity = isinstance(
                event, (WorkerRegistered, WorkerUpdated, RequesterRegistered,
                        TaskPosted)
            )
            if start <= event.time < end or (is_entity and event.time < end):
                kept.append(event)
        return PlatformTrace(kept)


class TraceCursor:
    """A resumable pull-based reader over a :class:`PlatformTrace`.

    Each :meth:`drain` returns the events appended since the previous
    drain and advances the cursor, so interleaving drains with appends
    yields every event exactly once, in append order.
    """

    def __init__(self, trace: PlatformTrace, start: int = 0) -> None:
        if start < 0 or start > len(trace):
            raise TraceError(
                f"cursor start {start} outside [0, {len(trace)}]"
            )
        self._trace = trace
        self._position = start

    @property
    def position(self) -> int:
        """The sequence number of the next unread event."""
        return self._position

    def drain(self) -> tuple[Event, ...]:
        """All events appended since the last drain (may be empty)."""
        events = self._trace.events_since(self._position)
        self._position += len(events)
        return events
