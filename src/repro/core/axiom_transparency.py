"""Axioms 6 and 7: requester and platform transparency.

**Axiom 6 (requester transparency).**  "A requester must make available
requester-dependent working conditions such as hourly wage and time
between submission of work and payment, and task-dependent working
conditions such as recruitment criteria and rejection criteria."

The checker verifies three things per requester:

1. every mandated field was disclosed (a
   :class:`~repro.core.events.DisclosureShown` with subject
   ``requester:<id>`` exists for it);
2. rejections carry feedback (an empty-feedback rejection is the
   Section 3.1.2 requester opacity — the rejection criteria were not
   made available *in practice*);
3. the declared payment delay is honoured: actual
   submission-to-payment gaps must not exceed the declared delay.

**Axiom 7 (platform transparency).**  "The platform must disclose, for
each worker w, computed attributes C_w such as performance and
acceptance ratio."  The checker verifies that each worker with computed
attributes received a disclosure of every mandated C_w field addressed
to them.

The streaming counterparts maintain the disclosed-field sets, entity
registries, and submission times event by event; rejection-feedback and
late-payment verdicts are final on arrival, while the undisclosed-field
sweeps (whose verdicts can flip as disclosures arrive) are re-derived
per snapshot in O(entities × mandated fields).

The *delta* counterparts (used by
:class:`~repro.core.audit.DeltaAuditEngine`) go one step further: the
per-entity sweep verdicts are cached, and each audit re-sweeps only the
entities named in the delta's touched set — a requester's missing-field
list is recomputed only when a new requester registers or a disclosure
about them arrives, so an audit of a trace that grew by one round costs
that round's entities, not all of them.
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.axioms import (
    Axiom,
    AxiomCheck,
    DeltaChecker,
    IncrementalChecker,
    TraceDelta,
)
from repro.core.entities import Requester, Task, Worker
from repro.core.events import (
    ContributionReviewed,
    ContributionSubmitted,
    DisclosureShown,
    Event,
    PaymentIssued,
    RequesterRegistered,
    TaskPosted,
    WorkerRegistered,
    WorkerUpdated,
)
from repro.core.trace import PlatformTrace
from repro.core.violations import Violation, ViolationSeverity

#: Axiom 6's mandated requester fields.
REQUESTER_MANDATED_FIELDS: tuple[str, ...] = (
    "hourly_wage",
    "payment_delay",
    "recruitment_criteria",
    "rejection_criteria",
)

#: Axiom 7's mandated computed-attribute fields.
WORKER_MANDATED_FIELDS: tuple[str, ...] = (
    "acceptance_ratio",
    "tasks_completed",
)


def requester_subject(requester_id: str) -> str:
    return f"requester:{requester_id}"


def worker_subject(worker_id: str) -> str:
    return f"worker:{worker_id}"


@dataclass
class RequesterTransparency(Axiom):
    """Axiom 6 checker."""

    mandated_fields: tuple[str, ...] = REQUESTER_MANDATED_FIELDS
    check_rejection_feedback: bool = True
    check_payment_delay: bool = True

    axiom_id = 6
    title = "Requester transparency"
    supports_delta = True

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        violations: list[Violation] = []
        opportunities = 0
        disclosed: dict[str, set[str]] = defaultdict(set)
        for event in trace.of_kind(DisclosureShown):
            disclosed[event.subject].add(event.field_name)

        undisclosed_violations, undisclosed_opportunities = self._sweep_fields(
            trace.requesters, disclosed, trace.end_time
        )
        violations.extend(undisclosed_violations)
        opportunities += undisclosed_opportunities

        if self.check_rejection_feedback:
            for event in trace.of_kind(ContributionReviewed):
                if event.accepted:
                    continue
                opportunities += 1
                violation = self._rejection_violation(event, trace.tasks)
                if violation is not None:
                    violations.append(violation)

        if self.check_payment_delay:
            submitted_at = {
                e.contribution.contribution_id: e.time
                for e in trace.of_kind(ContributionSubmitted)
            }
            for event in trace.of_kind(PaymentIssued):
                verdict = self._delay_verdict(
                    event, submitted_at, trace.tasks, trace.requesters
                )
                if verdict is None:
                    continue
                opportunities += 1
                if verdict:
                    violations.append(verdict)
        return self._result(violations, opportunities)

    def incremental(self) -> IncrementalChecker:
        return _IncrementalRequesterTransparency(self)

    def delta_checker(self) -> DeltaChecker:
        return _DeltaRequesterTransparency(self)

    def _undisclosed_violation(
        self, requester_id: str, field_name: str, end_time: int
    ) -> Violation:
        return Violation(
            axiom_id=6,
            message=(
                f"requester never disclosed mandated field {field_name!r}"
            ),
            time=end_time,
            severity=ViolationSeverity.WARNING,
            subjects=(requester_id,),
            witness={
                "field": field_name,
                "type": "undisclosed_field",
            },
        )

    def _sweep_fields(
        self,
        requesters: dict[str, Requester],
        disclosed: dict[str, set[str]],
        end_time: int,
    ) -> tuple[list[Violation], int]:
        """Mandated fields every known requester must have disclosed."""
        violations: list[Violation] = []
        opportunities = 0
        for requester_id in sorted(requesters):
            subject = requester_subject(requester_id)
            shown = disclosed.get(subject, set())
            for field_name in self.mandated_fields:
                opportunities += 1
                if field_name not in shown:
                    violations.append(
                        self._undisclosed_violation(
                            requester_id, field_name, end_time
                        )
                    )
        return violations, opportunities

    def _rejection_violation(
        self, event: ContributionReviewed, tasks: dict[str, Task]
    ) -> Violation | None:
        """Silent-rejection verdict for one (rejected) review event."""
        if event.feedback.strip():
            return None
        task = tasks.get(event.task_id)
        requester_id = task.requester_id if task else "?"
        return Violation(
            axiom_id=6,
            message="contribution rejected without feedback",
            time=event.time,
            severity=ViolationSeverity.WARNING,
            subjects=(event.worker_id, requester_id),
            witness={
                "contribution_id": event.contribution_id,
                "type": "silent_rejection",
            },
        )

    def _delay_verdict(
        self,
        event: PaymentIssued,
        submitted_at: dict[str, int],
        tasks: dict[str, Task],
        requesters: dict[str, Requester],
    ) -> Violation | bool | None:
        """Late-payment verdict for one payment event.

        ``None``: not an opportunity (no declared delay to hold the
        requester to); ``False``: on time; a :class:`Violation`: late.
        """
        if event.contribution_id not in submitted_at:
            return None
        task = tasks.get(event.task_id)
        if task is None:
            return None
        requester = requesters.get(task.requester_id)
        if requester is None or requester.payment_delay is None:
            return None
        actual_delay = event.time - submitted_at[event.contribution_id]
        if actual_delay <= requester.payment_delay:
            return False
        return Violation(
            axiom_id=6,
            message=(
                f"payment arrived after {actual_delay} ticks; "
                f"declared delay is {requester.payment_delay}"
            ),
            time=event.time,
            severity=ViolationSeverity.WARNING,
            subjects=(event.worker_id, task.requester_id),
            witness={
                "declared_delay": requester.payment_delay,
                "actual_delay": actual_delay,
                "type": "late_payment",
            },
        )


class _IncrementalRequesterTransparency(IncrementalChecker):
    """Streaming Axiom 6.

    Rejection-feedback and payment-delay verdicts depend only on the
    already-observed prefix, so they are settled at observe time and
    merely replayed into each snapshot; the undisclosed-field sweep is
    re-derived per snapshot (a later disclosure clears the earlier
    violation) at O(requesters × mandated fields).
    """

    def __init__(self, axiom: RequesterTransparency) -> None:
        super().__init__(axiom)
        self._axiom = axiom
        self._disclosed: dict[str, set[str]] = {}
        self._requesters: dict[str, Requester] = {}
        self._tasks: dict[str, Task] = {}
        self._submitted_at: dict[str, int] = {}
        self._rejections: list[Violation] = []
        self._rejection_opportunities = 0
        self._delays: list[Violation] = []
        self._delay_opportunities = 0
        self._end_time = 0

    def observe(self, event: Event) -> None:
        axiom = self._axiom
        self._end_time = event.time
        if isinstance(event, DisclosureShown):
            self._disclosed.setdefault(event.subject, set()).add(event.field_name)
        elif isinstance(event, RequesterRegistered):
            self._requesters[event.requester.requester_id] = event.requester
        elif isinstance(event, TaskPosted):
            self._tasks[event.task.task_id] = event.task
        elif isinstance(event, ContributionSubmitted):
            self._submitted_at[event.contribution.contribution_id] = event.time
        elif isinstance(event, ContributionReviewed):
            if axiom.check_rejection_feedback and not event.accepted:
                self._rejection_opportunities += 1
                violation = axiom._rejection_violation(event, self._tasks)
                if violation is not None:
                    self._rejections.append(violation)
        elif isinstance(event, PaymentIssued):
            if axiom.check_payment_delay:
                verdict = axiom._delay_verdict(
                    event, self._submitted_at, self._tasks, self._requesters
                )
                if verdict is not None:
                    self._delay_opportunities += 1
                    if verdict:
                        self._delays.append(verdict)

    def snapshot(self) -> AxiomCheck:
        axiom = self._axiom
        violations, opportunities = axiom._sweep_fields(
            self._requesters, self._disclosed, self._end_time
        )
        if axiom.check_rejection_feedback:
            violations.extend(self._rejections)
            opportunities += self._rejection_opportunities
        if axiom.check_payment_delay:
            violations.extend(self._delays)
            opportunities += self._delay_opportunities
        return axiom._result(violations, opportunities)


class _DeltaRequesterTransparency(DeltaChecker):
    """Delta-aware Axiom 6: cached per-requester sweeps.

    Event folding matches the incremental checker (settled rejection and
    payment-delay verdicts, maintained disclosure/entity maps); the
    difference is the undisclosed-field sweep, whose per-requester
    missing-field lists are cached and recomputed only for requesters in
    the delta's touched set — a requester untouched since the last audit
    keeps its verdict.  Violations are materialised fresh each audit
    because the batch checker stamps them with the current trace end
    time.
    """

    #: Whether to settle and retain the rejection/delay verdict streams.
    #: The sharded subsystem's non-designated shards fold the same
    #: events (their entity maps must stay complete) but never report
    #: these streams, so they switch this off instead of building and
    #: discarding a Violation per event.
    _keep_settled = True

    def __init__(self, axiom: RequesterTransparency) -> None:
        self._axiom = axiom
        self._disclosed: dict[str, set[str]] = {}
        self._requesters: dict[str, Requester] = {}
        self._tasks: dict[str, Task] = {}
        self._submitted_at: dict[str, int] = {}
        self._rejections: list[Violation] = []
        self._rejection_opportunities = 0
        self._delays: list[Violation] = []
        self._delay_opportunities = 0
        self._end_time = 0
        # requester_id -> mandated fields still undisclosed (cached sweep).
        self._missing: dict[str, tuple[str, ...]] = {}
        self._sorted_requesters: list[str] = []
        # The audited trace; indexed backends serve per-requester
        # disclosure slices through TraceQuery instead of the folded map.
        self._trace: PlatformTrace | None = None
        self._slice_cache: "SliceCache | None" = None

    def apply(self, trace: PlatformTrace, delta: TraceDelta) -> None:
        from repro.query.slices import uses_indexed_slices

        axiom = self._axiom
        self._trace = trace
        # On an indexed store the disclosure map is never read (the
        # slice cache answers through TraceQuery), so don't build it.
        indexed = uses_indexed_slices(trace)
        for event in delta.new_events:
            self._end_time = event.time
            if isinstance(event, DisclosureShown):
                if not indexed:
                    self._disclosed.setdefault(event.subject, set()).add(
                        event.field_name
                    )
            elif isinstance(event, RequesterRegistered):
                requester_id = event.requester.requester_id
                if requester_id not in self._requesters:
                    insort(self._sorted_requesters, requester_id)
                self._requesters[requester_id] = event.requester
            elif isinstance(event, TaskPosted):
                self._tasks[event.task.task_id] = event.task
            elif isinstance(event, ContributionSubmitted):
                self._submitted_at[
                    event.contribution.contribution_id
                ] = event.time
            elif isinstance(event, ContributionReviewed):
                if (
                    self._keep_settled
                    and axiom.check_rejection_feedback
                    and not event.accepted
                ):
                    self._rejection_opportunities += 1
                    violation = axiom._rejection_violation(event, self._tasks)
                    if violation is not None:
                        self._rejections.append(violation)
            elif isinstance(event, PaymentIssued):
                if self._keep_settled and axiom.check_payment_delay:
                    verdict = axiom._delay_verdict(
                        event, self._submitted_at, self._tasks,
                        self._requesters,
                    )
                    if verdict is not None:
                        self._delay_opportunities += 1
                        if verdict:
                            self._delays.append(verdict)
        # Touched-entity re-sweep: only requesters the delta referenced
        # can have gained a registration or a disclosure.
        self._resweep(delta.touched.requester_ids)

    def _resweep(self, requester_ids: "Iterable[str]") -> None:
        """Recompute cached missing-field sweeps for the given
        requesters (the partition-aware subclass narrows this to the
        entities its shard owns)."""
        for requester_id in requester_ids:
            if requester_id in self._requesters:
                self._missing[requester_id] = self._compute_missing(
                    requester_id
                )

    def _compute_missing(self, requester_id: str) -> tuple[str, ...]:
        subject = requester_subject(requester_id)
        shown = self._disclosed_fields(requester_id, subject)
        return tuple(
            field_name
            for field_name in self._axiom.mandated_fields
            if field_name not in shown
        )

    def _disclosed_fields(self, requester_id: str, subject: str) -> set[str]:
        """This requester's disclosed fields — the per-entity slice.

        On an indexed store the slice is fetched through
        :func:`repro.query.entity_disclosures` (a seq-bounded point
        query on the entity index, topping up a cached view so each
        audit decodes only the events appended since the last one);
        elsewhere the event-folded map answers.
        """
        from repro.query.slices import (
            SliceCache,
            entity_disclosures,
            uses_indexed_slices,
        )

        if uses_indexed_slices(self._trace):
            if self._slice_cache is None:
                self._slice_cache = SliceCache()
            return self._slice_cache.topped_up(
                self._trace,
                requester_id,
                lambda since: {
                    event.field_name
                    for event in entity_disclosures(
                        self._trace, requester_id, "requester", since=since
                    )
                    if event.subject == subject
                },
            )
        return self._disclosed.get(subject, set())

    def result(self) -> AxiomCheck:
        axiom = self._axiom
        violations: list[Violation] = []
        for requester_id in self._sorted_requesters:
            for field_name in self._missing.get(requester_id, ()):
                violations.append(
                    axiom._undisclosed_violation(
                        requester_id, field_name, self._end_time
                    )
                )
        opportunities = len(self._requesters) * len(axiom.mandated_fields)
        if axiom.check_rejection_feedback:
            violations.extend(self._rejections)
            opportunities += self._rejection_opportunities
        if axiom.check_payment_delay:
            violations.extend(self._delays)
            opportunities += self._delay_opportunities
        return axiom._result(violations, opportunities)


@dataclass
class PlatformTransparency(Axiom):
    """Axiom 7 checker."""

    mandated_fields: tuple[str, ...] = WORKER_MANDATED_FIELDS
    require_private_audience: bool = True

    axiom_id = 7
    title = "Platform transparency"
    supports_delta = True

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        disclosed: dict[str, set[str]] = defaultdict(set)
        for event in trace.of_kind(DisclosureShown):
            if self._counts_as_disclosed(event):
                disclosed[event.subject].add(event.field_name)
        final_workers = {
            worker_id: trace.final_worker(worker_id)
            for worker_id in trace.worker_ids
        }
        violations, opportunities = self._sweep_workers(
            final_workers, disclosed, trace.end_time
        )
        return self._result(violations, opportunities)

    def incremental(self) -> IncrementalChecker:
        return _IncrementalPlatformTransparency(self)

    def delta_checker(self) -> DeltaChecker:
        return _DeltaPlatformTransparency(self)

    def _counts_as_disclosed(self, event: DisclosureShown) -> bool:
        """A worker's C_w counts as disclosed to *them* only when
        addressed to them (or public)."""
        if not self.require_private_audience:
            return True
        return not (
            event.audience_worker_id
            and worker_subject(event.audience_worker_id) != event.subject
        )

    def _undisclosed_violation(
        self, worker_id: str, field_name: str, end_time: int
    ) -> Violation:
        return Violation(
            axiom_id=7,
            message=(
                f"platform never disclosed {field_name!r} to its worker"
            ),
            time=end_time,
            severity=ViolationSeverity.WARNING,
            subjects=(worker_id,),
            witness={
                "field": field_name,
                "type": "undisclosed_computed_attribute",
            },
        )

    def _sweep_workers(
        self,
        final_workers: dict[str, Worker],
        disclosed: dict[str, set[str]],
        end_time: int,
    ) -> tuple[list[Violation], int]:
        violations: list[Violation] = []
        opportunities = 0
        for worker_id in sorted(final_workers):
            worker = final_workers[worker_id]
            relevant = [f for f in self.mandated_fields if f in worker.computed]
            subject = worker_subject(worker_id)
            shown = disclosed.get(subject, set())
            for field_name in relevant:
                opportunities += 1
                if field_name not in shown:
                    violations.append(
                        self._undisclosed_violation(
                            worker_id, field_name, end_time
                        )
                    )
        return violations, opportunities


class _IncrementalPlatformTransparency(IncrementalChecker):
    """Streaming Axiom 7: track latest worker snapshots and disclosed
    C_w fields; snapshot sweeps workers × mandated fields."""

    def __init__(self, axiom: PlatformTransparency) -> None:
        super().__init__(axiom)
        self._axiom = axiom
        self._disclosed: dict[str, set[str]] = {}
        self._final_workers: dict[str, Worker] = {}
        self._end_time = 0

    def observe(self, event: Event) -> None:
        self._end_time = event.time
        if isinstance(event, DisclosureShown):
            if self._axiom._counts_as_disclosed(event):
                self._disclosed.setdefault(event.subject, set()).add(
                    event.field_name
                )
        elif isinstance(event, (WorkerRegistered, WorkerUpdated)):
            self._final_workers[event.worker.worker_id] = event.worker

    def snapshot(self) -> AxiomCheck:
        violations, opportunities = self._axiom._sweep_workers(
            self._final_workers, self._disclosed, self._end_time
        )
        return self._axiom._result(violations, opportunities)


class _DeltaPlatformTransparency(DeltaChecker):
    """Delta-aware Axiom 7: cached per-worker sweeps.

    A worker's verdict — which of their computed attributes are both
    mandated and undisclosed — changes only when their snapshot changes
    (new ``C_w`` published) or a disclosure addressed to them arrives,
    so each audit recomputes it only for workers in the delta's touched
    set.  Violations are materialised fresh per audit with the current
    trace end time (matching the batch stamp).
    """

    def __init__(self, axiom: PlatformTransparency) -> None:
        self._axiom = axiom
        self._disclosed: dict[str, set[str]] = {}
        self._final_workers: dict[str, Worker] = {}
        self._sorted_workers: list[str] = []
        self._end_time = 0
        # worker_id -> (relevant mandated-field count, undisclosed fields).
        self._sweeps: dict[str, tuple[int, tuple[str, ...]]] = {}
        # The audited trace; indexed backends serve per-worker
        # disclosure slices through TraceQuery instead of the folded map.
        self._trace: PlatformTrace | None = None
        self._slice_cache: "SliceCache | None" = None

    def apply(self, trace: PlatformTrace, delta: TraceDelta) -> None:
        from repro.query.slices import uses_indexed_slices

        axiom = self._axiom
        self._trace = trace
        # On an indexed store the disclosure map is never read (the
        # slice cache answers through TraceQuery), so don't build it.
        indexed = uses_indexed_slices(trace)
        for event in delta.new_events:
            self._end_time = event.time
            if isinstance(event, DisclosureShown):
                if not indexed and axiom._counts_as_disclosed(event):
                    self._disclosed.setdefault(event.subject, set()).add(
                        event.field_name
                    )
            elif isinstance(event, (WorkerRegistered, WorkerUpdated)):
                worker_id = event.worker.worker_id
                if worker_id not in self._final_workers:
                    insort(self._sorted_workers, worker_id)
                self._final_workers[worker_id] = event.worker
        self._resweep(delta.touched.worker_ids)

    def _resweep(self, worker_ids: "Iterable[str]") -> None:
        """Recompute cached per-worker sweeps for the given workers
        (the partition-aware subclass narrows this to the entities its
        shard owns)."""
        for worker_id in worker_ids:
            if worker_id in self._final_workers:
                self._sweeps[worker_id] = self._compute_sweep(worker_id)

    def _compute_sweep(self, worker_id: str) -> tuple[int, tuple[str, ...]]:
        worker = self._final_workers[worker_id]
        shown = self._disclosed_fields(worker_id)
        relevant = [
            f for f in self._axiom.mandated_fields if f in worker.computed
        ]
        missing = tuple(f for f in relevant if f not in shown)
        return len(relevant), missing

    def _disclosed_fields(self, worker_id: str) -> set[str]:
        """C_w fields disclosed *to this worker* — the per-entity slice.

        On an indexed store the slice is fetched through
        :func:`repro.query.entity_disclosures` and re-filtered by the
        axiom's audience rule; elsewhere the event-folded map (which
        already applied the rule at observe time) answers.
        """
        from repro.query.slices import (
            SliceCache,
            entity_disclosures,
            uses_indexed_slices,
        )

        subject = worker_subject(worker_id)
        if uses_indexed_slices(self._trace):
            if self._slice_cache is None:
                self._slice_cache = SliceCache()
            return self._slice_cache.topped_up(
                self._trace,
                worker_id,
                lambda since: {
                    event.field_name
                    for event in entity_disclosures(
                        self._trace, worker_id, "worker", since=since
                    )
                    if event.subject == subject
                    and self._axiom._counts_as_disclosed(event)
                },
            )
        return self._disclosed.get(subject, set())

    def result(self) -> AxiomCheck:
        axiom = self._axiom
        violations: list[Violation] = []
        opportunities = 0
        for worker_id in self._sorted_workers:
            relevant_count, missing = self._sweeps.get(worker_id, (0, ()))
            opportunities += relevant_count
            for field_name in missing:
                violations.append(
                    axiom._undisclosed_violation(
                        worker_id, field_name, self._end_time
                    )
                )
        return axiom._result(violations, opportunities)
