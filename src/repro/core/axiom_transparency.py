"""Axioms 6 and 7: requester and platform transparency.

**Axiom 6 (requester transparency).**  "A requester must make available
requester-dependent working conditions such as hourly wage and time
between submission of work and payment, and task-dependent working
conditions such as recruitment criteria and rejection criteria."

The checker verifies three things per requester:

1. every mandated field was disclosed (a
   :class:`~repro.core.events.DisclosureShown` with subject
   ``requester:<id>`` exists for it);
2. rejections carry feedback (an empty-feedback rejection is the
   Section 3.1.2 requester opacity — the rejection criteria were not
   made available *in practice*);
3. the declared payment delay is honoured: actual
   submission-to-payment gaps must not exceed the declared delay.

**Axiom 7 (platform transparency).**  "The platform must disclose, for
each worker w, computed attributes C_w such as performance and
acceptance ratio."  The checker verifies that each worker with computed
attributes received a disclosure of every mandated C_w field addressed
to them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.axioms import Axiom, AxiomCheck
from repro.core.events import (
    ContributionReviewed,
    ContributionSubmitted,
    DisclosureShown,
    PaymentIssued,
)
from repro.core.trace import PlatformTrace
from repro.core.violations import Violation, ViolationSeverity

#: Axiom 6's mandated requester fields.
REQUESTER_MANDATED_FIELDS: tuple[str, ...] = (
    "hourly_wage",
    "payment_delay",
    "recruitment_criteria",
    "rejection_criteria",
)

#: Axiom 7's mandated computed-attribute fields.
WORKER_MANDATED_FIELDS: tuple[str, ...] = (
    "acceptance_ratio",
    "tasks_completed",
)


def requester_subject(requester_id: str) -> str:
    return f"requester:{requester_id}"


def worker_subject(worker_id: str) -> str:
    return f"worker:{worker_id}"


@dataclass
class RequesterTransparency(Axiom):
    """Axiom 6 checker."""

    mandated_fields: tuple[str, ...] = REQUESTER_MANDATED_FIELDS
    check_rejection_feedback: bool = True
    check_payment_delay: bool = True

    axiom_id = 6
    title = "Requester transparency"

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        violations: list[Violation] = []
        opportunities = 0
        disclosed: dict[str, set[str]] = defaultdict(set)
        for event in trace.of_kind(DisclosureShown):
            disclosed[event.subject].add(event.field_name)

        for requester_id in sorted(trace.requesters):
            subject = requester_subject(requester_id)
            for field_name in self.mandated_fields:
                opportunities += 1
                if field_name not in disclosed[subject]:
                    violations.append(
                        Violation(
                            axiom_id=6,
                            message=(
                                f"requester never disclosed mandated field "
                                f"{field_name!r}"
                            ),
                            time=trace.end_time,
                            severity=ViolationSeverity.WARNING,
                            subjects=(requester_id,),
                            witness={
                                "field": field_name,
                                "type": "undisclosed_field",
                            },
                        )
                    )

        if self.check_rejection_feedback:
            for event in trace.of_kind(ContributionReviewed):
                if event.accepted:
                    continue
                opportunities += 1
                if not event.feedback.strip():
                    task = trace.tasks.get(event.task_id)
                    requester_id = task.requester_id if task else "?"
                    violations.append(
                        Violation(
                            axiom_id=6,
                            message="contribution rejected without feedback",
                            time=event.time,
                            severity=ViolationSeverity.WARNING,
                            subjects=(event.worker_id, requester_id),
                            witness={
                                "contribution_id": event.contribution_id,
                                "type": "silent_rejection",
                            },
                        )
                    )

        if self.check_payment_delay:
            delay_violations, delay_opportunities = self._check_delays(trace)
            violations.extend(delay_violations)
            opportunities += delay_opportunities
        return self._result(violations, opportunities)

    def _check_delays(self, trace: PlatformTrace) -> tuple[list[Violation], int]:
        """Actual payment delays must respect declared payment_delay."""
        violations: list[Violation] = []
        opportunities = 0
        submitted_at = {
            e.contribution.contribution_id: e.time
            for e in trace.of_kind(ContributionSubmitted)
        }
        for event in trace.of_kind(PaymentIssued):
            if event.contribution_id not in submitted_at:
                continue
            task = trace.tasks.get(event.task_id)
            if task is None:
                continue
            requester = trace.requesters.get(task.requester_id)
            if requester is None or requester.payment_delay is None:
                continue
            opportunities += 1
            actual_delay = event.time - submitted_at[event.contribution_id]
            if actual_delay > requester.payment_delay:
                violations.append(
                    Violation(
                        axiom_id=6,
                        message=(
                            f"payment arrived after {actual_delay} ticks; "
                            f"declared delay is {requester.payment_delay}"
                        ),
                        time=event.time,
                        severity=ViolationSeverity.WARNING,
                        subjects=(event.worker_id, task.requester_id),
                        witness={
                            "declared_delay": requester.payment_delay,
                            "actual_delay": actual_delay,
                            "type": "late_payment",
                        },
                    )
                )
        return violations, opportunities


@dataclass
class PlatformTransparency(Axiom):
    """Axiom 7 checker."""

    mandated_fields: tuple[str, ...] = WORKER_MANDATED_FIELDS
    require_private_audience: bool = True

    axiom_id = 7
    title = "Platform transparency"

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        violations: list[Violation] = []
        opportunities = 0
        disclosed: dict[str, set[str]] = defaultdict(set)
        for event in trace.of_kind(DisclosureShown):
            if self.require_private_audience:
                # A worker's C_w counts as disclosed to *them* only when
                # addressed to them (or public).
                if event.audience_worker_id and (
                    worker_subject(event.audience_worker_id) != event.subject
                ):
                    continue
            disclosed[event.subject].add(event.field_name)

        for worker_id in sorted(trace.worker_ids):
            worker = trace.final_worker(worker_id)
            relevant = [f for f in self.mandated_fields if f in worker.computed]
            subject = worker_subject(worker_id)
            for field_name in relevant:
                opportunities += 1
                if field_name not in disclosed[subject]:
                    violations.append(
                        Violation(
                            axiom_id=7,
                            message=(
                                f"platform never disclosed {field_name!r} to "
                                f"its worker"
                            ),
                            time=trace.end_time,
                            severity=ViolationSeverity.WARNING,
                            subjects=(worker_id,),
                            witness={
                                "field": field_name,
                                "type": "undisclosed_computed_attribute",
                            },
                        )
                    )
        return self._result(violations, opportunities)
