"""Human-readable explanation of audit findings.

Axiom checkers produce machine-checkable violations with witnesses;
this module turns them into the explanations the paper says workers
lack today ("requesters who reject their contribution without providing
feedback").  Two views:

* :func:`explain_for_subject` — everything that happened *to* one
  worker/requester/task, in plain sentences;
* :func:`grievance_report` — per-subject grouping of a whole report,
  most-wronged subjects first (what a worker-advocacy tool like
  Turkopticon would render).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.audit import AuditReport
from repro.core.violations import Violation, ViolationSeverity

_TYPE_SENTENCES: dict[str, str] = {
    "unequal_pay": (
        "was paid differently from another worker for a similar "
        "contribution to the same task"
    ),
    "wrongful_rejection": (
        "had work rejected that was indistinguishable from accepted work"
    ),
    "bonus_reneged": "was promised a bonus that was never paid",
    "undetected_malice": (
        "behaved suspiciously without the platform warning requesters"
    ),
    "interruption": "was interrupted in the middle of started work",
    "undisclosed_field": "withheld a mandated working-condition disclosure",
    "silent_rejection": "rejected a contribution without any feedback",
    "late_payment": "was paid later than the declared payment delay",
    "undisclosed_computed_attribute": (
        "was never shown their own platform statistics"
    ),
}


def _sentence(violation: Violation) -> str:
    tag = str(violation.witness.get("type", ""))
    body = _TYPE_SENTENCES.get(tag)
    if body is None:
        return violation.message
    return body


def explain_violation(violation: Violation) -> str:
    """One plain-English sentence with time and severity."""
    subject = violation.subjects[0] if violation.subjects else "someone"
    urgency = (
        "Serious: " if violation.severity is ViolationSeverity.CRITICAL else ""
    )
    return f"{urgency}at t={violation.time}, {subject} {_sentence(violation)}."


def explain_for_subject(report: AuditReport, subject_id: str) -> list[str]:
    """Everything the audit found involving one subject, in time order."""
    involved = sorted(
        (v for v in report.violations if v.involves(subject_id)),
        key=lambda v: (v.time, v.axiom_id),
    )
    return [explain_violation(v) for v in involved]


def grievance_report(report: AuditReport, limit: int | None = None) -> str:
    """Per-subject summary of an audit, most-wronged first.

    ``limit`` caps the number of subjects listed (None = all).
    """
    per_subject: dict[str, list[Violation]] = defaultdict(list)
    for violation in report.violations:
        for subject in violation.subjects[:1]:  # attribute to primary subject
            per_subject[subject].append(violation)
    if not per_subject:
        return "No grievances: the audit found no violations."
    ranked = sorted(
        per_subject.items(), key=lambda item: (-len(item[1]), item[0])
    )
    if limit is not None:
        ranked = ranked[:limit]
    lines = [f"Grievance report ({report.total_violations} violation(s) "
             f"across {len(per_subject)} subject(s)):"]
    for subject, violations in ranked:
        lines.append(f"  {subject} — {len(violations)} grievance(s):")
        for violation in sorted(violations, key=lambda v: v.time)[:5]:
            lines.append(f"    - {explain_violation(violation)}")
        if len(violations) > 5:
            lines.append(f"    ... and {len(violations) - 5} more")
    return "\n".join(lines)
