"""The ``TraceStore`` protocol: pluggable storage behind a trace.

A :class:`~repro.core.trace.PlatformTrace` is a thin facade; everything
it knows — the ordered event log, the per-kind lists, and the entity
indexes (tasks, requesters, contributions, worker snapshot series) —
lives in a :class:`TraceStore`.  Three backends ship with the package:

* :class:`~repro.core.store.memory.InMemoryTraceStore` — the default;
  everything indexed in RAM, unbounded.
* :class:`~repro.core.store.windowed.WindowedTraceStore` — bounded
  memory for unbounded streams: retains the newest ``window`` events
  (entity registries stay complete, old worker snapshots are pruned).
* :class:`~repro.core.store.persistent.PersistentTraceStore` — JSONL
  segment files on disk with ``open``/``save``/write-through ``append``,
  so a real platform log is captured once and re-audited forever.

Stores also carry the bookkeeping delta-aware audits need: a
monotonically increasing :attr:`TraceStore.revision` (the total number
of events ever appended — eviction never decreases it) and the
:func:`collect_touched` helper that summarises which entities a batch
of new events referenced.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.entities import Contribution, Requester, Task, Worker
    from repro.core.events import Event


class TraceStore(abc.ABC):
    """Ordered, indexed storage for platform events.

    The store owns ordering validation (events must arrive in
    non-decreasing time order, a task id may be posted once) so every
    backend enforces the same trace well-formedness; the facade adds
    only subscription plumbing on top.

    Sequence numbers are *global* append positions: ``revision`` is the
    next sequence number, and :meth:`events_since` addresses events by
    those positions even on backends that evict (which raise
    :class:`~repro.errors.TraceError` for evicted ranges rather than
    silently returning a gap).
    """

    #: Stable name used by :func:`repro.core.store.make_store` and CLI flags.
    backend_name: str = "abstract"

    #: True when the backend executes :class:`repro.query.TraceQuery`
    #: filters natively against secondary indexes (``query_events`` /
    #: ``query_count`` / ``query_kind_counts`` / ``query_entity_counts``
    #: hooks).  Backends that leave this False are served by the generic
    #: cursor scan in :mod:`repro.query` — same results, linear cost.
    supports_indexed_query: bool = False

    # ------------------------------------------------------------------
    # Construction

    @abc.abstractmethod
    def append(self, event: "Event") -> None:
        """Validate, store, and index one event."""

    def append_batch(self, events: "Iterable[Event]") -> int:
        """Append many events; returns how many were appended.

        The base implementation is a plain loop.  Backends that pay a
        per-append transaction cost (the SQLite store) override this to
        amortise it into one transaction; the observable store state is
        identical either way, including after a mid-batch validation
        failure (events appended before the failure stay appended).
        Overriding backends record their own telemetry — metrics are
        per-batch, never per-event.
        """
        from repro.telemetry.instruments import record_store_append
        from repro.telemetry.registry import get_registry

        recording = get_registry().enabled
        started = time.perf_counter() if recording else 0.0
        count = 0
        for event in events:
            self.append(event)
            count += 1
        if recording:
            record_store_append(
                self.backend_name, count, time.perf_counter() - started
            )
        return count

    # ------------------------------------------------------------------
    # Log access

    @property
    @abc.abstractmethod
    def revision(self) -> int:
        """Total number of events ever appended (never decreases)."""

    @property
    @abc.abstractmethod
    def first_retained(self) -> int:
        """Sequence number of the oldest event still readable (0 unless
        the backend evicts)."""

    @property
    @abc.abstractmethod
    def events(self) -> Sequence["Event"]:
        """All retained events, in append order."""

    @abc.abstractmethod
    def events_since(self, n: int) -> "tuple[Event, ...]":
        """Events with sequence numbers ``>= n``; raises for evicted or
        out-of-range cursors."""

    @property
    @abc.abstractmethod
    def end_time(self) -> int:
        """Time of the last appended event (0 for an empty store)."""

    @abc.abstractmethod
    def of_kind(self, kind: str) -> "Sequence[Event]":
        """Retained events of one kind name, in append order."""

    def __iter__(self) -> "Iterator[Event]":
        return iter(self.events)

    def __len__(self) -> int:
        """Logical length == revision, so cursor arithmetic
        (``events_since(len(trace))``) holds on every backend."""
        return self.revision

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        """Release the store's resources.  **Idempotent on every
        backend**: a second ``close()`` (or ``close()`` inside a
        ``with`` block whose ``__exit__`` closes again) is a no-op.
        Backends without resources inherit this no-op, so callers can
        close unconditionally."""

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Entity indexes (references, not copies — the facade copies)

    @property
    @abc.abstractmethod
    def tasks(self) -> "dict[str, Task]": ...

    @property
    @abc.abstractmethod
    def requesters(self) -> "dict[str, Requester]": ...

    @property
    @abc.abstractmethod
    def contributions(self) -> "dict[str, Contribution]": ...

    @property
    @abc.abstractmethod
    def worker_ids(self) -> tuple[str, ...]:
        """Worker ids in first-registration order."""

    @abc.abstractmethod
    def worker_at(self, worker_id: str, time: int) -> "Worker":
        """Latest snapshot of a worker at or before ``time``."""

    @abc.abstractmethod
    def final_worker(self, worker_id: str) -> "Worker": ...

    @abc.abstractmethod
    def final_workers(self) -> "dict[str, Worker]": ...


@dataclass(frozen=True)
class TouchedEntities:
    """Which entities a batch of events referenced.

    This is the invalidation currency of delta-aware audits: a checker
    that cached per-entity verdicts only re-sweeps entities named here.
    The sets are deliberately conservative supersets (an entity merely
    *mentioned* counts as touched) — over-invalidation costs a little
    recomputation, under-invalidation would cost correctness.
    """

    worker_ids: frozenset[str] = frozenset()
    task_ids: frozenset[str] = frozenset()
    requester_ids: frozenset[str] = frozenset()
    contribution_ids: frozenset[str] = frozenset()

    @property
    def total(self) -> int:
        return (
            len(self.worker_ids) + len(self.task_ids)
            + len(self.requester_ids) + len(self.contribution_ids)
        )


def collect_touched(events: "Iterable[Event]") -> TouchedEntities:
    """Summarise every entity referenced by ``events``."""
    from repro.core.events import (
        AssignmentMade,
        BonusPaid,
        BonusPromised,
        ContributionReviewed,
        ContributionSubmitted,
        DisclosureShown,
        MaliceFlagged,
        PaymentIssued,
        RequesterRegistered,
        TaskCancelled,
        TaskInterrupted,
        TaskPosted,
        TasksShown,
        TaskStarted,
        WorkerDeparted,
        WorkerRegistered,
        WorkerUpdated,
    )

    workers: set[str] = set()
    tasks: set[str] = set()
    requesters: set[str] = set()
    contributions: set[str] = set()
    for event in events:
        if isinstance(event, (WorkerRegistered, WorkerUpdated)):
            workers.add(event.worker.worker_id)
        elif isinstance(event, WorkerDeparted):
            workers.add(event.worker_id)
        elif isinstance(event, RequesterRegistered):
            requesters.add(event.requester.requester_id)
        elif isinstance(event, TaskPosted):
            tasks.add(event.task.task_id)
            requesters.add(event.task.requester_id)
        elif isinstance(event, TasksShown):
            workers.add(event.worker_id)
            tasks.update(event.task_ids)
        elif isinstance(event, (AssignmentMade, TaskStarted, TaskInterrupted)):
            workers.add(event.worker_id)
            tasks.add(event.task_id)
        elif isinstance(event, TaskCancelled):
            tasks.add(event.task_id)
        elif isinstance(event, ContributionSubmitted):
            contributions.add(event.contribution.contribution_id)
            tasks.add(event.contribution.task_id)
            workers.add(event.contribution.worker_id)
        elif isinstance(event, ContributionReviewed):
            contributions.add(event.contribution_id)
            tasks.add(event.task_id)
            workers.add(event.worker_id)
        elif isinstance(event, PaymentIssued):
            workers.add(event.worker_id)
            tasks.add(event.task_id)
            if event.contribution_id:
                contributions.add(event.contribution_id)
        elif isinstance(event, (BonusPromised, BonusPaid)):
            requesters.add(event.requester_id)
            workers.add(event.worker_id)
        elif isinstance(event, MaliceFlagged):
            workers.add(event.worker_id)
        elif isinstance(event, DisclosureShown):
            subject = event.subject
            if subject.startswith("requester:"):
                requesters.add(subject.split(":", 1)[1])
            elif subject.startswith("worker:"):
                workers.add(subject.split(":", 1)[1])
            if event.audience_worker_id:
                workers.add(event.audience_worker_id)
    return TouchedEntities(
        worker_ids=frozenset(workers),
        task_ids=frozenset(tasks),
        requester_ids=frozenset(requesters),
        contribution_ids=frozenset(contributions),
    )
