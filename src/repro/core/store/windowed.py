"""Bounded-memory backend for unbounded streams.

A platform that never stops producing events would grow the in-memory
store without bound.  :class:`WindowedTraceStore` retains only the
newest ``window`` events; what it keeps of the past:

* **Entity registries stay complete.**  Tasks, requesters, and
  contributions are bounded by entity count, not event count, and
  audits dangle without them, so they are never evicted.
* **Worker snapshot series are pruned**, keeping every snapshot inside
  the retained window plus the latest one before it — exactly what
  :meth:`worker_at` needs to answer for any retained event's time.

While nothing has been evicted the store is indistinguishable from the
in-memory backend (the differential suite proves audit equivalence at
every prefix).  After eviction, an audit over the store is
*fairness-over-the-recent-window*: every checker's event-derived
evidence (browse views, postings, disclosures, payments) is restricted
to the retained events, while entity lookups (task table, requester
table, worker snapshots) never dangle.  ``tests/core/test_trace_stores``
pins this down by reconstruction.  Reads addressed before the window
(``events_since`` with an evicted cursor) raise
:class:`~repro.errors.TraceError` instead of silently skipping a gap.

Eviction is amortised: the store lets the event list grow to twice the
window, then cuts it back in one batch, so ``append`` stays O(1)
amortised instead of paying a per-event list shift.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from typing import Iterable

from repro.core.events import Event
from repro.core.store.memory import InMemoryTraceStore
from repro.errors import TraceError


class WindowedTraceStore(InMemoryTraceStore):
    """Retains the newest ``window`` events; entity indexes complete."""

    backend_name = "windowed"

    def __init__(self, window: int = 10_000, events: Iterable[Event] = ()) -> None:
        if window < 1:
            raise TraceError(f"window must be >= 1 event, got {window}")
        self.window = window
        super().__init__(events)

    @property
    def retained(self) -> int:
        """How many events are currently readable (<= window + slack)."""
        return len(self._events)

    def append(self, event: Event) -> None:
        super().append(event)
        # Amortised batch eviction: grow to 2x window, cut back to window.
        if len(self._events) > 2 * self.window:
            self._evict(len(self._events) - self.window)

    def _evict(self, count: int) -> None:
        evicted = self._events[:count]
        del self._events[:count]
        self._offset += count
        per_kind = Counter(event.kind for event in evicted)
        for kind, dropped in per_kind.items():
            del self._by_kind[kind][:dropped]
        self._prune_worker_snapshots(self._events[0].time)

    def _prune_worker_snapshots(self, oldest_retained_time: int) -> None:
        """Drop snapshots no retained-time lookup can reach: everything
        before the latest snapshot at or before the window start."""
        for snapshots in self._worker_snapshots.values():
            index = bisect_left(
                snapshots, oldest_retained_time, key=lambda pair: pair[0]
            )
            if index > 1:
                del snapshots[: index - 1]
