"""Durable backend: JSONL segment files with write-through append.

A real platform's log should be captured once and re-audited forever.
:class:`PersistentTraceStore` keeps the same in-memory indexes as the
default backend (audits read identically) and additionally writes every
appended event through to disk, as one JSON object per line, in
fixed-size segment files::

    trace-dir/
        meta.json             {"format_version": 1, "segment_events": N}
        events-00000.jsonl
        events-00001.jsonl    # started once segment 0 held N events

Segments cap the blast radius of file corruption and keep individual
files tail-able; the event codec is the same one
:mod:`repro.core.serialize` uses for whole-trace JSON, so an adapter
for a real platform can emit either format.

Workflow::

    store = PersistentTraceStore.create(path)     # capture
    trace = PlatformTrace(store=store)            # ... run platform ...
    store.save()                                  # flush (appends are
                                                  # written through anyway)

    reopened = PersistentTraceStore.open(path)    # re-audit later
    AuditEngine().audit(PlatformTrace(store=reopened))
"""

from __future__ import annotations

import json
import os
import time
import warnings
from typing import IO, Iterable

from repro.core.events import Event
from repro.core.serialize import event_from_dict, event_to_dict
from repro.core.store.memory import InMemoryTraceStore
from repro.errors import TraceError

LOG_FORMAT_VERSION = 1
_META_NAME = "meta.json"
_SEGMENT_PREFIX = "events-"
_SEGMENT_SUFFIX = ".jsonl"


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:05d}{_SEGMENT_SUFFIX}"


class PersistentTraceStore(InMemoryTraceStore):
    """In-memory indexes + JSONL segments on disk."""

    backend_name = "persistent"

    def __init__(
        self,
        path: str | os.PathLike[str],
        segment_events: int = 4096,
        events: Iterable[Event] = (),
    ) -> None:
        """Open the log directory at ``path``, creating it if absent.

        Use :meth:`create`/:meth:`open` when existence should be an
        invariant rather than a branch.  ``segment_events`` applies to
        newly created logs; reopened logs keep the size they were
        created with.
        """
        if segment_events < 1:
            raise TraceError(
                f"segment_events must be >= 1, got {segment_events}"
            )
        self._path = os.fspath(path)
        self._segment_events = segment_events
        self._segment_index = 0
        self._segment_count = 0  # events in the open segment
        self._handle: IO[str] | None = None
        self._replaying = False
        meta_path = os.path.join(self._path, _META_NAME)
        existing = os.path.exists(meta_path)
        super().__init__(())
        if existing:
            self._load(meta_path)
        else:
            os.makedirs(self._path, exist_ok=True)
            with open(meta_path, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "format_version": LOG_FORMAT_VERSION,
                        "segment_events": self._segment_events,
                    },
                    handle,
                )
                handle.write("\n")
        for event in events:
            self.append(event)

    # ------------------------------------------------------------------
    # Explicit open/create entry points

    @classmethod
    def create(
        cls, path: str | os.PathLike[str], segment_events: int = 4096
    ) -> "PersistentTraceStore":
        """Start a fresh log; refuses to reuse an existing one."""
        if os.path.exists(os.path.join(os.fspath(path), _META_NAME)):
            raise TraceError(f"trace log already exists at {path!r}")
        return cls(path, segment_events=segment_events)

    @classmethod
    def open(cls, path: str | os.PathLike[str]) -> "PersistentTraceStore":
        """Reopen a previously captured log; refuses a missing one."""
        if not os.path.exists(os.path.join(os.fspath(path), _META_NAME)):
            raise TraceError(f"no trace log at {path!r}")
        return cls(path)

    @classmethod
    def verify(cls, path: str | os.PathLike[str]):
        """Deep, read-only integrity sweep over the log at ``path``.

        Unlike :meth:`open` — which silently repairs a crash-torn final
        line — this reads the raw segment bytes, validates every line
        through the event codec, reconciles segment sizes against
        ``meta.json``, and mutates nothing.  Returns a
        :class:`repro.forensics.VerifyResult`.
        """
        from repro.forensics import verify_persistent

        return verify_persistent(path)

    # ------------------------------------------------------------------
    # Write path

    def append(self, event: Event) -> None:
        super().append(event)
        if self._replaying:
            return
        if self._segment_count >= self._segment_events:
            self._roll_segment()
        if self._handle is None:
            self._handle = open(
                os.path.join(self._path, _segment_name(self._segment_index)),
                "a",
                encoding="utf-8",
            )
        json.dump(event_to_dict(event), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self._handle.flush()
        self._segment_count += 1

    def _roll_segment(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._segment_index += 1
        self._segment_count = 0

    def save(self) -> str:
        """Flush buffered writes; returns the log directory path.

        Appends are written through (and flushed) as they happen, so
        this is a convenience for symmetry with ``open`` — the log on
        disk is already complete after every ``append``.
        """
        from repro.telemetry.instruments import record_store_commit
        from repro.telemetry.registry import get_registry

        recording = get_registry().enabled
        started = time.perf_counter() if recording else 0.0
        if self._handle is not None:
            self._handle.flush()
        if recording:
            record_store_commit(
                self.backend_name, time.perf_counter() - started
            )
        return self._path

    def close(self) -> None:
        """Close the open segment handle.  Idempotent: double-close and
        ``__exit__``-after-``close`` are no-ops (same contract as every
        backend; appends are write-through, so there is nothing to
        commit or roll back here)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "PersistentTraceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def path(self) -> str:
        return self._path

    # ------------------------------------------------------------------
    # Read path

    def _load(self, meta_path: str) -> None:
        try:
            with open(meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise TraceError(
                f"unreadable trace log manifest {meta_path!r}: {error} "
                "(expected a JSON object with format_version and "
                "segment_events)"
            ) from None
        if not isinstance(meta, dict):
            raise TraceError(
                f"trace log manifest {meta_path!r} is not a JSON object "
                f"(got {type(meta).__name__}); expected "
                "{'format_version': ..., 'segment_events': ...}"
            )
        version = meta.get("format_version")
        if version != LOG_FORMAT_VERSION:
            raise TraceError(
                f"{meta_path!r} has unsupported trace log version "
                f"{version!r} (supported: {LOG_FORMAT_VERSION})"
            )
        self._segment_events = int(meta.get("segment_events", 4096))
        segments = sorted(
            name
            for name in os.listdir(self._path)
            if name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        )
        self._replaying = True
        try:
            for position, name in enumerate(segments):
                self._replay_segment(name, last=position == len(segments) - 1)
        finally:
            self._replaying = False
        if segments:
            self._segment_index = len(segments) - 1
            last = os.path.join(self._path, segments[-1])
            with open(last, encoding="utf-8") as handle:
                self._segment_count = sum(1 for line in handle if line.strip())
        # A reopened log continues appending to its last segment.

    def _replay_segment(self, name: str, last: bool) -> None:
        """Replay one segment file into the in-memory indexes.

        Appends are line-buffered, so a crash mid-append can leave the
        *final* segment with a trailing line that never got its
        newline.  Such an unterminated tail is recovered rather than
        fatal: if it parses it is kept (and its newline repaired so
        future appends start a fresh line), otherwise it is dropped
        with a warning and the file truncated to the complete prefix.
        A corrupt line anywhere else — mid-file, or cleanly
        newline-terminated — is still an error: that is damage, not a
        crashed append.
        """
        segment_path = os.path.join(self._path, name)
        with open(segment_path, "rb") as handle:
            content = handle.read()
        offset = 0
        for line_number, raw in enumerate(
            content.splitlines(keepends=True), start=1
        ):
            unterminated = not raw.endswith(b"\n")
            try:
                line = raw.decode("utf-8").strip()
                data = json.loads(line) if line else None
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                if last and unterminated:
                    warnings.warn(
                        f"trace log {name} ends in a truncated line "
                        f"(crash mid-append?); recovered the complete "
                        f"prefix of {line_number - 1} line(s) and "
                        f"dropped the tail",
                        RuntimeWarning,
                        stacklevel=4,
                    )
                    with open(segment_path, "ab") as repair:
                        repair.truncate(offset)
                    return
                raise TraceError(
                    f"corrupt trace log line "
                    f"{segment_path}:{line_number}: {error}"
                ) from None
            if data is not None:
                self.append(event_from_dict(data))
            if unterminated:
                # A parseable tail that lost only its newline: keep the
                # event, terminate the line so appends stay one-per-line.
                with open(segment_path, "ab") as repair:
                    repair.write(b"\n")
            offset += len(raw)
