"""Indexed on-disk backend: one SQLite ``.db`` file per trace.

The JSONL persistent backend answers *any* question by replaying the
whole log.  At production scale the common questions are scoped — "what
happened to worker w0042", "all payments in [t0, t1)", "how many
disclosures" — and should cost the size of the *answer*, not the size
of the log.  :class:`SQLiteTraceStore` keeps the same in-memory indexes
as the default backend (audits read identically, the full differential
suite applies) and additionally writes every appended event through to
a single SQLite database with secondary indexes::

    events(seq PRIMARY KEY, time, kind, payload)
        -- idx_events_kind  (kind, seq)
        -- idx_events_time  (time)
    event_entities(entity_id, entity_kind, seq)
        -- PRIMARY KEY (entity_id, entity_kind, seq)  ~  (entity_id, seq)
    meta(key PRIMARY KEY, value)

``event_entities`` is the inverted index behind entity-scoped queries:
one row per (event, touched entity) pair, derived from the same
:func:`~repro.core.store.base.collect_touched` summary the delta-audit
path uses.  :mod:`repro.query` executes :class:`~repro.query.TraceQuery`
filters as indexed SQL against these tables (the ``query_*`` methods
below), so an entity/kind/time-scoped question reads only its matching
rows — no log replay, no full scan.

Durability: appends are written inside batched transactions
(``commit_every`` events per commit, WAL journal) and committed on
:meth:`save`/:meth:`close`; readers on the store's own connection see
uncommitted appends immediately, so queries are always current.

Workflow parity with the persistent backend::

    store = SQLiteTraceStore.create(path)         # capture
    trace = PlatformTrace(store=store)            # ... run platform ...
    store.save()                                  # commit

    reopened = SQLiteTraceStore.open(path)        # re-audit later
    AuditEngine().audit(reopened)
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.core.events import Event
from repro.core.serialize import event_from_dict, event_to_dict
from repro.core.store.base import collect_touched
from repro.core.store.memory import InMemoryTraceStore
from repro.errors import QueryError, TraceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.api import TraceQuery

DB_FORMAT_VERSION = 1

#: SQLite database file magic (the first 16 header bytes).
SQLITE_MAGIC = b"SQLite format 3\x00"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    seq     INTEGER PRIMARY KEY,
    time    INTEGER NOT NULL,
    kind    TEXT    NOT NULL,
    payload TEXT    NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_events_kind ON events (kind, seq);
CREATE INDEX IF NOT EXISTS idx_events_time ON events (time);
CREATE TABLE IF NOT EXISTS event_entities (
    entity_id   TEXT    NOT NULL,
    entity_kind TEXT    NOT NULL,
    seq         INTEGER NOT NULL,
    PRIMARY KEY (entity_id, entity_kind, seq)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_entities_kind
    ON event_entities (entity_kind, entity_id, seq);
"""


def is_sqlite_trace(path: str | os.PathLike[str]) -> bool:
    """True when ``path`` is an existing SQLite database file."""
    path = os.fspath(path)
    if not os.path.isfile(path):
        return False
    try:
        with open(path, "rb") as handle:
            return handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except OSError:
        return False


class SQLiteTraceStore(InMemoryTraceStore):
    """In-memory indexes + a single indexed SQLite file on disk."""

    backend_name = "sqlite"
    supports_indexed_query = True

    def __init__(
        self,
        path: str | os.PathLike[str],
        events: Iterable[Event] = (),
        commit_every: int = 64,
    ) -> None:
        """Open (or create) the trace database at ``path``.

        Use :meth:`create`/:meth:`open` when existence should be an
        invariant rather than a branch.  ``commit_every`` bounds the
        crash-loss window: appends are grouped into transactions of at
        most that many events (1 = write-through commit per append).
        """
        if commit_every < 1:
            raise TraceError(
                f"commit_every must be >= 1, got {commit_every}"
            )
        self._db_path = os.fspath(path)
        self._commit_every = commit_every
        self._pending = 0
        self._replaying = False
        self._closed = False
        existing = os.path.exists(self._db_path)
        if existing and not is_sqlite_trace(self._db_path):
            raise TraceError(
                f"{self._db_path!r} exists but is not a SQLite database"
            )
        parent = os.path.dirname(self._db_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # check_same_thread=False: the connection may be used from a
        # thread other than the opener — the audit service handles each
        # HTTP request on its own thread and serializes all access to a
        # store behind its per-tenant lock.  Single-threaded callers
        # (CLI, ingest runners) are unaffected; concurrent callers must
        # bring their own serialization, as sqlite3 objects are not
        # themselves thread-safe.
        self._conn = sqlite3.connect(self._db_path, check_same_thread=False)
        try:
            if existing:
                # Validate before any PRAGMA or schema write: a foreign
                # (or damaged) SQLite file must be rejected untouched —
                # no journal-mode flip, no sidecar files, no tables.
                self._check_version()
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            super().__init__(())
            if existing:
                self._load()
            else:
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("format_version", str(DB_FORMAT_VERSION)),
                )
                self._conn.commit()
            for event in events:
                self.append(event)
        except sqlite3.DatabaseError as error:
            self._conn.close()
            raise TraceError(
                f"unreadable trace database {self._db_path!r}: {error}"
            ) from None
        except BaseException:
            self._conn.close()
            raise

    # ------------------------------------------------------------------
    # Explicit open/create entry points (parity with the persistent backend)

    @classmethod
    def create(
        cls, path: str | os.PathLike[str], commit_every: int = 64
    ) -> "SQLiteTraceStore":
        """Start a fresh database; refuses to reuse an existing one."""
        if os.path.exists(os.fspath(path)):
            raise TraceError(f"trace database already exists at {path!r}")
        return cls(path, commit_every=commit_every)

    @classmethod
    def open(cls, path: str | os.PathLike[str]) -> "SQLiteTraceStore":
        """Reopen a previously captured database; refuses a missing one."""
        if not os.path.exists(os.fspath(path)):
            raise TraceError(f"no trace database at {path!r}")
        return cls(path)

    @classmethod
    def verify(cls, path: str | os.PathLike[str]):
        """Deep, read-only integrity sweep over the database at ``path``.

        Strictly stronger than what :meth:`open` checks: page integrity,
        payload decodability, seq contiguity, time order, and both
        directions of the ``event_entities`` index cross-validation.
        Returns a :class:`repro.forensics.VerifyResult`; never mutates
        the file.
        """
        from repro.forensics import verify_sqlite

        return verify_sqlite(path)

    # ------------------------------------------------------------------
    # Write path

    def _sql_rows(
        self, seq: int, event: Event
    ) -> tuple[tuple[int, int, str, str], list[tuple[str, str, int]]]:
        """The ``events`` row and ``event_entities`` rows for one event."""
        payload = json.dumps(event_to_dict(event), separators=(",", ":"))
        touched = collect_touched((event,))
        entity_rows = [
            (entity_id, entity_kind, seq)
            for entity_kind, entity_ids in (
                ("worker", touched.worker_ids),
                ("task", touched.task_ids),
                ("requester", touched.requester_ids),
                ("contribution", touched.contribution_ids),
            )
            for entity_id in entity_ids
        ]
        return (seq, event.time, event.kind, payload), entity_rows

    def append(self, event: Event) -> None:
        seq = self.revision  # next global append position
        super().append(event)
        if self._replaying:
            return
        event_row, entity_rows = self._sql_rows(seq, event)
        self._conn.execute(
            "INSERT INTO events (seq, time, kind, payload) VALUES (?, ?, ?, ?)",
            event_row,
        )
        if entity_rows:
            self._conn.executemany(
                "INSERT OR IGNORE INTO event_entities "
                "(entity_id, entity_kind, seq) VALUES (?, ?, ?)",
                entity_rows,
            )
        self._pending += 1
        if self._pending >= self._commit_every:
            self._conn.commit()
            self._pending = 0

    def append_batch(self, events: Iterable[Event]) -> int:
        """Append many events as one transaction (``executemany`` for
        both tables + a single commit) instead of paying per-event
        statement and commit costs.  Used by ``save_trace`` and the
        ingest runner's batched write path.

        Events appended (validated + indexed in RAM) before a mid-batch
        failure are flushed to the database before the error propagates,
        so the on-disk log never diverges from the in-memory indexes.
        """
        if self._replaying:
            return super().append_batch(events)
        from repro.telemetry.instruments import (
            record_store_append,
            record_store_commit,
        )
        from repro.telemetry.registry import get_registry

        recording = get_registry().enabled
        started = time.perf_counter() if recording else 0.0
        event_rows: list[tuple[int, int, str, str]] = []
        entity_rows: list[tuple[str, str, int]] = []
        count = 0
        try:
            for event in events:
                seq = self.revision
                InMemoryTraceStore.append(self, event)
                event_row, entities = self._sql_rows(seq, event)
                event_rows.append(event_row)
                entity_rows.extend(entities)
                count += 1
        finally:
            if event_rows:
                self._conn.executemany(
                    "INSERT INTO events (seq, time, kind, payload) "
                    "VALUES (?, ?, ?, ?)",
                    event_rows,
                )
                if entity_rows:
                    self._conn.executemany(
                        "INSERT OR IGNORE INTO event_entities "
                        "(entity_id, entity_kind, seq) VALUES (?, ?, ?)",
                        entity_rows,
                    )
                commit_started = time.perf_counter() if recording else 0.0
                self._conn.commit()
                self._pending = 0
                if recording:
                    record_store_commit(
                        self.backend_name,
                        time.perf_counter() - commit_started,
                    )
        if recording:
            record_store_append(
                self.backend_name, count, time.perf_counter() - started
            )
        return count

    def save(self) -> str:
        """Commit buffered appends; returns the database file path."""
        from repro.telemetry.instruments import record_store_commit
        from repro.telemetry.registry import get_registry

        recording = get_registry().enabled
        started = time.perf_counter() if recording else 0.0
        self._conn.commit()
        self._pending = 0
        if recording:
            record_store_commit(
                self.backend_name, time.perf_counter() - started
            )
        return self._db_path

    def close(self) -> None:
        """Commit buffered appends and release the connection.

        Idempotent: a second ``close()`` — or ``__exit__`` after an
        explicit ``close()`` inside the ``with`` block — is a no-op
        rather than a ``sqlite3.ProgrammingError``.
        """
        self._shutdown(commit=True)

    def _shutdown(self, commit: bool) -> None:
        if self._closed:
            return
        self._closed = True
        if commit:
            self._conn.commit()
        else:
            self._conn.rollback()
        self._pending = 0
        self._conn.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SQLiteTraceStore":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        """Commit on clean exit; **roll back** buffered appends when the
        block raised.  Committing unconditionally would persist a
        partial prefix the caller believed abandoned (the in-memory
        store object is being discarded along with the exception; the
        database keeps only what was already committed — batch appends
        and ``save()`` calls that completed before the failure)."""
        self._shutdown(commit=exc_type is None)

    @property
    def path(self) -> str:
        return self._db_path

    # ------------------------------------------------------------------
    # Read path

    def _check_version(self) -> None:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'format_version'"
            ).fetchone()
        except sqlite3.DatabaseError as error:
            raise TraceError(
                f"{self._db_path!r} is not a trace database: {error}"
            ) from None
        version = None if row is None else row[0]
        if version != str(DB_FORMAT_VERSION):
            raise TraceError(
                f"{self._db_path!r} has unsupported trace database "
                f"version {version!r} (supported: {DB_FORMAT_VERSION})"
            )

    def _load(self) -> None:
        self._replaying = True
        try:
            for (payload,) in self._conn.execute(
                "SELECT payload FROM events ORDER BY seq"
            ):
                try:
                    data = json.loads(payload)
                except json.JSONDecodeError as error:
                    raise TraceError(
                        f"corrupt payload in trace database "
                        f"{self._db_path!r}: {error}"
                    ) from None
                self.append(event_from_dict(data))
        finally:
            self._replaying = False

    # ------------------------------------------------------------------
    # Indexed query execution (the repro.query backend hooks)
    #
    # These take a TraceQuery (duck-typed: this module never imports
    # repro.query, which imports the store package) and translate its
    # filters into one SQL statement over the indexed tables.  The
    # differential suite proves results identical to the generic
    # cursor-scan fallback on every other backend.

    def _compile(
        self, query: "TraceQuery", select: str
    ) -> tuple[str, list[Any]]:
        clauses: list[str] = []
        params: list[Any] = []
        sql = f"SELECT {select} FROM events e"
        if query.entity_ids:
            marks = ", ".join("?" for _ in query.entity_ids)
            entity_sql = (
                "SELECT DISTINCT seq FROM event_entities "
                f"WHERE entity_id IN ({marks})"
            )
            params.extend(query.entity_ids)
            if query.entity_kind is not None:
                entity_sql += " AND entity_kind = ?"
                params.append(query.entity_kind)
            sql += f" JOIN ({entity_sql}) m ON m.seq = e.seq"
        if query.kinds:
            marks = ", ".join("?" for _ in query.kinds)
            clauses.append(f"e.kind IN ({marks})")
            params.extend(query.kinds)
        for clause, value in (
            ("e.time >= ?", query.time_start),
            ("e.time < ?", query.time_end),
            ("e.seq >= ?", query.seq_start),
            ("e.seq < ?", query.seq_end),
        ):
            if value is not None:
                clauses.append(clause)
                params.append(value)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        return sql, params

    def query_events(self, query: "TraceQuery") -> "tuple[Event, ...]":
        """Matching events in append order, decoded from stored payloads."""
        sql, params = self._compile(query, "e.payload")
        sql += " ORDER BY e.seq"
        if query.limit is not None:
            sql += " LIMIT ?"
            params.append(query.limit)
        return tuple(
            event_from_dict(json.loads(payload))
            for (payload,) in self._conn.execute(sql, params)
        )

    def query_count(self, query: "TraceQuery") -> int:
        """``COUNT(*)`` of matching events (ignores any limit)."""
        sql, params = self._compile(query, "COUNT(*)")
        return int(self._conn.execute(sql, params).fetchone()[0])

    def query_kind_counts(self, query: "TraceQuery") -> dict[str, int]:
        """Histogram of matching events by kind, kind-sorted."""
        sql, params = self._compile(query, "e.kind, COUNT(*)")
        sql += " GROUP BY e.kind ORDER BY e.kind"
        return {
            kind: int(count)
            for kind, count in self._conn.execute(sql, params)
        }

    def query_entity_counts(self, entity_kind: str) -> dict[str, int]:
        """Events touching each entity of one kind (id-sorted)."""
        if entity_kind not in ("worker", "task", "requester", "contribution"):
            raise QueryError(f"unknown entity kind {entity_kind!r}")
        return {
            entity_id: int(count)
            for entity_id, count in self._conn.execute(
                "SELECT entity_id, COUNT(*) FROM event_entities "
                "WHERE entity_kind = ? GROUP BY entity_id ORDER BY entity_id",
                (entity_kind,),
            )
        }

    def iter_payloads(self) -> Iterator[dict[str, Any]]:
        """Raw event dicts in append order (tooling/inspection hook)."""
        for (payload,) in self._conn.execute(
            "SELECT payload FROM events ORDER BY seq"
        ):
            yield json.loads(payload)
