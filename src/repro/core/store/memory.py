"""The default backend: everything indexed in RAM, unbounded.

This is the seed ``PlatformTrace`` storage factored out behind the
:class:`~repro.core.store.base.TraceStore` protocol.  The windowed and
persistent backends subclass it: all three share one indexing
implementation, so an audit reads identical indexes whichever backend
holds the events.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import defaultdict
from typing import Iterable, Sequence

from repro.core.entities import Contribution, Requester, Task, Worker
from repro.core.events import (
    ContributionSubmitted,
    Event,
    RequesterRegistered,
    TaskPosted,
    WorkerRegistered,
    WorkerUpdated,
)
from repro.core.store.base import TraceStore
from repro.errors import TraceError, UnknownEntityError


class InMemoryTraceStore(TraceStore):
    """Append-only in-memory event log with entity indexes."""

    backend_name = "memory"

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._events: list[Event] = []
        #: Sequence number of self._events[0]; > 0 only after eviction.
        self._offset = 0
        self._end_time = 0
        self._by_kind: dict[str, list[Event]] = defaultdict(list)
        self._tasks: dict[str, Task] = {}
        self._requesters: dict[str, Requester] = {}
        # Per-worker time series of snapshots: (time, Worker), time-sorted.
        self._worker_snapshots: dict[str, list[tuple[int, Worker]]] = (
            defaultdict(list)
        )
        self._contributions: dict[str, Contribution] = {}
        for event in events:
            self.append(event)

    # ------------------------------------------------------------------
    # Construction

    def append(self, event: Event) -> None:
        self._validate(event)
        self._events.append(event)
        self._end_time = event.time
        self._by_kind[event.kind].append(event)
        self._index_entities(event)

    def _validate(self, event: Event) -> None:
        if self.revision and event.time < self._end_time:
            raise TraceError(
                f"event at t={event.time} appended after t={self._end_time}; "
                "traces must be time-ordered"
            )
        if isinstance(event, TaskPosted) and event.task.task_id in self._tasks:
            raise TraceError(f"task {event.task.task_id} posted twice")

    def _index_entities(self, event: Event) -> None:
        if isinstance(event, TaskPosted):
            self._tasks[event.task.task_id] = event.task
        elif isinstance(event, (WorkerRegistered, WorkerUpdated)):
            insort(
                self._worker_snapshots[event.worker.worker_id],
                (event.time, event.worker),
                key=lambda pair: pair[0],
            )
        elif isinstance(event, RequesterRegistered):
            self._requesters[event.requester.requester_id] = event.requester
        elif isinstance(event, ContributionSubmitted):
            self._contributions[event.contribution.contribution_id] = (
                event.contribution
            )

    # ------------------------------------------------------------------
    # Log access

    @property
    def revision(self) -> int:
        return self._offset + len(self._events)

    @property
    def first_retained(self) -> int:
        return self._offset

    @property
    def events(self) -> Sequence[Event]:
        return tuple(self._events)

    def events_since(self, n: int) -> tuple[Event, ...]:
        if n < 0:
            raise TraceError(f"cursor must be >= 0, got {n}")
        if n > self.revision:
            raise TraceError(
                f"cursor {n} is past the end of the trace "
                f"({self.revision} events); cursors never run ahead"
            )
        if n < self._offset:
            raise TraceError(
                f"events [{n}, {self._offset}) were evicted from this "
                f"{self.backend_name!r} store; cursors must stay within "
                "the retained window"
            )
        return tuple(self._events[n - self._offset:])

    @property
    def end_time(self) -> int:
        return self._end_time if self.revision else 0

    def of_kind(self, kind: str) -> Sequence[Event]:
        return self._by_kind.get(kind, [])

    # ------------------------------------------------------------------
    # Entity indexes

    @property
    def tasks(self) -> dict[str, Task]:
        return self._tasks

    @property
    def requesters(self) -> dict[str, Requester]:
        return self._requesters

    @property
    def contributions(self) -> dict[str, Contribution]:
        return self._contributions

    @property
    def worker_ids(self) -> tuple[str, ...]:
        return tuple(self._worker_snapshots.keys())

    def worker_at(self, worker_id: str, time: int) -> Worker:
        snapshots = self._worker_snapshots.get(worker_id)
        if not snapshots:
            raise UnknownEntityError(f"no worker {worker_id!r} in trace")
        index = bisect_right(snapshots, time, key=lambda pair: pair[0])
        if index == 0:
            raise UnknownEntityError(
                f"worker {worker_id!r} not yet registered at t={time}"
            )
        return snapshots[index - 1][1]

    def final_worker(self, worker_id: str) -> Worker:
        snapshots = self._worker_snapshots.get(worker_id)
        if not snapshots:
            raise UnknownEntityError(f"no worker {worker_id!r} in trace")
        return snapshots[-1][1]

    def final_workers(self) -> dict[str, Worker]:
        return {
            wid: snaps[-1][1] for wid, snaps in self._worker_snapshots.items()
        }
