"""Pluggable trace storage backends (see :mod:`repro.core.store.base`).

:func:`make_store` is the factory the platform layer and CLI use::

    make_store()                                  # in-memory (default)
    make_store("windowed", window=50_000)         # bounded memory
    make_store("persistent", path="runs/log")     # JSONL segments
    make_store("sqlite", path="runs/log.db")      # indexed SQLite file

:func:`open_store` reopens a saved log of either on-disk flavour,
detecting the format from what is at the path (a directory with a
``meta.json`` manifest is a JSONL segment log; a file with the SQLite
magic is a trace database).
"""

from __future__ import annotations

import os

from repro.core.store.base import TouchedEntities, TraceStore, collect_touched
from repro.core.store.memory import InMemoryTraceStore
from repro.core.store.persistent import PersistentTraceStore
from repro.core.store.sqlite import SQLiteTraceStore, is_sqlite_trace
from repro.core.store.windowed import WindowedTraceStore
from repro.errors import TraceError, UnknownBackendError

#: backend name -> store class, the registry behind ``make_store``.
STORE_BACKENDS: dict[str, type[TraceStore]] = {
    InMemoryTraceStore.backend_name: InMemoryTraceStore,
    WindowedTraceStore.backend_name: WindowedTraceStore,
    PersistentTraceStore.backend_name: PersistentTraceStore,
    SQLiteTraceStore.backend_name: SQLiteTraceStore,
}


def make_store(backend: str = "memory", **options: object) -> TraceStore:
    """Instantiate a trace store by backend name.

    Options are forwarded to the backend constructor (``window=`` for
    windowed, ``path=``/``segment_events=`` for persistent, ``path=``/
    ``commit_every=`` for sqlite).  An unknown name raises
    :class:`~repro.errors.UnknownBackendError` (a :class:`ValueError`)
    naming the available backends.
    """
    try:
        store_cls = STORE_BACKENDS[backend]
    except KeyError:
        attempted = options.get("path")
        where = "" if attempted is None else f" for path {str(attempted)!r}"
        raise UnknownBackendError(
            f"unknown trace backend {backend!r}{where}; "
            f"available backends: {', '.join(sorted(STORE_BACKENDS))}"
        ) from None
    return store_cls(**options)  # type: ignore[arg-type]


def open_store(path: str | os.PathLike[str]) -> TraceStore:
    """Reopen a saved trace log, detecting its on-disk format.

    A directory containing a ``meta.json`` manifest opens as a
    :class:`PersistentTraceStore`; a SQLite database file opens as a
    :class:`SQLiteTraceStore`.  Anything else raises
    :class:`~repro.errors.TraceError`.
    """
    fspath = os.fspath(path)
    if os.path.isdir(fspath):
        if not os.path.exists(os.path.join(fspath, "meta.json")):
            raise TraceError(
                f"directory {fspath!r} is not a trace log: it has no "
                "meta.json manifest (expected either a JSONL segment-log "
                "directory containing meta.json, or a SQLite trace "
                "database file)"
            )
        return PersistentTraceStore.open(fspath)
    if is_sqlite_trace(fspath):
        return SQLiteTraceStore.open(fspath)
    if os.path.isfile(fspath):
        raise TraceError(
            f"{fspath!r} is neither a JSONL segment log directory nor a "
            "SQLite trace database"
        )
    raise TraceError(f"no trace log at {fspath!r}")


__all__ = [
    "STORE_BACKENDS",
    "InMemoryTraceStore",
    "PersistentTraceStore",
    "SQLiteTraceStore",
    "TouchedEntities",
    "TraceStore",
    "WindowedTraceStore",
    "collect_touched",
    "is_sqlite_trace",
    "make_store",
    "open_store",
]
