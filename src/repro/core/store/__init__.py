"""Pluggable trace storage backends (see :mod:`repro.core.store.base`).

:func:`make_store` is the factory the platform layer and CLI use::

    make_store()                                  # in-memory (default)
    make_store("windowed", window=50_000)         # bounded memory
    make_store("persistent", path="runs/log")     # JSONL segments
"""

from __future__ import annotations

from repro.core.store.base import TouchedEntities, TraceStore, collect_touched
from repro.core.store.memory import InMemoryTraceStore
from repro.core.store.persistent import PersistentTraceStore
from repro.core.store.windowed import WindowedTraceStore
from repro.errors import TraceError

#: backend name -> store class, the registry behind ``make_store``.
STORE_BACKENDS: dict[str, type[TraceStore]] = {
    InMemoryTraceStore.backend_name: InMemoryTraceStore,
    WindowedTraceStore.backend_name: WindowedTraceStore,
    PersistentTraceStore.backend_name: PersistentTraceStore,
}


def make_store(backend: str = "memory", **options: object) -> TraceStore:
    """Instantiate a trace store by backend name.

    Options are forwarded to the backend constructor (``window=`` for
    windowed, ``path=``/``segment_events=`` for persistent).
    """
    try:
        store_cls = STORE_BACKENDS[backend]
    except KeyError:
        raise TraceError(
            f"unknown trace backend {backend!r}; "
            f"known: {sorted(STORE_BACKENDS)}"
        ) from None
    return store_cls(**options)  # type: ignore[arg-type]


__all__ = [
    "STORE_BACKENDS",
    "InMemoryTraceStore",
    "PersistentTraceStore",
    "TouchedEntities",
    "TraceStore",
    "WindowedTraceStore",
    "collect_touched",
    "make_store",
]
