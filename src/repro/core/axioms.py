"""Axiom framework: base class, check results, and the registry.

Each of the paper's seven axioms is a subclass of :class:`Axiom`: a
checker that scans a :class:`~repro.core.trace.PlatformTrace` and
returns the violations it finds together with the number of
*opportunities* it examined (pairs compared, events inspected), so a
fairness score ``1 - violations / opportunities`` is well-defined.

The registry assembles the default instantiation of all seven checkers;
experiments that need different similarity thresholds build their own
instances.

Streaming audits use a second, incremental protocol: every axiom can
produce an :class:`IncrementalChecker` via :meth:`Axiom.incremental`.
An incremental checker consumes one event at a time (``observe``) and
can materialise its current verdict at any point (``snapshot``); the
contract, enforced by the differential property suite, is that after
observing the first ``N`` events of a trace, ``snapshot()`` equals the
batch ``check`` of that ``N``-event prefix.  Axioms that do not provide
a specialised implementation fall back to :class:`ReplayChecker`, which
buffers events and reruns the batch checker — always correct, never
faster.

*Delta-aware batch audits* are a third protocol, used by
:class:`~repro.core.audit.DeltaAuditEngine` for repeated batch audits
of one growing trace.  An axiom opts in by setting
:attr:`Axiom.supports_delta`; its :meth:`Axiom.delta_checker` then
returns a :class:`DeltaChecker` that is handed, per audit, a
:class:`TraceDelta` — the events appended since the previous audit
plus the :class:`~repro.core.store.TouchedEntities` they referenced —
and re-sweeps only what the delta invalidates.  The default
``delta_checker`` adapts the axiom's incremental checker
(:class:`IncrementalDeltaChecker`); Axioms 2, 6, and 7 override it
with touched-entity implementations that cache per-entity verdicts.
The contract is the same exact batch equivalence, enforced by the same
differential suite.
"""

from __future__ import annotations

import abc
import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence, TypeVar

from repro.core.events import Event
from repro.core.store import TouchedEntities
from repro.core.trace import PlatformTrace
from repro.core.violations import Violation
from repro.errors import AuditError

T = TypeVar("T")


@dataclass(frozen=True)
class TraceDelta:
    """What changed in a trace between two audits of it.

    ``new_events`` is the slice ``[from_revision, to_revision)`` of the
    trace's append sequence; ``touched`` summarises every entity those
    events referenced (the invalidation set for cached per-entity
    verdicts).
    """

    from_revision: int
    to_revision: int
    new_events: tuple[Event, ...]
    touched: TouchedEntities

    @property
    def event_count(self) -> int:
        return len(self.new_events)


@dataclass(frozen=True)
class AxiomCheck:
    """The outcome of running one axiom checker over one trace."""

    axiom_id: int
    title: str
    violations: tuple[Violation, ...]
    opportunities: int

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    @property
    def score(self) -> float:
        """Fairness score in [0, 1]; 1.0 means no violations.

        A check with zero opportunities is vacuously satisfied.
        """
        if self.opportunities <= 0:
            return 1.0
        return max(0.0, 1.0 - len(self.violations) / self.opportunities)

    @property
    def passed(self) -> bool:
        return not self.violations


class Axiom(abc.ABC):
    """An executable fairness or transparency axiom."""

    #: The paper's axiom number (1-7).
    axiom_id: int = 0
    #: The paper's axiom title.
    title: str = ""
    #: Opt-in hook for delta-aware batch audits: when True, the
    #: :class:`~repro.core.audit.DeltaAuditEngine` drives this axiom
    #: through :meth:`delta_checker` instead of re-running ``check``
    #: over the whole trace at every audit.  Custom axioms keep the
    #: default (False) and get exact full re-checks.
    supports_delta: bool = False

    @abc.abstractmethod
    def check(self, trace: PlatformTrace) -> AxiomCheck:
        """Scan the trace; return violations and opportunity count."""

    def incremental(self) -> "IncrementalChecker":
        """A fresh incremental checker equivalent to batch ``check``.

        The default replays buffered events through ``check``; the
        seven concrete axioms override this with true incremental
        implementations whose per-snapshot cost does not grow with the
        number of already-observed events.
        """
        return ReplayChecker(self)

    def delta_checker(self) -> "DeltaChecker | None":
        """A fresh delta-aware checker, or ``None`` when not supported.

        The default (for axioms that set :attr:`supports_delta`) adapts
        the incremental checker: every audit feeds it only the events
        appended since the last one.  Axioms whose batch check is an
        entity sweep override this with a :class:`DeltaChecker` that
        caches per-entity verdicts and re-sweeps only the entities the
        delta touched.
        """
        if not self.supports_delta:
            return None
        return IncrementalDeltaChecker(self.incremental())

    def _result(
        self, violations: Sequence[Violation], opportunities: int
    ) -> AxiomCheck:
        return AxiomCheck(
            axiom_id=self.axiom_id,
            title=self.title,
            violations=tuple(violations),
            opportunities=opportunities,
        )


class IncrementalChecker(abc.ABC):
    """One axiom's streaming counterpart.

    Feed events in trace order through :meth:`observe`; at any point,
    :meth:`snapshot` returns the :class:`AxiomCheck` the batch checker
    would produce for the prefix observed so far.  Incremental checkers
    assume the :class:`~repro.core.trace.PlatformTrace` well-formedness
    invariants: events arrive in non-decreasing time order, and
    entity-bearing events (task posted, worker/requester registered)
    precede events that reference those entities — exactly what
    platform-produced traces guarantee.
    """

    def __init__(self, axiom: Axiom) -> None:
        self.axiom = axiom

    @abc.abstractmethod
    def observe(self, event: Event) -> None:
        """Consume the next event of the stream."""

    @abc.abstractmethod
    def snapshot(self) -> AxiomCheck:
        """The batch-equivalent verdict over all observed events."""


class DeltaChecker(abc.ABC):
    """One axiom's delta-aware batch counterpart.

    A :class:`~repro.core.audit.DeltaAuditEngine` calls :meth:`apply`
    once per audit with the :class:`TraceDelta` since the previous
    audit, then :meth:`result` for the verdict.  The contract mirrors
    the incremental one: after applying deltas covering the first ``N``
    events, ``result()`` equals the batch ``check`` of that ``N``-event
    prefix — violations, order, and opportunity counts included.
    Implementations exploit the delta's touched-entity sets to re-sweep
    only invalidated cached verdicts.
    """

    @abc.abstractmethod
    def apply(self, trace: PlatformTrace, delta: TraceDelta) -> None:
        """Fold the events appended since the previous audit."""

    @abc.abstractmethod
    def result(self) -> AxiomCheck:
        """The batch-equivalent verdict over all applied events."""


class IncrementalDeltaChecker(DeltaChecker):
    """Adapts an :class:`IncrementalChecker` to the delta protocol.

    The right choice for axioms whose incremental checker is already
    cheap per snapshot (Axioms 1, 3, 4, 5): each audit feeds it only
    the delta's new events and snapshots.  Exactness is inherited from
    the incremental contract.
    """

    def __init__(self, checker: IncrementalChecker) -> None:
        self._checker = checker

    def apply(self, trace: PlatformTrace, delta: TraceDelta) -> None:
        for event in delta.new_events:
            self._checker.observe(event)

    def result(self) -> AxiomCheck:
        return self._checker.snapshot()


class ReplayChecker(IncrementalChecker):
    """Fallback incremental checker: buffer events, rerun batch check.

    Correct for any axiom (it *is* the batch checker), with
    per-snapshot cost linear in the observed prefix — the behaviour
    streaming audits exist to avoid, kept as the compatibility path for
    custom axioms that have no incremental implementation.
    """

    def __init__(self, axiom: Axiom) -> None:
        super().__init__(axiom)
        self._trace = PlatformTrace()

    def observe(self, event: Event) -> None:
        self._trace.append(event)

    def snapshot(self) -> AxiomCheck:
        return self.axiom.check(self._trace)


def sampled_pairs(
    items: Sequence[T], max_pairs: int | None, seed: int = 0
) -> Iterator[tuple[T, T]]:
    """All unordered pairs, or a deterministic sample of ``max_pairs``.

    Pairwise axiom checks are quadratic; sampling keeps audits of large
    traces tractable while staying reproducible.
    """
    total = len(items) * (len(items) - 1) // 2
    if max_pairs is None or total <= max_pairs:
        yield from itertools.combinations(items, 2)
        return
    rng = random.Random(seed)
    seen: set[tuple[int, int]] = set()
    n = len(items)
    while len(seen) < max_pairs:
        i = rng.randrange(n)
        j = rng.randrange(n)
        if i == j:
            continue
        key = (min(i, j), max(i, j))
        if key in seen:
            continue
        seen.add(key)
        yield items[key[0]], items[key[1]]


@dataclass
class AxiomRegistry:
    """An ordered collection of axiom checkers forming one audit suite."""

    axioms: list[Axiom] = field(default_factory=list)

    def register(self, axiom: Axiom) -> "AxiomRegistry":
        if any(a.axiom_id == axiom.axiom_id for a in self.axioms):
            raise AuditError(f"axiom {axiom.axiom_id} registered twice")
        self.axioms.append(axiom)
        return self

    def get(self, axiom_id: int) -> Axiom:
        for axiom in self.axioms:
            if axiom.axiom_id == axiom_id:
                return axiom
        raise AuditError(f"no axiom {axiom_id} in registry")

    def __iter__(self) -> Iterator[Axiom]:
        return iter(sorted(self.axioms, key=lambda a: a.axiom_id))

    def __len__(self) -> int:
        return len(self.axioms)

    def check_all(self, trace: PlatformTrace) -> list[AxiomCheck]:
        return [axiom.check(trace) for axiom in self]


def default_registry(**overrides: Axiom) -> AxiomRegistry:
    """The standard suite: all seven axioms with default thresholds.

    Keyword overrides replace individual axioms by name:
    ``default_registry(axiom1=WorkerFairnessInAssignment(...))``.
    """
    from repro.core.axiom_assignment import (
        RequesterFairnessInAssignment,
        WorkerFairnessInAssignment,
    )
    from repro.core.axiom_compensation import FairCompensation
    from repro.core.axiom_completion import (
        RequesterFairnessInCompletion,
        WorkerFairnessInCompletion,
    )
    from repro.core.axiom_transparency import PlatformTransparency, RequesterTransparency

    defaults: dict[str, Axiom] = {
        "axiom1": WorkerFairnessInAssignment(),
        "axiom2": RequesterFairnessInAssignment(),
        "axiom3": FairCompensation(),
        "axiom4": RequesterFairnessInCompletion(),
        "axiom5": WorkerFairnessInCompletion(),
        "axiom6": RequesterTransparency(),
        "axiom7": PlatformTransparency(),
    }
    unknown = set(overrides) - set(defaults)
    if unknown:
        raise AuditError(f"unknown axiom overrides: {sorted(unknown)}")
    defaults.update(overrides)
    registry = AxiomRegistry()
    for key in sorted(defaults):
        registry.register(defaults[key])
    return registry
