"""Core data model, event trace, and fairness-axiom framework.

This package implements the paper's primary contribution:

* the Section 3.2 data model — tasks ``(id_t, id_r, S_t, d_t)`` and
  workers ``(id_w, A_w, C_w, S_w)`` over a shared skill vocabulary
  (:mod:`repro.core.entities`, :mod:`repro.core.attributes`);
* an append-only platform event trace, the auditable substrate
  (:mod:`repro.core.events`, :mod:`repro.core.trace`);
* Axioms 1-7 as executable checkers producing violations with witnesses
  (:mod:`repro.core.axioms` and the ``axiom_*`` modules);
* the audit engine that scores a platform trace against every axiom
  (:mod:`repro.core.audit`).
"""

from repro.core.attributes import ComputedAttributes, DeclaredAttributes
from repro.core.audit import (
    AuditEngine,
    AuditReport,
    AxiomResult,
    DeltaAuditEngine,
    StreamingAuditEngine,
)
from repro.core.axioms import (
    Axiom,
    AxiomCheck,
    AxiomRegistry,
    DeltaChecker,
    IncrementalChecker,
    IncrementalDeltaChecker,
    ReplayChecker,
    TraceDelta,
    default_registry,
)
from repro.core.entities import (
    Contribution,
    Requester,
    SkillVector,
    SkillVocabulary,
    Task,
    Worker,
)
from repro.core.store import (
    InMemoryTraceStore,
    PersistentTraceStore,
    TouchedEntities,
    TraceStore,
    WindowedTraceStore,
    make_store,
)
from repro.core.trace import PlatformTrace, TraceCursor, as_trace
from repro.core.violations import Violation, ViolationSeverity

__all__ = [
    "Axiom",
    "AxiomCheck",
    "AxiomRegistry",
    "AuditEngine",
    "AuditReport",
    "AxiomResult",
    "ComputedAttributes",
    "Contribution",
    "DeclaredAttributes",
    "DeltaAuditEngine",
    "DeltaChecker",
    "IncrementalChecker",
    "IncrementalDeltaChecker",
    "InMemoryTraceStore",
    "PersistentTraceStore",
    "PlatformTrace",
    "ReplayChecker",
    "Requester",
    "SkillVector",
    "SkillVocabulary",
    "StreamingAuditEngine",
    "Task",
    "TouchedEntities",
    "TraceCursor",
    "TraceDelta",
    "TraceStore",
    "Violation",
    "ViolationSeverity",
    "WindowedTraceStore",
    "Worker",
    "as_trace",
    "default_registry",
    "make_store",
]
