"""The audit engine: run an axiom suite over a trace, produce a report.

Section 3.3.1: "we intend to develop fairness check benchmarks and
algorithms for existing crowdsourcing systems."  The
:class:`AuditEngine` is that algorithm: given a trace and a registry of
axiom checkers it produces an :class:`AuditReport` with per-axiom
scores, violation lists, and an overall fairness summary suitable for
comparison across platforms.

For a *live* platform, re-running the batch engine after every event
costs O(trace) per audit and O(trace²) over a run.  The
:class:`StreamingAuditEngine` instead feeds each event once into the
axioms' incremental checkers (:meth:`~repro.core.axioms.Axiom.incremental`)
and materialises a report on demand; its contract — enforced by the
differential property suite — is that ``snapshot()`` after observing
``N`` events equals ``AuditEngine.audit`` of that ``N``-event prefix.
Attach it to a :class:`~repro.core.trace.PlatformTrace` with
:meth:`StreamingAuditEngine.attach` (uses the trace's subscription API)
or drive it manually with :meth:`StreamingAuditEngine.observe`.

For repeated *batch* audits of one growing (possibly store-backed)
trace, :class:`DeltaAuditEngine` (or ``AuditEngine.delta_session()``)
is the delta-aware middle ground: each audit pulls only the events
appended since the previous one via the store's revision cursor, and
axioms that opt in re-sweep only the entities those events touched —
same exact batch verdicts, near-linear total cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.core.axioms import (
    AxiomCheck,
    AxiomRegistry,
    DeltaChecker,
    IncrementalChecker,
    TraceDelta,
    default_registry,
)
from repro.core.events import Event
from repro.core.store import TraceStore, collect_touched
from repro.core.trace import PlatformTrace, as_trace
from repro.core.violations import Violation, ViolationSeverity
from repro.errors import AuditError

#: Alias kept for the public API: an AxiomResult is the checked outcome.
AxiomResult = AxiomCheck


@dataclass(frozen=True)
class AuditReport:
    """The outcome of auditing one trace against an axiom suite."""

    results: tuple[AxiomCheck, ...]
    trace_length: int

    def result_for(self, axiom_id: int) -> AxiomCheck:
        for result in self.results:
            if result.axiom_id == axiom_id:
                return result
        known = sorted(result.axiom_id for result in self.results)
        raise AuditError(
            f"report has no result for axiom {axiom_id}; "
            f"available axioms: {known if known else 'none (empty report)'}"
        )

    @property
    def violations(self) -> tuple[Violation, ...]:
        return tuple(v for result in self.results for v in result.violations)

    @property
    def total_violations(self) -> int:
        return sum(result.violation_count for result in self.results)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def scores(self) -> dict[int, float]:
        """Per-axiom fairness scores in [0, 1]."""
        return {result.axiom_id: result.score for result in self.results}

    @property
    def overall_score(self) -> float:
        """Unweighted mean of per-axiom scores (1.0 = fully compliant)."""
        if not self.results:
            return 1.0
        return sum(result.score for result in self.results) / len(self.results)

    def critical_violations(self) -> tuple[Violation, ...]:
        return tuple(
            v for v in self.violations if v.severity is ViolationSeverity.CRITICAL
        )

    def violations_by_type(self) -> dict[str, int]:
        """Histogram over the ``witness['type']`` tags of violations."""
        histogram: dict[str, int] = {}
        for violation in self.violations:
            tag = str(violation.witness.get("type", "untyped"))
            histogram[tag] = histogram.get(tag, 0) + 1
        return histogram

    def summary_lines(self) -> list[str]:
        """Human-readable per-axiom summary."""
        lines = [
            f"audit over {self.trace_length} events: overall score "
            f"{self.overall_score:.3f} "
            f"({'PASS' if self.passed else 'FAIL'})"
        ]
        for result in self.results:
            lines.append(
                f"  axiom {result.axiom_id} ({result.title}): "
                f"score {result.score:.3f}, "
                f"{result.violation_count} violation(s) / "
                f"{result.opportunities} opportunities"
            )
        return lines


@dataclass
class AuditEngine:
    """Runs a registry of axiom checkers over platform traces.

    Every entry point accepts a :class:`PlatformTrace` or a bare
    :class:`~repro.core.store.TraceStore` (any backend), so stored or
    reopened logs audit without rebuilding a facade by hand.
    """

    registry: AxiomRegistry = field(default_factory=default_registry)

    def audit(self, trace: "PlatformTrace | TraceStore") -> AuditReport:
        from repro.telemetry.instruments import record_audit
        from repro.telemetry.registry import get_registry

        trace = as_trace(trace)
        recording = get_registry().enabled
        started = time.perf_counter() if recording else 0.0
        results = tuple(self.registry.check_all(trace))
        report = AuditReport(results=results, trace_length=len(trace))
        if recording:
            # A batch audit examines the whole retained trace each time.
            record_audit(
                "batch", report.trace_length, report.total_violations,
                time.perf_counter() - started,
            )
        return report

    def audit_axioms(
        self, trace: "PlatformTrace | TraceStore", axiom_ids: Iterable[int]
    ) -> AuditReport:
        """Audit only the named axioms (cheaper for targeted checks)."""
        trace = as_trace(trace)
        wanted = set(axiom_ids)
        unknown = wanted - {axiom.axiom_id for axiom in self.registry}
        if unknown:
            raise AuditError(f"registry lacks axioms: {sorted(unknown)}")
        results = tuple(
            axiom.check(trace)
            for axiom in self.registry
            if axiom.axiom_id in wanted
        )
        return AuditReport(results=results, trace_length=len(trace))

    def compare(
        self, traces: "Mapping[str, PlatformTrace | TraceStore]"
    ) -> dict[str, AuditReport]:
        """Audit several traces (e.g. platforms) with the same suite."""
        return {name: self.audit(trace) for name, trace in traces.items()}

    def windowed_audit(
        self, trace: "PlatformTrace | TraceStore", window: int
    ) -> list[tuple[int, AuditReport]]:
        """Audit the trace in consecutive time windows of ``window`` ticks.

        Returns ``(window_start, report)`` pairs covering
        ``[0, end_time]`` — the fairness-over-time series a platform
        operator would monitor.  Entity registrations before a window
        are visible inside it (see :meth:`PlatformTrace.slice`), so
        lookups never dangle.  An evicting backend contributes its
        retained suffix only.
        """
        trace = as_trace(trace)
        if window < 1:
            raise AuditError("window must be >= 1 tick")
        reports: list[tuple[int, AuditReport]] = []
        end = trace.end_time
        start = 0
        while start <= end:
            chunk = trace.slice(start, start + window)
            reports.append((start, self.audit(chunk)))
            start += window
        return reports

    def delta_session(self) -> "DeltaAuditEngine":
        """A delta-aware audit session over one growing trace.

        Repeated ``audit`` calls on the session pay per *new* event
        (plus touched-entity re-sweeps) instead of per event of the
        whole trace — see :class:`DeltaAuditEngine`.
        """
        return DeltaAuditEngine(registry=self.registry)


class DeltaAuditEngine:
    """Repeated batch audits of one growing trace, paid per delta.

    The batch :class:`AuditEngine` rescans the whole trace every time;
    over a run that audits after every round, total work is
    O(trace²).  A delta session instead records, at each audit, the
    trace's store revision and the set of entities touched since the
    previous audit (:class:`~repro.core.axioms.TraceDelta`); axioms
    that opt in via :attr:`~repro.core.axioms.Axiom.supports_delta`
    re-sweep only the touched entities (Axioms 2, 6, 7) or fold the new
    events into incremental state (Axioms 1, 3, 4, 5).  Axioms that do
    not opt in are re-checked in full against the live trace — always
    exact, never faster.

    The contract, enforced by the differential property suite, is that
    every ``audit`` equals ``AuditEngine.audit`` of the same trace at
    the same revision.  A session is bound to the first trace it
    audits; auditing a different trace raises (deltas would be
    meaningless across streams).
    """

    def __init__(self, registry: AxiomRegistry | None = None) -> None:
        self.registry = registry if registry is not None else default_registry()
        self._checkers: dict[int, DeltaChecker | None] = {}
        self._revision = 0
        self._trace: PlatformTrace | None = None
        #: The delta consumed by the most recent ``audit`` (observability).
        self.last_delta: TraceDelta | None = None

    @property
    def revision(self) -> int:
        """The store revision as of the last audit."""
        return self._revision

    def audit(self, trace: "PlatformTrace | TraceStore") -> AuditReport:
        """Audit the trace; equals a full batch audit at this revision."""
        from repro.telemetry.instruments import record_audit
        from repro.telemetry.registry import get_registry

        recording = get_registry().enabled
        started = time.perf_counter() if recording else 0.0
        trace = as_trace(trace)
        if self._trace is None:
            self._trace = trace
        elif self._trace.store is not trace.store:
            raise AuditError(
                "delta audit session is bound to one trace; "
                "start a new session for a different trace"
            )
        new_events = trace.events_since(self._revision)
        delta = TraceDelta(
            from_revision=self._revision,
            to_revision=trace.revision,
            new_events=new_events,
            touched=collect_touched(new_events),
        )
        self._revision = delta.to_revision
        results = []
        for axiom in self.registry:
            if axiom.axiom_id not in self._checkers:
                self._checkers[axiom.axiom_id] = (
                    axiom.delta_checker() if axiom.supports_delta else None
                )
            checker = self._checkers[axiom.axiom_id]
            if checker is None:
                results.append(axiom.check(trace))
            else:
                checker.apply(trace, delta)
                results.append(checker.result())
        self.last_delta = delta
        report = AuditReport(results=tuple(results), trace_length=len(trace))
        if recording:
            record_audit(
                "delta", len(delta.new_events), report.total_violations,
                time.perf_counter() - started,
            )
        return report


class StreamingAuditEngine:
    """Audits a growing trace incrementally, one event at a time.

    Feed events with :meth:`observe` (or let :meth:`attach` subscribe to
    a live :class:`~repro.core.trace.PlatformTrace`); call
    :meth:`snapshot` whenever a verdict is needed.  After ``N`` observed
    events the snapshot equals ``AuditEngine(registry).audit`` of the
    same ``N``-event prefix, but the cost of keeping the verdict fresh
    is paid per *new* event rather than per audit of the whole trace —
    repeated audits of a busy platform go from O(trace) each to
    O(new events) total plus a small per-snapshot sweep.
    """

    def __init__(self, registry: AxiomRegistry | None = None) -> None:
        self.registry = registry if registry is not None else default_registry()
        self._checkers: list[IncrementalChecker] = [
            axiom.incremental() for axiom in self.registry
        ]
        self._observed = 0
        self._detach: Callable[[], None] | None = None

    @property
    def observed_events(self) -> int:
        """How many events this engine has consumed."""
        return self._observed

    def observe(self, event: Event) -> None:
        """Feed one event to every incremental checker."""
        for checker in self._checkers:
            checker.observe(event)
        self._observed += 1

    def observe_all(self, events: Iterable[Event]) -> None:
        for event in events:
            self.observe(event)

    def snapshot(self) -> AuditReport:
        """The report a batch audit of the observed prefix would produce."""
        results = tuple(checker.snapshot() for checker in self._checkers)
        return AuditReport(results=results, trace_length=self._observed)

    def attach(self, trace: PlatformTrace) -> "StreamingAuditEngine":
        """Subscribe to a live trace: catch up on its existing events,
        then observe every future append as it happens.

        An engine audits one stream; attaching twice (or after manual
        ``observe`` calls interleaved with another trace) would mix
        streams, so a second attach raises.  Returns ``self`` for
        chaining: ``engine = StreamingAuditEngine().attach(trace)``.
        """
        if self._detach is not None:
            raise AuditError("engine is already attached to a trace")
        self.observe_all(trace.events_since(0))
        self._detach = trace.subscribe(self.observe)
        return self

    def detach(self) -> None:
        """Stop observing the attached trace (no-op when not attached)."""
        if self._detach is not None:
            self._detach()
            self._detach = None
