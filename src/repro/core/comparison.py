"""Cross-platform audit comparison.

The paper motivates "checking fairness and transparency in existing
crowdsourcing systems" and comparing choices across platforms.  Given
several audited traces (one per platform), :func:`comparison_table`
lays the per-axiom scores side by side and ranks the platforms — the
league table a watchdog would publish.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.audit import AuditReport
from repro.errors import AuditError
from repro.experiments.tables import Table

_SHORT_TITLES = {
    1: "worker-assign",
    2: "requester-assign",
    3: "compensation",
    4: "malice-detect",
    5: "no-interrupt",
    6: "requester-transp",
    7: "platform-transp",
}


def comparison_table(reports: Mapping[str, AuditReport]) -> Table:
    """Per-axiom scores side by side, best overall platform first."""
    if not reports:
        raise AuditError("nothing to compare: no reports given")
    axiom_ids = sorted(
        {result.axiom_id for report in reports.values()
         for result in report.results}
    )
    for name, report in reports.items():
        have = {result.axiom_id for result in report.results}
        if set(axiom_ids) - have:
            raise AuditError(
                f"report {name!r} lacks axioms "
                f"{sorted(set(axiom_ids) - have)}; compare like with like"
            )
    columns = ("platform",) + tuple(
        _SHORT_TITLES.get(a, f"axiom{a}") for a in axiom_ids
    ) + ("overall", "violations")
    table = Table(
        title=f"Fairness/transparency comparison of {len(reports)} platforms",
        columns=columns,
    )
    ranked = sorted(
        reports.items(), key=lambda item: -item[1].overall_score
    )
    for name, report in ranked:
        scores = report.scores()
        table.add_row(
            name,
            *(scores[a] for a in axiom_ids),
            report.overall_score,
            report.total_violations,
        )
    return table


def best_platform(reports: Mapping[str, AuditReport]) -> str:
    """The platform with the highest overall score (ties: name order)."""
    if not reports:
        raise AuditError("nothing to compare: no reports given")
    return min(
        reports, key=lambda name: (-reports[name].overall_score, name)
    )
