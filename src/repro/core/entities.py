"""Entities of the crowdsourcing data model (paper Section 3.2).

The paper defines:

* a set of skill keywords ``S = {s_1, ..., s_m}``;
* a task ``t = (id_t, id_r, S_t, d_t)`` where ``S_t`` is a Boolean
  vector over ``S`` marking required skills and ``d_t`` is the reward;
* a worker ``w = (id_w, A_w, C_w, S_w)`` where ``A_w`` are self-declared
  attributes (demographics, location), ``C_w`` are platform-computed
  attributes (acceptance ratio, performance), and ``S_w`` is a Boolean
  skill/interest vector.

We add a :class:`Requester` entity (the paper refers to requesters only
through ``id_r``) and a :class:`Contribution` entity representing a
worker's submitted answer, which Axiom 3 compares across workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.attributes import ComputedAttributes, DeclaredAttributes
from repro.errors import EntityError, VocabularyMismatchError


@dataclass(frozen=True)
class SkillVocabulary:
    """An ordered, immutable set of skill keywords ``S = {s_1..s_m}``.

    The vocabulary fixes the dimension and meaning of every
    :class:`SkillVector` built against it.  Keywords may be interpreted
    as qualifications ("translation") or interests ("sports"), per the
    paper.
    """

    keywords: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.keywords)) != len(self.keywords):
            raise EntityError("skill vocabulary contains duplicate keywords")
        if any(not k or not isinstance(k, str) for k in self.keywords):
            raise EntityError("skill keywords must be non-empty strings")

    def __len__(self) -> int:
        return len(self.keywords)

    def __iter__(self) -> Iterator[str]:
        return iter(self.keywords)

    def __contains__(self, keyword: object) -> bool:
        return keyword in self.keywords

    def index(self, keyword: str) -> int:
        """Return the position of ``keyword``; raise if absent."""
        try:
            return self.keywords.index(keyword)
        except ValueError:
            raise EntityError(f"unknown skill keyword: {keyword!r}") from None

    def vector(self, present: Iterable[str] = ()) -> "SkillVector":
        """Build a :class:`SkillVector` with the given keywords set."""
        return SkillVector.from_keywords(self, present)

    def full_vector(self) -> "SkillVector":
        """Build a vector with every skill set (a universally skilled worker)."""
        return SkillVector(self, tuple(True for _ in self.keywords))

    @classmethod
    def from_keywords(cls, keywords: Iterable[str]) -> "SkillVocabulary":
        return cls(tuple(keywords))


@dataclass(frozen=True)
class SkillVector:
    """A Boolean vector over a :class:`SkillVocabulary`.

    Used both as ``S_t`` (skills a task requires) and ``S_w`` (skills or
    interests a worker declares).
    """

    vocabulary: SkillVocabulary
    bits: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.bits) != len(self.vocabulary):
            raise EntityError(
                f"skill vector has {len(self.bits)} bits for a vocabulary "
                f"of size {len(self.vocabulary)}"
            )

    @classmethod
    def from_keywords(
        cls, vocabulary: SkillVocabulary, present: Iterable[str]
    ) -> "SkillVector":
        """Build a vector with exactly the keywords in ``present`` set."""
        wanted = set(present)
        unknown = wanted - set(vocabulary.keywords)
        if unknown:
            raise EntityError(f"unknown skill keywords: {sorted(unknown)}")
        return cls(vocabulary, tuple(k in wanted for k in vocabulary.keywords))

    @property
    def keywords(self) -> tuple[str, ...]:
        """The keywords whose bit is set."""
        return tuple(
            k for k, bit in zip(self.vocabulary.keywords, self.bits) if bit
        )

    def count(self) -> int:
        """Number of set bits."""
        return sum(self.bits)

    def __contains__(self, keyword: object) -> bool:
        if not isinstance(keyword, str) or keyword not in self.vocabulary:
            return False
        return self.bits[self.vocabulary.index(keyword)]

    def covers(self, required: "SkillVector") -> bool:
        """True when every skill set in ``required`` is also set here.

        This is the qualification test used by task assignment: a worker
        ``w`` qualifies for task ``t`` iff ``w.skills.covers(t.required_skills)``.
        """
        self._check_same_vocabulary(required)
        return all(mine or not theirs for mine, theirs in zip(self.bits, required.bits))

    def intersection_count(self, other: "SkillVector") -> int:
        """Number of positions set in both vectors."""
        self._check_same_vocabulary(other)
        return sum(a and b for a, b in zip(self.bits, other.bits))

    def union_count(self, other: "SkillVector") -> int:
        """Number of positions set in either vector."""
        self._check_same_vocabulary(other)
        return sum(a or b for a, b in zip(self.bits, other.bits))

    def hamming_distance(self, other: "SkillVector") -> int:
        """Number of positions where the two vectors differ."""
        self._check_same_vocabulary(other)
        return sum(a != b for a, b in zip(self.bits, other.bits))

    def as_floats(self) -> tuple[float, ...]:
        """The vector as 0.0/1.0 floats (for cosine similarity)."""
        return tuple(float(b) for b in self.bits)

    def _check_same_vocabulary(self, other: "SkillVector") -> None:
        if self.vocabulary != other.vocabulary:
            raise VocabularyMismatchError(
                "skill vectors built over different vocabularies"
            )


@dataclass(frozen=True)
class Task:
    """A crowdsourcing task ``t = (id_t, id_r, S_t, d_t)``.

    ``reward`` is the payment ``d_t`` promised to a worker who completes
    the task.  ``duration`` (simulation ticks of honest work needed) and
    ``kind`` (what a contribution looks like) extend the paper's tuple
    so the completion engine and Axiom 3's contribution similarity can
    operate; both have neutral defaults.
    """

    task_id: str
    requester_id: str
    required_skills: SkillVector
    reward: float
    kind: str = "label"
    duration: int = 1
    gold_answer: object | None = None
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.reward < 0:
            raise EntityError(f"task {self.task_id}: negative reward {self.reward}")
        if self.duration < 1:
            raise EntityError(f"task {self.task_id}: duration must be >= 1")

    def qualifies(self, worker: "Worker") -> bool:
        """True when the worker's skills cover the task's requirements."""
        return worker.skills.covers(self.required_skills)


@dataclass(frozen=True)
class Worker:
    """A crowd worker ``w = (id_w, A_w, C_w, S_w)``.

    ``declared`` corresponds to ``A_w`` (self-declared demographics and
    location), ``computed`` to ``C_w`` (platform-computed statistics such
    as acceptance ratio), and ``skills`` to ``S_w``.
    """

    worker_id: str
    declared: DeclaredAttributes
    computed: ComputedAttributes
    skills: SkillVector

    def with_computed(self, computed: ComputedAttributes) -> "Worker":
        """A copy of this worker with refreshed computed attributes."""
        return replace(self, computed=computed)

    def qualifies_for(self, task: Task) -> bool:
        """True when this worker's skills cover the task's requirements."""
        return self.skills.covers(task.required_skills)


@dataclass(frozen=True)
class Requester:
    """A task requester.

    The paper models requesters only as identifiers ``id_r``; we add the
    declared working conditions that Axiom 6 (requester transparency)
    obliges them to disclose: hourly wage, payment delay, recruitment
    and rejection criteria.
    """

    requester_id: str
    name: str = ""
    hourly_wage: float | None = None
    payment_delay: int | None = None
    recruitment_criteria: str | None = None
    rejection_criteria: str | None = None
    rating: float | None = None

    def disclosable_fields(self) -> dict[str, object]:
        """The requester-dependent working conditions of Axiom 6."""
        return {
            "hourly_wage": self.hourly_wage,
            "payment_delay": self.payment_delay,
            "recruitment_criteria": self.recruitment_criteria,
            "rejection_criteria": self.rejection_criteria,
            "rating": self.rating,
        }


@dataclass(frozen=True)
class Contribution:
    """A worker's submitted answer to a task.

    ``payload`` holds the answer and its type depends on the task kind:
    a label (str), a text (str), a ranked list (tuple), or a numeric
    estimate (float).  Axiom 3 compares payloads of different workers on
    the same task using a kind-appropriate similarity
    (:mod:`repro.similarity.contributions`).
    """

    contribution_id: str
    task_id: str
    worker_id: str
    payload: object
    submitted_at: int
    quality: float | None = None
    work_time: int | None = None

    def __post_init__(self) -> None:
        if self.quality is not None and not 0.0 <= self.quality <= 1.0:
            raise EntityError(
                f"contribution {self.contribution_id}: quality must be in [0, 1]"
            )


def validate_population(
    workers: Sequence[Worker], vocabulary: SkillVocabulary
) -> None:
    """Validate a worker population: unique ids, shared vocabulary.

    Raises :class:`EntityError` on the first inconsistency found.
    """
    seen: set[str] = set()
    for worker in workers:
        if worker.worker_id in seen:
            raise EntityError(f"duplicate worker id: {worker.worker_id}")
        seen.add(worker.worker_id)
        if worker.skills.vocabulary != vocabulary:
            raise VocabularyMismatchError(
                f"worker {worker.worker_id} uses a different skill vocabulary"
            )
