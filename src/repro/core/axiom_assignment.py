"""Axioms 1 and 2: fairness in task assignment.

**Axiom 1 (worker fairness).**  "Given two different workers wi and wj,
if A_wi is similar to A_wj and C_wi is similar to C_wj, and S_wi is
similar to S_wj, then wi and wj should have access to the same tasks."

The checker compares, at every browse instant where both workers of a
similar pair received a view, the two sets of tasks shown.  Using
*instants* (not whole-trace unions) keeps the comparison time-local: a
worker who joined later is not blamed for missing earlier tasks.

**Axiom 2 (requester fairness).**  "Given two tasks ti and tj posted by
different requesters, if the required skills S_ti and S_tj are similar
and the rewards comparable, then ti and tj should be shown to the same
set of workers."  The checker compares audiences of comparable task
pairs posted within ``posting_window`` ticks of each other.

Section 3.3.1's inter-dependency — assignment fairness "must check the
fairness of deriving computed attributes" — is implemented by
``audit_derivations``: published ``C_w`` values are re-derived from
their recorded raw counters, and inconsistencies are violations even
when the visibility comparison passes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.axioms import Axiom, AxiomCheck, sampled_pairs
from repro.core.entities import Task, Worker
from repro.core.events import TaskPosted, TasksShown
from repro.core.trace import PlatformTrace
from repro.core.violations import Violation, ViolationSeverity
from repro.similarity.numeric import reward_comparability
from repro.similarity.vectors import (
    attribute_overlap_similarity,
    skill_cosine,
)


def _set_jaccard(left: set[str], right: set[str]) -> float:
    union = left | right
    if not union:
        return 1.0
    return len(left & right) / len(union)


@dataclass
class WorkerFairnessInAssignment(Axiom):
    """Axiom 1 checker.

    Two workers are *similar* when declared-attribute overlap, computed-
    attribute overlap, and skill cosine all clear their thresholds; a
    similar pair's simultaneous browse views must agree to Jaccard >=
    ``visibility_threshold``.

    ``protected_attributes`` are excluded from the declared-attribute
    comparison: discrimination is precisely *different treatment of
    workers who differ only in a protected attribute* (cf. the
    discrimination-discovery literature the paper cites), so including
    the protected attribute in the similarity would define the problem
    away.
    """

    declared_threshold: float = 1.0
    protected_attributes: tuple[str, ...] = ("group", "gender", "race", "age")
    computed_threshold: float = 0.8
    skill_threshold: float = 0.95
    computed_tolerance: float = 0.1
    visibility_threshold: float = 1.0
    audit_derivations: bool = True
    max_pairs: int | None = 20_000
    sample_seed: int = 0

    axiom_id = 1
    title = "Worker fairness in task assignment"

    def workers_similar(self, left: Worker, right: Worker) -> bool:
        """The Axiom 1 similarity predicate over (A_w, C_w, S_w)."""
        protected = set(self.protected_attributes)
        left_declared = {
            k: v for k, v in left.declared.as_dict().items() if k not in protected
        }
        right_declared = {
            k: v for k, v in right.declared.as_dict().items() if k not in protected
        }
        declared = attribute_overlap_similarity(left_declared, right_declared)
        if declared < self.declared_threshold:
            return False
        computed = attribute_overlap_similarity(
            left.computed.as_dict(),
            right.computed.as_dict(),
            numeric_tolerance=self.computed_tolerance,
        )
        if computed < self.computed_threshold:
            return False
        return skill_cosine(left.skills, right.skills) >= self.skill_threshold

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        violations: list[Violation] = []
        opportunities = 0
        # Views per (time, worker): merge multiple browses in one tick.
        views: dict[int, dict[str, set[str]]] = defaultdict(dict)
        for event in trace.of_kind(TasksShown):
            per_time = views[event.time]
            per_time.setdefault(event.worker_id, set()).update(event.task_ids)
        worker_ids = sorted(trace.worker_ids)

        for left_id, right_id in sampled_pairs(
            worker_ids, self.max_pairs, self.sample_seed
        ):
            for time, per_time in views.items():
                if left_id not in per_time or right_id not in per_time:
                    continue
                left = trace.worker_at(left_id, time)
                right = trace.worker_at(right_id, time)
                if not self.workers_similar(left, right):
                    continue
                opportunities += 1
                agreement = _set_jaccard(per_time[left_id], per_time[right_id])
                if agreement < self.visibility_threshold:
                    only_left = per_time[left_id] - per_time[right_id]
                    only_right = per_time[right_id] - per_time[left_id]
                    violations.append(
                        Violation(
                            axiom_id=1,
                            message=(
                                f"similar workers saw different tasks "
                                f"(jaccard {agreement:.2f} < "
                                f"{self.visibility_threshold:.2f})"
                            ),
                            time=time,
                            severity=ViolationSeverity.CRITICAL,
                            subjects=(left_id, right_id),
                            witness={
                                "only_shown_to_first": sorted(only_left),
                                "only_shown_to_second": sorted(only_right),
                                "jaccard": agreement,
                            },
                        )
                    )
        if self.audit_derivations:
            derivation_violations, derivation_opportunities = (
                self._check_derivations(trace)
            )
            violations.extend(derivation_violations)
            opportunities += derivation_opportunities
        return self._result(violations, opportunities)

    def _check_derivations(
        self, trace: PlatformTrace
    ) -> tuple[list[Violation], int]:
        """Verify published C_w against the reference derivation."""
        violations: list[Violation] = []
        opportunities = 0
        for worker_id in trace.worker_ids:
            worker = trace.final_worker(worker_id)
            if not worker.computed.derivation:
                continue
            opportunities += 1
            if not worker.computed.derivation_consistent():
                reference = worker.computed.rederive()
                violations.append(
                    Violation(
                        axiom_id=1,
                        message=(
                            "published computed attributes diverge from "
                            "their recorded derivation (unfairly derived C_w)"
                        ),
                        time=trace.end_time,
                        severity=ViolationSeverity.CRITICAL,
                        subjects=(worker_id,),
                        witness={
                            "published": worker.computed.as_dict(),
                            "rederived": reference.as_dict(),
                        },
                    )
                )
        return violations, opportunities


@dataclass
class RequesterFairnessInAssignment(Axiom):
    """Axiom 2 checker.

    Task pairs from *different* requesters with skill cosine >=
    ``skill_threshold`` and reward comparability >= ``reward_threshold``,
    posted within ``posting_window`` ticks, must have audiences agreeing
    to Jaccard >= ``audience_threshold``.
    """

    skill_threshold: float = 0.95
    reward_threshold: float = 1.0
    reward_tolerance: float = 0.1
    audience_threshold: float = 1.0
    posting_window: int = 0
    max_pairs: int | None = 20_000
    sample_seed: int = 0

    axiom_id = 2
    title = "Requester fairness in task assignment"

    def tasks_comparable(self, left: Task, right: Task) -> bool:
        """The Axiom 2 comparability predicate over (S_t, d_t)."""
        if left.requester_id == right.requester_id:
            return False
        if skill_cosine(left.required_skills, right.required_skills) < (
            self.skill_threshold
        ):
            return False
        comparability = reward_comparability(
            left.reward, right.reward, self.reward_tolerance
        )
        return comparability >= self.reward_threshold

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        violations: list[Violation] = []
        opportunities = 0
        posted_at = {
            event.task.task_id: event.time for event in trace.of_kind(TaskPosted)
        }
        audiences = trace.audience_by_task()
        task_ids = sorted(posted_at)
        tasks = trace.tasks
        for left_id, right_id in sampled_pairs(
            task_ids, self.max_pairs, self.sample_seed
        ):
            if abs(posted_at[left_id] - posted_at[right_id]) > self.posting_window:
                continue
            left, right = tasks[left_id], tasks[right_id]
            if not self.tasks_comparable(left, right):
                continue
            opportunities += 1
            left_audience = audiences.get(left_id, set())
            right_audience = audiences.get(right_id, set())
            agreement = _set_jaccard(left_audience, right_audience)
            if agreement < self.audience_threshold:
                violations.append(
                    Violation(
                        axiom_id=2,
                        message=(
                            f"comparable tasks from different requesters had "
                            f"different audiences (jaccard {agreement:.2f} < "
                            f"{self.audience_threshold:.2f})"
                        ),
                        time=max(posted_at[left_id], posted_at[right_id]),
                        severity=ViolationSeverity.WARNING,
                        subjects=(left_id, right_id),
                        witness={
                            "requesters": (left.requester_id, right.requester_id),
                            "audience_sizes": (
                                len(left_audience),
                                len(right_audience),
                            ),
                            "jaccard": agreement,
                        },
                    )
                )
        return self._result(violations, opportunities)
