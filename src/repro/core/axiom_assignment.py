"""Axioms 1 and 2: fairness in task assignment.

**Axiom 1 (worker fairness).**  "Given two different workers wi and wj,
if A_wi is similar to A_wj and C_wi is similar to C_wj, and S_wi is
similar to S_wj, then wi and wj should have access to the same tasks."

The checker compares, at every browse instant where both workers of a
similar pair received a view, the two sets of tasks shown.  Using
*instants* (not whole-trace unions) keeps the comparison time-local: a
worker who joined later is not blamed for missing earlier tasks.

**Axiom 2 (requester fairness).**  "Given two tasks ti and tj posted by
different requesters, if the required skills S_ti and S_tj are similar
and the rewards comparable, then ti and tj should be shown to the same
set of workers."  The checker compares audiences of comparable task
pairs posted within ``posting_window`` ticks of each other.

Section 3.3.1's inter-dependency — assignment fairness "must check the
fairness of deriving computed attributes" — is implemented by
``audit_derivations``: published ``C_w`` values are re-derived from
their recorded raw counters, and inconsistencies are violations even
when the visibility comparison passes.

Both axioms also ship *incremental* checkers (see
:meth:`~repro.core.axioms.Axiom.incremental`): Axiom 1 finalises each
browse tick as soon as the clock moves past it, so a streaming snapshot
re-examines only the still-open tick; Axiom 2 maintains audiences and a
comparability cache event by event, so a snapshot costs one pass over
task pairs with every similarity already memoised, instead of a rescan
of the whole trace.

For unbounded streams, ``WorkerFairnessInAssignment(history_window=N)``
caps how many finalised browse ticks the incremental checker retains
for its pair-sampling fallback: verdicts for evicted ticks stay (they
were finalised before eviction), but if the worker population later
crosses the sampling cap the recomputation can only see the retained
window — bounded memory traded for exactness in that corner.  The
default (``None``) retains everything and stays exact.

Axiom 2 additionally ships a *delta* checker
(:meth:`~repro.core.axioms.Axiom.delta_checker`, used by
:class:`~repro.core.audit.DeltaAuditEngine`): the set of qualifying
task pairs is maintained as tasks post, per-pair verdicts are cached,
and each audit re-judges only pairs involving a task whose audience the
delta changed.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import defaultdict
from dataclasses import dataclass
from itertools import combinations

from repro.core.axioms import (
    Axiom,
    AxiomCheck,
    DeltaChecker,
    IncrementalChecker,
    TraceDelta,
    sampled_pairs,
)
from repro.core.entities import Task, Worker
from repro.core.events import (
    Event,
    TaskPosted,
    TasksShown,
    WorkerRegistered,
    WorkerUpdated,
)
from repro.core.trace import PlatformTrace
from repro.core.violations import Violation, ViolationSeverity
from repro.errors import AuditError, UnknownEntityError
from repro.similarity.numeric import reward_comparability
from repro.similarity.vectors import (
    attribute_overlap_similarity,
    skill_cosine,
)


def _set_jaccard(left: set[str], right: set[str]) -> float:
    union = left | right
    if not union:
        return 1.0
    return len(left & right) / len(union)


@dataclass
class WorkerFairnessInAssignment(Axiom):
    """Axiom 1 checker.

    Two workers are *similar* when declared-attribute overlap, computed-
    attribute overlap, and skill cosine all clear their thresholds; a
    similar pair's simultaneous browse views must agree to Jaccard >=
    ``visibility_threshold``.

    ``protected_attributes`` are excluded from the declared-attribute
    comparison: discrimination is precisely *different treatment of
    workers who differ only in a protected attribute* (cf. the
    discrimination-discovery literature the paper cites), so including
    the protected attribute in the similarity would define the problem
    away.
    """

    declared_threshold: float = 1.0
    protected_attributes: tuple[str, ...] = ("group", "gender", "race", "age")
    computed_threshold: float = 0.8
    skill_threshold: float = 0.95
    computed_tolerance: float = 0.1
    visibility_threshold: float = 1.0
    audit_derivations: bool = True
    max_pairs: int | None = 20_000
    sample_seed: int = 0
    #: Cap on finalised browse ticks the incremental checker retains for
    #: the pair-sampling fallback; ``None`` retains all (exact).
    history_window: int | None = None

    axiom_id = 1
    title = "Worker fairness in task assignment"
    # Delta audits reuse the incremental checker: ticks finalise as the
    # clock passes them, so a delta audit re-examines the open tick only.
    supports_delta = True

    def __post_init__(self) -> None:
        if self.history_window is not None and self.history_window < 1:
            raise AuditError(
                f"history_window must be >= 1 tick, got {self.history_window}"
            )

    def workers_similar(self, left: Worker, right: Worker) -> bool:
        """The Axiom 1 similarity predicate over (A_w, C_w, S_w)."""
        protected = set(self.protected_attributes)
        left_declared = {
            k: v for k, v in left.declared.as_dict().items() if k not in protected
        }
        right_declared = {
            k: v for k, v in right.declared.as_dict().items() if k not in protected
        }
        declared = attribute_overlap_similarity(left_declared, right_declared)
        if declared < self.declared_threshold:
            return False
        computed = attribute_overlap_similarity(
            left.computed.as_dict(),
            right.computed.as_dict(),
            numeric_tolerance=self.computed_tolerance,
        )
        if computed < self.computed_threshold:
            return False
        return skill_cosine(left.skills, right.skills) >= self.skill_threshold

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        violations: list[Violation] = []
        opportunities = 0
        # Views per (time, worker): merge multiple browses in one tick.
        views: dict[int, dict[str, set[str]]] = defaultdict(dict)
        for event in trace.of_kind(TasksShown):
            per_time = views[event.time]
            per_time.setdefault(event.worker_id, set()).update(event.task_ids)
        worker_ids = sorted(trace.worker_ids)

        for left_id, right_id in sampled_pairs(
            worker_ids, self.max_pairs, self.sample_seed
        ):
            for time, per_time in views.items():
                if left_id not in per_time or right_id not in per_time:
                    continue
                left = trace.worker_at(left_id, time)
                right = trace.worker_at(right_id, time)
                if not self.workers_similar(left, right):
                    continue
                opportunities += 1
                violation = self._visibility_violation(
                    left_id, right_id, time,
                    per_time[left_id], per_time[right_id],
                )
                if violation is not None:
                    violations.append(violation)
        if self.audit_derivations:
            derivation_violations, derivation_opportunities = (
                self._check_derivations(
                    ((wid, trace.final_worker(wid)) for wid in trace.worker_ids),
                    trace.end_time,
                )
            )
            violations.extend(derivation_violations)
            opportunities += derivation_opportunities
        return self._result(violations, opportunities)

    def incremental(self) -> IncrementalChecker:
        return _IncrementalWorkerFairness(self)

    def _visibility_violation(
        self,
        left_id: str,
        right_id: str,
        time: int,
        left_seen: set[str],
        right_seen: set[str],
    ) -> Violation | None:
        """The Axiom 1 verdict for one similar pair's simultaneous views."""
        agreement = _set_jaccard(left_seen, right_seen)
        if agreement >= self.visibility_threshold:
            return None
        only_left = left_seen - right_seen
        only_right = right_seen - left_seen
        return Violation(
            axiom_id=1,
            message=(
                f"similar workers saw different tasks "
                f"(jaccard {agreement:.2f} < "
                f"{self.visibility_threshold:.2f})"
            ),
            time=time,
            severity=ViolationSeverity.CRITICAL,
            subjects=(left_id, right_id),
            witness={
                "only_shown_to_first": sorted(only_left),
                "only_shown_to_second": sorted(only_right),
                "jaccard": agreement,
            },
        )

    def _check_derivations(
        self, workers, end_time: int
    ) -> tuple[list[Violation], int]:
        """Verify published C_w of ``(worker_id, worker)`` pairs against
        the reference derivation."""
        violations: list[Violation] = []
        opportunities = 0
        for worker_id, worker in workers:
            if not worker.computed.derivation:
                continue
            opportunities += 1
            if not worker.computed.derivation_consistent():
                reference = worker.computed.rederive()
                violations.append(
                    Violation(
                        axiom_id=1,
                        message=(
                            "published computed attributes diverge from "
                            "their recorded derivation (unfairly derived C_w)"
                        ),
                        time=end_time,
                        severity=ViolationSeverity.CRITICAL,
                        subjects=(worker_id,),
                        witness={
                            "published": worker.computed.as_dict(),
                            "rederived": reference.as_dict(),
                        },
                    )
                )
        return violations, opportunities


class _IncrementalWorkerFairness(IncrementalChecker):
    """Streaming Axiom 1: finalise each browse tick when time moves on.

    Events arrive in non-decreasing time order, so once any event with a
    later timestamp appears, a tick's merged browse views — and every
    worker snapshot relevant to :meth:`PlatformTrace.worker_at` at that
    tick — are complete.  The pair comparisons for that tick are then
    computed once and cached; a snapshot only re-examines the still-open
    tick and the (cheap) derivation audit.  When the worker population
    grows past the pair-sampling cap the checker recomputes from its
    retained views with :func:`sampled_pairs`, preserving exact batch
    equivalence at the cost of that one snapshot.
    """

    def __init__(self, axiom: WorkerFairnessInAssignment) -> None:
        super().__init__(axiom)
        self._axiom = axiom
        # time -> worker_id -> merged task ids (insertion = ascending time).
        self._views: dict[int, dict[str, set[str]]] = {}
        # worker_id -> [(time, Worker)] in append (= time) order; key
        # insertion order matches PlatformTrace.worker_ids.
        self._snapshots: dict[str, list[tuple[int, Worker]]] = {}
        self._end_time = 0
        # The one tick whose views may still grow (events are time-ordered).
        self._pending_time: int | None = None
        # Finalised (left_id, right_id, time, violation-or-None) results.
        self._final: list[tuple[str, str, int, Violation | None]] = []
        self._final_opportunities = 0

    def observe(self, event: Event) -> None:
        if self._pending_time is not None and event.time > self._pending_time:
            # Once the population crosses the sampling cap it never
            # shrinks back, so snapshots recompute via sampled_pairs
            # forever and per-tick finalised results are dead weight —
            # stop paying for them.
            if not self._sampling_active():
                self._finalize_tick(self._pending_time)
            self._pending_time = None
            self._evict_history()
        if isinstance(event, (WorkerRegistered, WorkerUpdated)):
            self._snapshots.setdefault(event.worker.worker_id, []).append(
                (event.time, event.worker)
            )
        elif isinstance(event, TasksShown):
            per_time = self._views.setdefault(event.time, {})
            per_time.setdefault(event.worker_id, set()).update(event.task_ids)
            self._pending_time = event.time
        self._end_time = event.time

    def _sampling_active(self) -> bool:
        n = len(self._snapshots)
        total_pairs = n * (n - 1) // 2
        return (
            self._axiom.max_pairs is not None
            and total_pairs > self._axiom.max_pairs
        )

    @property
    def retained_view_ticks(self) -> int:
        """How many browse ticks' merged views are currently retained
        (the memory the ``history_window`` satellite bounds)."""
        return len(self._views)

    def _evict_history(self) -> None:
        """Windowed eviction of finalised view history (ROADMAP item).

        Views are kept solely for the pair-sampling fallback — finalised
        verdicts live in ``self._final``.  With a ``history_window`` the
        oldest finalised ticks are dropped once the window is full, so
        an unbounded stream holds a bounded number of view sets; the
        sampling fallback (if it ever engages) then recomputes over the
        retained window only.  Keys of ``self._views`` are in ascending
        tick order (events arrive time-ordered), so eviction pops from
        the front.
        """
        window = self._axiom.history_window
        if window is None:
            return
        while len(self._views) > window:
            oldest = next(iter(self._views))
            if oldest == self._pending_time:
                break  # never evict the still-open tick
            del self._views[oldest]

    def snapshot(self) -> AxiomCheck:
        axiom = self._axiom
        if self._sampling_active():
            violations, opportunities = self._recompute_sampled()
        else:
            compared = list(self._final)
            opportunities = self._final_opportunities
            if self._pending_time is not None:
                pending, pending_opportunities = self._compare_tick(
                    self._pending_time
                )
                compared.extend(pending)
                opportunities += pending_opportunities
            # Batch order: lexicographic pair (combinations of sorted
            # ids), then ascending tick within each pair.
            compared.sort(key=lambda item: (item[0], item[1], item[2]))
            violations = [v for (_, _, _, v) in compared if v is not None]
        if axiom.audit_derivations:
            derivation_violations, derivation_opportunities = (
                axiom._check_derivations(
                    (
                        (wid, snaps[-1][1])
                        for wid, snaps in self._snapshots.items()
                    ),
                    self._end_time,
                )
            )
            violations.extend(derivation_violations)
            opportunities += derivation_opportunities
        return axiom._result(violations, opportunities)

    # ------------------------------------------------------------------

    def _latest_worker(self, worker_id: str) -> Worker:
        """Current snapshot; valid for any finalised-or-pending tick
        because no observed snapshot can postdate it."""
        snapshots = self._snapshots.get(worker_id)
        if not snapshots:
            raise UnknownEntityError(f"no worker {worker_id!r} in trace")
        return snapshots[-1][1]

    def _worker_at(self, worker_id: str, time: int) -> Worker:
        """Mirror of :meth:`PlatformTrace.worker_at`, including its
        refusal to answer for a worker not yet registered at ``time``."""
        snapshots = self._snapshots.get(worker_id)
        if not snapshots:
            raise UnknownEntityError(f"no worker {worker_id!r} in trace")
        index = bisect_right(snapshots, time, key=lambda pair: pair[0])
        if index == 0:
            raise UnknownEntityError(
                f"worker {worker_id!r} not yet registered at t={time}"
            )
        return snapshots[index - 1][1]

    def _compare_tick(
        self, time: int
    ) -> tuple[list[tuple[str, str, int, Violation | None]], int]:
        """All similar-pair comparisons for one tick's merged views."""
        axiom = self._axiom
        per_time = self._views[time]
        results: list[tuple[str, str, int, Violation | None]] = []
        opportunities = 0
        for left_id, right_id in combinations(sorted(per_time), 2):
            left = self._latest_worker(left_id)
            right = self._latest_worker(right_id)
            if not axiom.workers_similar(left, right):
                continue
            opportunities += 1
            violation = axiom._visibility_violation(
                left_id, right_id, time, per_time[left_id], per_time[right_id]
            )
            results.append((left_id, right_id, time, violation))
        return results, opportunities

    def _finalize_tick(self, time: int) -> None:
        results, opportunities = self._compare_tick(time)
        self._final.extend(results)
        self._final_opportunities += opportunities

    def _recompute_sampled(self) -> tuple[list[Violation], int]:
        """Exact batch semantics once pair sampling kicks in."""
        axiom = self._axiom
        violations: list[Violation] = []
        opportunities = 0
        worker_ids = sorted(self._snapshots)
        for left_id, right_id in sampled_pairs(
            worker_ids, axiom.max_pairs, axiom.sample_seed
        ):
            for time, per_time in self._views.items():
                if left_id not in per_time or right_id not in per_time:
                    continue
                left = self._worker_at(left_id, time)
                right = self._worker_at(right_id, time)
                if not axiom.workers_similar(left, right):
                    continue
                opportunities += 1
                violation = axiom._visibility_violation(
                    left_id, right_id, time,
                    per_time[left_id], per_time[right_id],
                )
                if violation is not None:
                    violations.append(violation)
        return violations, opportunities


@dataclass
class RequesterFairnessInAssignment(Axiom):
    """Axiom 2 checker.

    Task pairs from *different* requesters with skill cosine >=
    ``skill_threshold`` and reward comparability >= ``reward_threshold``,
    posted within ``posting_window`` ticks, must have audiences agreeing
    to Jaccard >= ``audience_threshold``.
    """

    skill_threshold: float = 0.95
    reward_threshold: float = 1.0
    reward_tolerance: float = 0.1
    audience_threshold: float = 1.0
    posting_window: int = 0
    max_pairs: int | None = 20_000
    sample_seed: int = 0

    axiom_id = 2
    title = "Requester fairness in task assignment"
    supports_delta = True

    def tasks_comparable(self, left: Task, right: Task) -> bool:
        """The Axiom 2 comparability predicate over (S_t, d_t)."""
        if left.requester_id == right.requester_id:
            return False
        if skill_cosine(left.required_skills, right.required_skills) < (
            self.skill_threshold
        ):
            return False
        comparability = reward_comparability(
            left.reward, right.reward, self.reward_tolerance
        )
        return comparability >= self.reward_threshold

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        posted_at = {
            event.task.task_id: event.time for event in trace.of_kind(TaskPosted)
        }
        violations, opportunities = self._scan(
            posted_at, trace.tasks, trace.audience_by_task()
        )
        return self._result(violations, opportunities)

    def incremental(self) -> IncrementalChecker:
        return _IncrementalRequesterFairness(self)

    def delta_checker(self) -> DeltaChecker:
        return _DeltaRequesterFairness(self)

    def _audience_violation(
        self,
        left_id: str,
        right_id: str,
        left: Task,
        right: Task,
        time: int,
        left_audience: set[str],
        right_audience: set[str],
    ) -> Violation | None:
        """The Axiom 2 verdict for one comparable pair's audiences."""
        agreement = _set_jaccard(left_audience, right_audience)
        if agreement >= self.audience_threshold:
            return None
        return Violation(
            axiom_id=2,
            message=(
                f"comparable tasks from different requesters had "
                f"different audiences (jaccard {agreement:.2f} < "
                f"{self.audience_threshold:.2f})"
            ),
            time=time,
            severity=ViolationSeverity.WARNING,
            subjects=(left_id, right_id),
            witness={
                "requesters": (left.requester_id, right.requester_id),
                "audience_sizes": (
                    len(left_audience),
                    len(right_audience),
                ),
                "jaccard": agreement,
            },
        )

    def _scan(
        self,
        posted_at: dict[str, int],
        tasks: dict[str, Task],
        audiences: dict[str, set[str]],
        comparable_cache: dict[tuple[str, str], bool] | None = None,
    ) -> tuple[list[Violation], int]:
        """One pass over (sampled) task pairs against current audiences.

        ``comparable_cache`` memoises the static comparability predicate
        across passes — the streaming checker reuses one cache for the
        lifetime of the stream, since task specs never change.
        """
        violations: list[Violation] = []
        opportunities = 0
        task_ids = sorted(posted_at)
        for left_id, right_id in sampled_pairs(
            task_ids, self.max_pairs, self.sample_seed
        ):
            if abs(posted_at[left_id] - posted_at[right_id]) > self.posting_window:
                continue
            left, right = tasks[left_id], tasks[right_id]
            if comparable_cache is None:
                comparable = self.tasks_comparable(left, right)
            else:
                key = (left_id, right_id)
                comparable = comparable_cache.get(key)
                if comparable is None:
                    comparable = self.tasks_comparable(left, right)
                    comparable_cache[key] = comparable
            if not comparable:
                continue
            opportunities += 1
            violation = self._audience_violation(
                left_id, right_id, left, right,
                max(posted_at[left_id], posted_at[right_id]),
                audiences.get(left_id, set()),
                audiences.get(right_id, set()),
            )
            if violation is not None:
                violations.append(violation)
        return violations, opportunities


class _IncrementalRequesterFairness(IncrementalChecker):
    """Streaming Axiom 2: maintained audiences + memoised comparability.

    Audience sets are whole-trace unions, so a pair that disagrees early
    can converge later — verdicts cannot be finalised mid-stream.  What
    *can* be saved is everything else: posting times and audiences are
    maintained event by event (no trace rescan), and the quadratic-cost
    comparability predicate (skill cosine + reward comparability) is
    computed once per pair ever, so a snapshot is one cheap pass over
    the sampled pairs.
    """

    def __init__(self, axiom: RequesterFairnessInAssignment) -> None:
        super().__init__(axiom)
        self._axiom = axiom
        self._posted_at: dict[str, int] = {}
        self._tasks: dict[str, Task] = {}
        self._audiences: dict[str, set[str]] = {}
        self._comparable: dict[tuple[str, str], bool] = {}

    def observe(self, event: Event) -> None:
        if isinstance(event, TaskPosted):
            self._posted_at[event.task.task_id] = event.time
            self._tasks[event.task.task_id] = event.task
        elif isinstance(event, TasksShown):
            for task_id in event.task_ids:
                self._audiences.setdefault(task_id, set()).add(event.worker_id)

    def snapshot(self) -> AxiomCheck:
        violations, opportunities = self._axiom._scan(
            self._posted_at, self._tasks, self._audiences, self._comparable
        )
        return self._axiom._result(violations, opportunities)


class _DeltaRequesterFairness(DeltaChecker):
    """Delta-aware Axiom 2: cached per-pair verdicts, touched re-judges.

    Pair *qualification* (posted within the window, comparable skills
    and rewards) is static, so the sorted list of qualifying pairs is
    extended as tasks post — O(existing tasks) per new task, never
    rescanned.  Pair *verdicts* depend only on the two audiences, so a
    cached verdict is re-judged only when the delta changed an audience
    on either side (a refinement of the delta's touched-task superset).
    Each audit is then one walk over qualifying pairs with almost every
    verdict served from cache.

    If the task population crosses the pair-sampling cap the cached
    pair set no longer matches the batch sample; the checker drops to
    the memoised full scan (exact, comparability still paid once per
    pair ever) from then on.
    """

    def __init__(self, axiom: RequesterFairnessInAssignment) -> None:
        self._axiom = axiom
        self._posted_at: dict[str, int] = {}
        self._tasks: dict[str, Task] = {}
        self._audiences: dict[str, set[str]] = {}
        self._comparable: dict[tuple[str, str], bool] = {}
        # Qualifying pairs in batch iteration order (lexicographic),
        # plus a membership set (two tasks posted in one delta would
        # otherwise insert their shared pair from both sides).
        self._qualifying: list[tuple[str, str]] = []
        self._qualified: set[tuple[str, str]] = set()
        self._verdicts: dict[tuple[str, str], Violation | None] = {}
        # Task ids whose audience changed since the last ``result``.
        self._dirty: set[str] = set()
        self._sampling = False
        # The audited trace; indexed backends serve per-task audience
        # slices through TraceQuery instead of reading the folded map.
        # (The map itself stays maintained on every backend: it is
        # load-bearing for dirty tracking and the sampling fallback.)
        self._trace: PlatformTrace | None = None
        self._slice_cache: "SliceCache | None" = None

    def apply(self, trace: PlatformTrace, delta: TraceDelta) -> None:
        axiom = self._axiom
        self._trace = trace
        new_task_ids: list[str] = []
        for event in delta.new_events:
            if isinstance(event, TaskPosted):
                task_id = event.task.task_id
                self._posted_at[task_id] = event.time
                self._tasks[task_id] = event.task
                new_task_ids.append(task_id)
            elif isinstance(event, TasksShown):
                for task_id in event.task_ids:
                    audience = self._audiences.setdefault(task_id, set())
                    if event.worker_id not in audience:
                        audience.add(event.worker_id)
                        self._dirty.add(task_id)
        if self._sampling:
            return
        n = len(self._posted_at)
        if axiom.max_pairs is not None and n * (n - 1) // 2 > axiom.max_pairs:
            self._sampling = True
            self._qualifying.clear()
            self._qualified.clear()
            self._verdicts.clear()
            return
        for task_id in new_task_ids:
            self._pair_up(task_id)

    def _pair_up(self, task_id: str) -> None:
        """Qualify the new task against every earlier one; cache the
        static comparability and insert qualifying pairs in order."""
        axiom = self._axiom
        time = self._posted_at[task_id]
        qualified = False
        for other_id, other_time in self._posted_at.items():
            if other_id == task_id:
                continue
            if abs(time - other_time) > axiom.posting_window:
                continue
            pair = (
                (task_id, other_id) if task_id < other_id
                else (other_id, task_id)
            )
            comparable = self._comparable.get(pair)
            if comparable is None:
                comparable = axiom.tasks_comparable(
                    self._tasks[pair[0]], self._tasks[pair[1]]
                )
                self._comparable[pair] = comparable
            if comparable and pair not in self._qualified:
                insort(self._qualifying, pair)
                self._qualified.add(pair)
                qualified = True
        if qualified:
            # Force first-judgement of the new pairs at the next result.
            self._dirty.add(task_id)

    def _audience(self, task_id: str) -> set[str]:
        """One task's audience — the per-entity slice a re-judge needs.

        On an indexed store it is fetched through
        :func:`repro.query.task_audience` (a seq-bounded point query on
        the entity index, topping up a cached view so each audit
        decodes only the events appended since the last one); elsewhere
        the event-folded map answers.
        """
        from repro.query.slices import (
            SliceCache,
            task_audience,
            uses_indexed_slices,
        )

        if uses_indexed_slices(self._trace):
            if self._slice_cache is None:
                self._slice_cache = SliceCache()
            return self._slice_cache.topped_up(
                self._trace,
                task_id,
                lambda since: task_audience(self._trace, task_id, since=since),
            )
        return self._audiences.get(task_id, set())

    def result(self) -> AxiomCheck:
        axiom = self._axiom
        if self._sampling:
            violations, opportunities = axiom._scan(
                self._posted_at, self._tasks, self._audiences,
                self._comparable,
            )
            return axiom._result(violations, opportunities)
        violations: list[Violation] = []
        for pair in self._qualifying:
            left_id, right_id = pair
            if (
                pair not in self._verdicts
                or left_id in self._dirty
                or right_id in self._dirty
            ):
                self._verdicts[pair] = axiom._audience_violation(
                    left_id, right_id,
                    self._tasks[left_id], self._tasks[right_id],
                    max(self._posted_at[left_id], self._posted_at[right_id]),
                    self._audience(left_id),
                    self._audience(right_id),
                )
            violation = self._verdicts[pair]
            if violation is not None:
                violations.append(violation)
        self._dirty.clear()
        return axiom._result(violations, len(self._qualifying))
