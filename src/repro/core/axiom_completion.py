"""Axioms 4 and 5: fairness in task completion.

**Axiom 4 (requester fairness).**  "Requesters must be able to detect
workers behaving maliciously during task completion."  This is a
*capability* requirement on the platform: the checker independently
recomputes which workers look objectively malicious from the trace
(gold-answer failures, chronically low quality over enough reviewed
work) and verifies the platform flagged each of them
(:class:`~repro.core.events.MaliceFlagged`).  A suspicious worker the
platform never surfaced is a violation — the requester had no way to
protect themselves.

**Axiom 5 (worker fairness).**  "A worker who started completing a task
should not be interrupted."  Every non-worker-initiated
:class:`~repro.core.events.TaskInterrupted` is a violation; the
opportunity count is the number of started work spells.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.axioms import Axiom, AxiomCheck
from repro.core.events import (
    ContributionSubmitted,
    MaliceFlagged,
    TaskInterrupted,
    TaskStarted,
)
from repro.core.trace import PlatformTrace
from repro.core.violations import Violation, ViolationSeverity


@dataclass
class RequesterFairnessInCompletion(Axiom):
    """Axiom 4 checker: suspicious workers must have been flagged.

    A worker is *objectively suspicious* when, over at least
    ``min_contributions`` contributions, either their gold-answer error
    rate is >= ``gold_error_threshold`` (on tasks that had gold), or
    their mean latent quality is <= ``quality_floor``.
    """

    min_contributions: int = 5
    gold_error_threshold: float = 0.6
    quality_floor: float = 0.35

    axiom_id = 4
    title = "Requester fairness in task completion"

    def suspicious_workers(self, trace: PlatformTrace) -> dict[str, dict[str, float]]:
        """Workers the evidence marks as malicious, with the evidence."""
        per_worker: dict[str, list] = defaultdict(list)
        for event in trace.of_kind(ContributionSubmitted):
            per_worker[event.contribution.worker_id].append(event.contribution)
        tasks = trace.tasks
        suspicious: dict[str, dict[str, float]] = {}
        for worker_id, contributions in per_worker.items():
            if len(contributions) < self.min_contributions:
                continue
            gold_total = 0
            gold_wrong = 0
            quality_sum = 0.0
            quality_count = 0
            for contribution in contributions:
                task = tasks.get(contribution.task_id)
                if task is not None and task.gold_answer is not None:
                    gold_total += 1
                    if str(contribution.payload) != str(task.gold_answer):
                        gold_wrong += 1
                if contribution.quality is not None:
                    quality_sum += contribution.quality
                    quality_count += 1
            gold_error = gold_wrong / gold_total if gold_total else 0.0
            mean_quality = quality_sum / quality_count if quality_count else 1.0
            gold_bad = gold_total >= self.min_contributions and (
                gold_error >= self.gold_error_threshold
            )
            quality_bad = quality_count >= self.min_contributions and (
                mean_quality <= self.quality_floor
            )
            if gold_bad or quality_bad:
                suspicious[worker_id] = {
                    "gold_error_rate": gold_error,
                    "mean_quality": mean_quality,
                    "contributions": float(len(contributions)),
                }
        return suspicious

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        suspicious = self.suspicious_workers(trace)
        flagged = {event.worker_id for event in trace.of_kind(MaliceFlagged)}
        violations = [
            Violation(
                axiom_id=4,
                message=(
                    "objectively suspicious worker was never flagged to "
                    "requesters"
                ),
                time=trace.end_time,
                severity=ViolationSeverity.WARNING,
                subjects=(worker_id,),
                witness=dict(evidence, type="undetected_malice"),
            )
            for worker_id, evidence in sorted(suspicious.items())
            if worker_id not in flagged
        ]
        return self._result(violations, opportunities=len(suspicious))


@dataclass
class WorkerFairnessInCompletion(Axiom):
    """Axiom 5 checker: no non-worker-initiated interruptions."""

    axiom_id = 5
    title = "Worker fairness in task completion"

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        started = trace.of_kind(TaskStarted)
        violations = [
            Violation(
                axiom_id=5,
                message=(
                    f"worker interrupted mid-task ({event.reason or 'no reason'})"
                ),
                time=event.time,
                severity=ViolationSeverity.CRITICAL,
                subjects=(event.worker_id, event.task_id),
                witness={"reason": event.reason, "type": "interruption"},
            )
            for event in trace.of_kind(TaskInterrupted)
            if not event.worker_initiated
        ]
        return self._result(violations, opportunities=len(started))
