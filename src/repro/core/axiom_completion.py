"""Axioms 4 and 5: fairness in task completion.

**Axiom 4 (requester fairness).**  "Requesters must be able to detect
workers behaving maliciously during task completion."  This is a
*capability* requirement on the platform: the checker independently
recomputes which workers look objectively malicious from the trace
(gold-answer failures, chronically low quality over enough reviewed
work) and verifies the platform flagged each of them
(:class:`~repro.core.events.MaliceFlagged`).  A suspicious worker the
platform never surfaced is a violation — the requester had no way to
protect themselves.

**Axiom 5 (worker fairness).**  "A worker who started completing a task
should not be interrupted."  Every non-worker-initiated
:class:`~repro.core.events.TaskInterrupted` is a violation; the
opportunity count is the number of started work spells.

Both axioms stream naturally: Axiom 4 folds each contribution into
per-worker gold/quality aggregates as it arrives (a snapshot only
re-classifies the aggregates), and Axiom 5 is a pure event filter whose
violations are final the moment they are observed.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.axioms import Axiom, AxiomCheck, IncrementalChecker
from repro.core.entities import Task
from repro.core.events import (
    ContributionSubmitted,
    Event,
    MaliceFlagged,
    TaskInterrupted,
    TaskPosted,
    TaskStarted,
)
from repro.core.trace import PlatformTrace
from repro.core.violations import Violation, ViolationSeverity


@dataclass
class RequesterFairnessInCompletion(Axiom):
    """Axiom 4 checker: suspicious workers must have been flagged.

    A worker is *objectively suspicious* when, over at least
    ``min_contributions`` contributions, either their gold-answer error
    rate is >= ``gold_error_threshold`` (on tasks that had gold), or
    their mean latent quality is <= ``quality_floor``.
    """

    min_contributions: int = 5
    gold_error_threshold: float = 0.6
    quality_floor: float = 0.35

    axiom_id = 4
    title = "Requester fairness in task completion"
    # Delta audits reuse the incremental checker's O(workers) snapshot.
    supports_delta = True

    def suspicious_workers(self, trace: PlatformTrace) -> dict[str, dict[str, float]]:
        """Workers the evidence marks as malicious, with the evidence."""
        per_worker: dict[str, list] = defaultdict(list)
        for event in trace.of_kind(ContributionSubmitted):
            per_worker[event.contribution.worker_id].append(event.contribution)
        tasks = trace.tasks
        suspicious: dict[str, dict[str, float]] = {}
        for worker_id, contributions in per_worker.items():
            gold_total = 0
            gold_wrong = 0
            quality_sum = 0.0
            quality_count = 0
            for contribution in contributions:
                task = tasks.get(contribution.task_id)
                if task is not None and task.gold_answer is not None:
                    gold_total += 1
                    if str(contribution.payload) != str(task.gold_answer):
                        gold_wrong += 1
                if contribution.quality is not None:
                    quality_sum += contribution.quality
                    quality_count += 1
            evidence = self._classify(
                len(contributions), gold_total, gold_wrong,
                quality_sum, quality_count,
            )
            if evidence is not None:
                suspicious[worker_id] = evidence
        return suspicious

    def _classify(
        self,
        n_contributions: int,
        gold_total: int,
        gold_wrong: int,
        quality_sum: float,
        quality_count: int,
    ) -> dict[str, float] | None:
        """The suspicion verdict over one worker's aggregates."""
        if n_contributions < self.min_contributions:
            return None
        gold_error = gold_wrong / gold_total if gold_total else 0.0
        mean_quality = quality_sum / quality_count if quality_count else 1.0
        gold_bad = gold_total >= self.min_contributions and (
            gold_error >= self.gold_error_threshold
        )
        quality_bad = quality_count >= self.min_contributions and (
            mean_quality <= self.quality_floor
        )
        if not (gold_bad or quality_bad):
            return None
        return {
            "gold_error_rate": gold_error,
            "mean_quality": mean_quality,
            "contributions": float(n_contributions),
        }

    def _violations(
        self,
        suspicious: dict[str, dict[str, float]],
        flagged: set[str],
        end_time: int,
    ) -> list[Violation]:
        return [
            Violation(
                axiom_id=4,
                message=(
                    "objectively suspicious worker was never flagged to "
                    "requesters"
                ),
                time=end_time,
                severity=ViolationSeverity.WARNING,
                subjects=(worker_id,),
                witness=dict(evidence, type="undetected_malice"),
            )
            for worker_id, evidence in sorted(suspicious.items())
            if worker_id not in flagged
        ]

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        suspicious = self.suspicious_workers(trace)
        flagged = {event.worker_id for event in trace.of_kind(MaliceFlagged)}
        violations = self._violations(suspicious, flagged, trace.end_time)
        return self._result(violations, opportunities=len(suspicious))

    def incremental(self) -> IncrementalChecker:
        return _IncrementalRequesterCompletion(self)


class _WorkerAggregates:
    """Per-worker running totals behind the Axiom 4 suspicion verdict."""

    __slots__ = ("contributions", "gold_total", "gold_wrong",
                 "quality_sum", "quality_count")

    def __init__(self) -> None:
        self.contributions = 0
        self.gold_total = 0
        self.gold_wrong = 0
        self.quality_sum = 0.0
        self.quality_count = 0


class _IncrementalRequesterCompletion(IncrementalChecker):
    """Streaming Axiom 4: fold contributions into per-worker aggregates.

    A snapshot re-classifies the aggregates (O(workers)) instead of
    re-reading every contribution.  Contributions referencing a task not
    yet posted are parked and folded in when the task appears, matching
    the batch checker's use of the full prefix's task table.
    """

    def __init__(self, axiom: RequesterFairnessInCompletion) -> None:
        super().__init__(axiom)
        self._axiom = axiom
        self._aggregates: dict[str, _WorkerAggregates] = {}
        self._tasks: dict[str, Task] = {}
        # task_id -> [(worker_id, payload_str)] awaiting the task's gold.
        self._awaiting_task: dict[str, list[tuple[str, str]]] = {}
        self._flagged: set[str] = set()
        self._end_time = 0

    def observe(self, event: Event) -> None:
        self._end_time = event.time
        if isinstance(event, ContributionSubmitted):
            contribution = event.contribution
            stats = self._aggregates.setdefault(
                contribution.worker_id, _WorkerAggregates()
            )
            stats.contributions += 1
            task = self._tasks.get(contribution.task_id)
            if task is None:
                self._awaiting_task.setdefault(contribution.task_id, []).append(
                    (contribution.worker_id, str(contribution.payload))
                )
            else:
                self._fold_gold(stats, str(contribution.payload), task)
            if contribution.quality is not None:
                stats.quality_sum += contribution.quality
                stats.quality_count += 1
        elif isinstance(event, TaskPosted):
            task = event.task
            self._tasks[task.task_id] = task
            for worker_id, payload in self._awaiting_task.pop(task.task_id, ()):
                self._fold_gold(self._aggregates[worker_id], payload, task)
        elif isinstance(event, MaliceFlagged):
            self._flagged.add(event.worker_id)

    def snapshot(self) -> AxiomCheck:
        axiom = self._axiom
        suspicious: dict[str, dict[str, float]] = {}
        for worker_id, stats in self._aggregates.items():
            evidence = axiom._classify(
                stats.contributions, stats.gold_total, stats.gold_wrong,
                stats.quality_sum, stats.quality_count,
            )
            if evidence is not None:
                suspicious[worker_id] = evidence
        violations = axiom._violations(suspicious, self._flagged, self._end_time)
        return axiom._result(violations, opportunities=len(suspicious))

    @staticmethod
    def _fold_gold(stats: _WorkerAggregates, payload: str, task: Task) -> None:
        if task.gold_answer is None:
            return
        stats.gold_total += 1
        if payload != str(task.gold_answer):
            stats.gold_wrong += 1


@dataclass
class WorkerFairnessInCompletion(Axiom):
    """Axiom 5 checker: no non-worker-initiated interruptions."""

    axiom_id = 5
    title = "Worker fairness in task completion"
    # Delta audits reuse the incremental checker: verdicts are final on
    # arrival, so a delta audit costs its new events only.
    supports_delta = True

    def check(self, trace: PlatformTrace) -> AxiomCheck:
        started = trace.of_kind(TaskStarted)
        violations = [
            self._interruption_violation(event)
            for event in trace.of_kind(TaskInterrupted)
            if not event.worker_initiated
        ]
        return self._result(violations, opportunities=len(started))

    def incremental(self) -> IncrementalChecker:
        return _IncrementalWorkerCompletion(self)

    def _interruption_violation(self, event: TaskInterrupted) -> Violation:
        return Violation(
            axiom_id=5,
            message=(
                f"worker interrupted mid-task ({event.reason or 'no reason'})"
            ),
            time=event.time,
            severity=ViolationSeverity.CRITICAL,
            subjects=(event.worker_id, event.task_id),
            witness={"reason": event.reason, "type": "interruption"},
        )


class _IncrementalWorkerCompletion(IncrementalChecker):
    """Streaming Axiom 5: a pure event filter — verdicts are final on
    arrival, so observe is O(1) and snapshot is a copy."""

    def __init__(self, axiom: WorkerFairnessInCompletion) -> None:
        super().__init__(axiom)
        self._axiom = axiom
        self._started = 0
        self._violations: list[Violation] = []

    def observe(self, event: Event) -> None:
        if isinstance(event, TaskStarted):
            self._started += 1
        elif isinstance(event, TaskInterrupted) and not event.worker_initiated:
            self._violations.append(self._axiom._interruption_violation(event))

    def snapshot(self) -> AxiomCheck:
        return self._axiom._result(
            list(self._violations), opportunities=self._started
        )
