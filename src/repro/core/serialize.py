"""JSON serialization of platform traces.

Section 3.3.1 aims the framework at *existing* crowdsourcing systems:
an adapter for a real platform exports its logs in this JSON schema and
the audit engine consumes them exactly like simulator traces.  The
format is line-oriented-friendly (a dict per event) and versioned.

Round-trip guarantee: ``trace_from_json(trace_to_json(t))`` reproduces
every event, entity, and index of ``t``.  :func:`save_trace` /
:func:`load_trace` round-trip through the persistent JSONL-segment
backend (:mod:`repro.core.store.persistent`) — the durable counterpart
of the single-document JSON form, sharing the same event codecs.

This module deliberately does not import :class:`PlatformTrace` at
module level: the persistent store imports these codecs, and the trace
facade imports the store package.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any

import json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import TraceStore
    from repro.core.trace import PlatformTrace

from repro.core.attributes import ComputedAttributes, DeclaredAttributes
from repro.core.entities import (
    Contribution,
    Requester,
    SkillVocabulary,
    Task,
    Worker,
)
from repro.core.events import (
    AssignmentMade,
    BonusPaid,
    BonusPromised,
    ContributionReviewed,
    ContributionSubmitted,
    DisclosureShown,
    Event,
    MaliceFlagged,
    PaymentIssued,
    RequesterRegistered,
    TaskCancelled,
    TaskInterrupted,
    TaskPosted,
    TasksShown,
    TaskStarted,
    WorkerDeparted,
    WorkerRegistered,
    WorkerUpdated,
)
from repro.errors import TraceError

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Entity codecs

def _task_to_dict(task: Task) -> dict[str, Any]:
    return {
        "task_id": task.task_id,
        "requester_id": task.requester_id,
        "vocabulary": list(task.required_skills.vocabulary.keywords),
        "skills": list(task.required_skills.keywords),
        "reward": task.reward,
        "kind": task.kind,
        "duration": task.duration,
        "gold_answer": task.gold_answer,
        "metadata": dict(task.metadata),
    }


def _task_from_dict(data: dict[str, Any]) -> Task:
    vocabulary = SkillVocabulary(tuple(data["vocabulary"]))
    return Task(
        task_id=data["task_id"],
        requester_id=data["requester_id"],
        required_skills=vocabulary.vector(tuple(data["skills"])),
        reward=data["reward"],
        kind=data.get("kind", "label"),
        duration=data.get("duration", 1),
        gold_answer=data.get("gold_answer"),
        metadata=data.get("metadata", {}),
    )


def _worker_to_dict(worker: Worker) -> dict[str, Any]:
    return {
        "worker_id": worker.worker_id,
        "declared": worker.declared.as_dict(),
        "computed": worker.computed.as_dict(),
        "derivation": dict(worker.computed.derivation),
        "vocabulary": list(worker.skills.vocabulary.keywords),
        "skills": list(worker.skills.keywords),
    }


def _worker_from_dict(data: dict[str, Any]) -> Worker:
    vocabulary = SkillVocabulary(tuple(data["vocabulary"]))
    return Worker(
        worker_id=data["worker_id"],
        declared=DeclaredAttributes(data.get("declared", {})),
        computed=ComputedAttributes(
            values=data.get("computed", {}),
            derivation=data.get("derivation", {}),
        ),
        skills=vocabulary.vector(tuple(data["skills"])),
    )


def _requester_to_dict(requester: Requester) -> dict[str, Any]:
    return {
        "requester_id": requester.requester_id,
        "name": requester.name,
        "hourly_wage": requester.hourly_wage,
        "payment_delay": requester.payment_delay,
        "recruitment_criteria": requester.recruitment_criteria,
        "rejection_criteria": requester.rejection_criteria,
        "rating": requester.rating,
    }


def _requester_from_dict(data: dict[str, Any]) -> Requester:
    return Requester(**data)


def _contribution_to_dict(contribution: Contribution) -> dict[str, Any]:
    payload = contribution.payload
    if isinstance(payload, tuple):
        payload = {"__tuple__": list(payload)}
    return {
        "contribution_id": contribution.contribution_id,
        "task_id": contribution.task_id,
        "worker_id": contribution.worker_id,
        "payload": payload,
        "submitted_at": contribution.submitted_at,
        "quality": contribution.quality,
        "work_time": contribution.work_time,
    }


def _contribution_from_dict(data: dict[str, Any]) -> Contribution:
    payload = data["payload"]
    if isinstance(payload, dict) and "__tuple__" in payload:
        payload = tuple(payload["__tuple__"])
    return Contribution(
        contribution_id=data["contribution_id"],
        task_id=data["task_id"],
        worker_id=data["worker_id"],
        payload=payload,
        submitted_at=data["submitted_at"],
        quality=data.get("quality"),
        work_time=data.get("work_time"),
    )


# ----------------------------------------------------------------------
# Event codecs: kind -> (to_dict, from_dict)

def _plain(event: Event, fields: tuple[str, ...]) -> dict[str, Any]:
    data: dict[str, Any] = {"kind": event.kind, "time": event.time}
    for name in fields:
        value = getattr(event, name)
        if isinstance(value, frozenset):
            value = sorted(value)
        data[name] = value
    return data


_PLAIN_FIELDS: dict[type, tuple[str, ...]] = {
    WorkerDeparted: ("worker_id", "reason"),
    TasksShown: ("worker_id", "task_ids"),
    AssignmentMade: ("worker_id", "task_id", "assigner"),
    TaskStarted: ("worker_id", "task_id"),
    TaskInterrupted: ("worker_id", "task_id", "reason", "worker_initiated"),
    TaskCancelled: ("task_id", "reason"),
    ContributionReviewed: (
        "contribution_id", "task_id", "worker_id", "accepted", "feedback",
    ),
    PaymentIssued: ("worker_id", "task_id", "contribution_id", "amount"),
    BonusPromised: ("requester_id", "worker_id", "amount", "condition"),
    BonusPaid: ("requester_id", "worker_id", "amount"),
    MaliceFlagged: ("worker_id", "detector", "score"),
    DisclosureShown: ("subject", "field_name", "value", "audience_worker_id"),
}

def _kind_name(event_type: type) -> str:
    from repro.core.events import _KIND_NAMES  # private kind-name table

    return _KIND_NAMES[event_type]


_PLAIN_BY_KIND = {
    _kind_name(event_type): (event_type, fields)
    for event_type, fields in _PLAIN_FIELDS.items()
}


def event_to_dict(event: Event) -> dict[str, Any]:
    """One JSON-ready dict per event."""
    if isinstance(event, (WorkerRegistered, WorkerUpdated)):
        return {
            "kind": event.kind, "time": event.time,
            "worker": _worker_to_dict(event.worker),
        }
    if isinstance(event, RequesterRegistered):
        return {
            "kind": event.kind, "time": event.time,
            "requester": _requester_to_dict(event.requester),
        }
    if isinstance(event, TaskPosted):
        return {
            "kind": event.kind, "time": event.time,
            "task": _task_to_dict(event.task),
        }
    if isinstance(event, ContributionSubmitted):
        return {
            "kind": event.kind, "time": event.time,
            "contribution": _contribution_to_dict(event.contribution),
        }
    fields = _PLAIN_FIELDS.get(type(event))
    if fields is None:
        raise TraceError(f"cannot serialize event type {type(event).__name__}")
    return _plain(event, fields)


def event_from_dict(data: dict[str, Any]) -> Event:
    """Inverse of :func:`event_to_dict`."""
    kind = data.get("kind")
    time = data.get("time")
    if not isinstance(time, int):
        raise TraceError(f"event missing integer time: {data!r}")
    if kind in ("worker_registered", "worker_updated"):
        worker = _worker_from_dict(data["worker"])
        event_type = (
            WorkerRegistered if kind == "worker_registered" else WorkerUpdated
        )
        return event_type(time=time, worker=worker)
    if kind == "requester_registered":
        return RequesterRegistered(
            time=time, requester=_requester_from_dict(data["requester"])
        )
    if kind == "task_posted":
        return TaskPosted(time=time, task=_task_from_dict(data["task"]))
    if kind == "contribution_submitted":
        return ContributionSubmitted(
            time=time,
            contribution=_contribution_from_dict(data["contribution"]),
        )
    entry = _PLAIN_BY_KIND.get(kind or "")
    if entry is None:
        raise TraceError(f"unknown event kind {kind!r}")
    event_type, fields = entry
    kwargs: dict[str, Any] = {}
    for name in fields:
        value = data.get(name)
        if name == "task_ids":
            value = frozenset(value or ())
        kwargs[name] = value
    return event_type(time=time, **kwargs)


# ----------------------------------------------------------------------
# Trace codecs

def trace_to_json(trace: "PlatformTrace", indent: int | None = None) -> str:
    """The whole trace as a JSON document."""
    document = {
        "format_version": FORMAT_VERSION,
        "events": [event_to_dict(event) for event in trace],
    }
    return json.dumps(document, indent=indent)


def trace_from_json(
    text: str, store: "TraceStore | None" = None
) -> "PlatformTrace":
    """Parse a JSON document back into an indexed trace.

    ``store`` selects the storage backend of the restored trace
    (in-memory when not given).
    """
    from repro.core.trace import PlatformTrace

    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise TraceError(f"invalid trace JSON: {error}") from None
    if not isinstance(document, dict) or "events" not in document:
        raise TraceError("trace JSON must be an object with an 'events' list")
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format version {version!r} "
            f"(supported: {FORMAT_VERSION})"
        )
    return PlatformTrace(
        (event_from_dict(item) for item in document["events"]), store=store
    )


def save_trace(
    trace: "PlatformTrace",
    path: str | os.PathLike[str],
    segment_events: int = 4096,
    backend: str | None = None,
) -> str:
    """Capture a trace as an on-disk log at ``path``.

    ``backend`` selects ``"persistent"`` (JSONL segments, the default)
    or ``"sqlite"`` (single indexed database file); ``None`` infers it
    from the path suffix (see
    :func:`repro.core.trace.infer_disk_backend`).  Returns the log
    path.  The adapter workflow for real platform logs: export once
    with this, then :func:`load_trace` (or ``PlatformTrace.open``)
    forever after.
    """
    from repro.core.trace import make_disk_store

    with make_disk_store(
        path, backend, segment_events=segment_events
    ) as capture:
        # One transaction on backends that batch (sqlite), a plain
        # write-through loop elsewhere.
        capture.append_batch(trace)
        return capture.save()


def load_trace(
    path: str | os.PathLike[str], store: "TraceStore | None" = None
) -> "PlatformTrace":
    """Reopen a saved trace log (JSONL segments or SQLite, detected).

    Without ``store`` the returned trace stays backed by the reopened
    on-disk store (appends continue the log); passing a store re-homes
    the events into that backend instead.
    """
    from repro.core.store import open_store
    from repro.core.trace import PlatformTrace

    opened = open_store(path)
    if store is None:
        return PlatformTrace(store=opened)
    trace = PlatformTrace(store=store)
    trace.extend(opened.events)
    opened.close()  # type: ignore[attr-defined]
    return trace
