"""Worker compensation strategies.

The paper's Section 4.2 agenda includes reviewing "strategies for worker
compensation ... to assess their discriminatory power".  This package
implements the catalogue:

* :class:`FixedRewardScheme` — pay the posted reward iff accepted (the
  AMT default);
* :class:`QualityBasedScheme` — pay scales with contribution quality
  (Wang, Ipeirotis & Provost [21]);
* :class:`HourlyFloorScheme` — guarantee a minimum wage per work tick
  (Bederson & Quinn's fair-wage position [2]);
* :class:`PartialCreditScheme` — rejected work still earns a fraction
  (cushions wrongful rejection);
* adversarial schemes in :mod:`repro.compensation.discriminatory` that
  inject the Section 3.1.1 compensation abuses for axiom testing.
"""

from repro.compensation.base import CompensationScheme, describe_scheme
from repro.compensation.bonus import BonusPolicy, RenegingBonusPolicy, SteadfastBonusPolicy
from repro.compensation.discriminatory import (
    AttributeBiasedScheme,
    DelayedPaymentScheme,
    WageTheftScheme,
)
from repro.compensation.fixed import FixedRewardScheme, PartialCreditScheme
from repro.compensation.hourly import HourlyFloorScheme
from repro.compensation.quality_based import QualityBasedScheme

__all__ = [
    "AttributeBiasedScheme",
    "BonusPolicy",
    "CompensationScheme",
    "DelayedPaymentScheme",
    "FixedRewardScheme",
    "HourlyFloorScheme",
    "PartialCreditScheme",
    "QualityBasedScheme",
    "RenegingBonusPolicy",
    "SteadfastBonusPolicy",
    "WageTheftScheme",
    "describe_scheme",
]
