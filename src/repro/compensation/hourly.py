"""Hourly-floor pricing: a minimum wage per tick of work.

Bederson & Quinn [2] and the Turkopticon/Crowd-Workers tooling [3, 9]
revolve around effective hourly wage.  This scheme tops accepted work
up to ``floor_per_tick x work_time`` so slow tasks cannot silently pay
below a living rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entities import Contribution, Task
from repro.errors import CompensationError


@dataclass(frozen=True)
class HourlyFloorScheme:
    """Accepted pay = max(task reward, floor x work_time)."""

    floor_per_tick: float = 0.05
    pay_rejected: bool = False
    name: str = "hourly_floor"

    def __post_init__(self) -> None:
        if self.floor_per_tick < 0:
            raise CompensationError("floor_per_tick must be non-negative")

    def price(self, task: Task, contribution: Contribution, accepted: bool) -> float:
        work_time = contribution.work_time if contribution.work_time else task.duration
        floor = self.floor_per_tick * work_time
        if accepted:
            return max(task.reward, floor)
        return floor if self.pay_rejected else 0.0
