"""Bonus policies: promising and (not) paying bonuses.

Section 3.1.1: "a requester promises to provide a bonus when a worker
completes a series of tasks but does not do so in the end."  A bonus
policy decides, per worker, whether to promise a streak bonus and
whether to honour it; the reneging variant is the injection used by the
Axiom 3 bonus check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol

from repro.errors import CompensationError


class BonusPolicy(Protocol):
    """Decides bonus promises and whether they are honoured."""

    name: str

    def promise_amount(self, completed_tasks: int) -> float | None:
        """Bonus to promise after ``completed_tasks`` completions
        (None = no promise at this point)."""
        ...

    def honours_promise(self, rng: random.Random) -> bool:
        """Whether a due promise is actually paid."""
        ...


@dataclass(frozen=True)
class SteadfastBonusPolicy:
    """Promises a bonus every ``streak`` completions and always pays."""

    streak: int = 5
    amount: float = 0.5
    name: str = "steadfast_bonus"

    def __post_init__(self) -> None:
        if self.streak < 1:
            raise CompensationError("streak must be >= 1")
        if self.amount <= 0:
            raise CompensationError("bonus amount must be positive")

    def promise_amount(self, completed_tasks: int) -> float | None:
        if completed_tasks > 0 and completed_tasks % self.streak == 0:
            return self.amount
        return None

    def honours_promise(self, rng: random.Random) -> bool:
        return True


@dataclass(frozen=True)
class RenegingBonusPolicy:
    """Promises like the steadfast policy but pays each due bonus only
    with probability ``honour_probability`` — the reneging abuse."""

    streak: int = 5
    amount: float = 0.5
    honour_probability: float = 0.3
    name: str = "reneging_bonus"

    def __post_init__(self) -> None:
        if self.streak < 1:
            raise CompensationError("streak must be >= 1")
        if self.amount <= 0:
            raise CompensationError("bonus amount must be positive")
        if not 0.0 <= self.honour_probability <= 1.0:
            raise CompensationError("honour_probability must be in [0, 1]")

    def promise_amount(self, completed_tasks: int) -> float | None:
        if completed_tasks > 0 and completed_tasks % self.streak == 0:
            return self.amount
        return None

    def honours_promise(self, rng: random.Random) -> bool:
        return rng.random() < self.honour_probability
