"""Fixed-reward and partial-credit pricing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entities import Contribution, Task
from repro.errors import CompensationError


@dataclass(frozen=True)
class FixedRewardScheme:
    """Pay the posted reward iff the contribution was accepted.

    The AMT default.  Fair under Axiom 3 between similar contributions
    *provided review itself is fair* — an unfair review policy turns
    this scheme into wage theft downstream, which is exactly the
    inter-process dependency the paper highlights.
    """

    name: str = "fixed_reward"

    def price(self, task: Task, contribution: Contribution, accepted: bool) -> float:
        return task.reward if accepted else 0.0


@dataclass(frozen=True)
class PartialCreditScheme:
    """Accepted work earns the full reward; rejected work still earns
    ``rejected_fraction`` of it — cushioning wrongful rejection (the
    McInnis et al. [17] 'taking a hit' mitigation)."""

    rejected_fraction: float = 0.25
    name: str = "partial_credit"

    def __post_init__(self) -> None:
        if not 0.0 <= self.rejected_fraction <= 1.0:
            raise CompensationError("rejected_fraction must be in [0, 1]")

    def price(self, task: Task, contribution: Contribution, accepted: bool) -> float:
        if accepted:
            return task.reward
        return task.reward * self.rejected_fraction
