"""Compensation scheme protocol.

A scheme prices one reviewed contribution.  Schemes are pure functions
of (task, contribution, accepted) — statelessness keeps Axiom 3's
"similar contributions, same reward" property checkable: any two calls
with similar inputs must yield similar outputs unless the scheme is
deliberately discriminatory.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.entities import Contribution, Task


class CompensationScheme(Protocol):
    """Prices a reviewed contribution (compatible with
    :class:`repro.platform.market.PricingScheme`)."""

    name: str

    def price(
        self, task: Task, contribution: Contribution, accepted: bool
    ) -> float: ...


def describe_scheme(scheme: CompensationScheme) -> str:
    """One-line human-readable description (used in disclosures)."""
    doc = (type(scheme).__doc__ or "").strip().splitlines()
    summary = doc[0] if doc else "compensation scheme"
    return f"{scheme.name}: {summary}"
