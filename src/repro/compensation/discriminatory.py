"""Adversarial compensation schemes — the Section 3.1.1 abuses.

These schemes exist so experiments can *inject* compensation
discrimination and verify the Axiom 3 checker catches it.  They are the
negative controls of the E3/E4 benchmarks, not recommendations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.entities import Contribution, Task
from repro.errors import CompensationError


@dataclass(frozen=True)
class AttributeBiasedScheme:
    """Pays workers in ``underpaid_workers`` only ``bias_fraction`` of
    what the base amount would be — same contribution, smaller reward,
    a direct Axiom 3 violation (e.g. the collaborative-task scenario
    where one contributor earns less for equal work).

    The worker set is resolved by id because schemes price from the
    contribution alone; callers build the set from declared attributes.
    """

    underpaid_workers: frozenset[str]
    bias_fraction: float = 0.5
    name: str = "attribute_biased"

    def __post_init__(self) -> None:
        if not 0.0 <= self.bias_fraction <= 1.0:
            raise CompensationError("bias_fraction must be in [0, 1]")

    def price(self, task: Task, contribution: Contribution, accepted: bool) -> float:
        base = task.reward if accepted else 0.0
        if contribution.worker_id in self.underpaid_workers:
            return base * self.bias_fraction
        return base


@dataclass
class WageTheftScheme:
    """Randomly refuses to pay for accepted work with probability
    ``theft_probability`` — the 'requester rejects valid work and does
    not pay' abuse, moved to the payment step."""

    theft_probability: float = 0.3
    seed: int = 0
    name: str = "wage_theft"
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.theft_probability <= 1.0:
            raise CompensationError("theft_probability must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def price(self, task: Task, contribution: Contribution, accepted: bool) -> float:
        if not accepted:
            return 0.0
        if self._rng.random() < self.theft_probability:
            return 0.0
        return task.reward


@dataclass(frozen=True)
class DelayedPaymentScheme:
    """Pays in full but flags a contractual delay of ``delay_ticks``.

    The amount is unchanged; the *delay* is the discrimination ("delayed
    payment" in [2, 17]).  The platform reads ``delay_ticks`` to
    schedule the PaymentIssued event late, which the Axiom 6 checker
    compares against the requester's declared payment delay.
    """

    delay_ticks: int = 50
    name: str = "delayed_payment"

    def __post_init__(self) -> None:
        if self.delay_ticks < 0:
            raise CompensationError("delay_ticks must be non-negative")

    def price(self, task: Task, contribution: Contribution, accepted: bool) -> float:
        return task.reward if accepted else 0.0
