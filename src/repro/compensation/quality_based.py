"""Quality-based pricing (Wang, Ipeirotis & Provost [21]).

"A quality-based reward scheme provides compensation that depends on
the quality of a worker's contribution."  Pay interpolates between a
floor and the full reward as quality rises above a minimum bar; below
the bar (or when quality is unmeasurable and the work rejected) pay is
zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entities import Contribution, Task
from repro.errors import CompensationError


@dataclass(frozen=True)
class QualityBasedScheme:
    """Linear quality-to-pay mapping above a quality bar.

    * quality >= ``full_quality``      -> full reward
    * quality <= ``minimum_quality``   -> ``floor_fraction`` x reward if
      accepted, else 0
    * in between                       -> linear interpolation
    """

    minimum_quality: float = 0.3
    full_quality: float = 0.9
    floor_fraction: float = 0.2
    name: str = "quality_based"

    def __post_init__(self) -> None:
        if not 0.0 <= self.minimum_quality < self.full_quality <= 1.0:
            raise CompensationError(
                "need 0 <= minimum_quality < full_quality <= 1, got "
                f"{self.minimum_quality} and {self.full_quality}"
            )
        if not 0.0 <= self.floor_fraction <= 1.0:
            raise CompensationError("floor_fraction must be in [0, 1]")

    def price(self, task: Task, contribution: Contribution, accepted: bool) -> float:
        if not accepted:
            return 0.0
        quality = contribution.quality
        if quality is None:
            return task.reward  # unmeasurable quality: pay in full
        if quality >= self.full_quality:
            return task.reward
        if quality <= self.minimum_quality:
            return task.reward * self.floor_fraction
        span = self.full_quality - self.minimum_quality
        fraction = self.floor_fraction + (1.0 - self.floor_fraction) * (
            (quality - self.minimum_quality) / span
        )
        return task.reward * fraction
