"""The findings model shared by ``trace verify`` and the report sinks.

A :class:`Finding` is one concrete defect (or recoverable oddity) a
deep integrity sweep located in an on-disk trace store: what check
fired, how severe it is, where in the store it sits, and — when the
damage can be pinned to sequence numbers — exactly which events it
affects.  A :class:`VerifyResult` aggregates one sweep's findings with
enough context (path, backend, how much was examined) for an operator
to decide between "ignore", "repair", and "restore from backup".

The model is deliberately exporter-shaped: ``repro.report`` renders a
``VerifyResult`` through the same CSV/JSONL/Markdown/HTML sinks as an
:class:`~repro.core.audit.AuditReport`, so audit output and forensics
output land in the same operator workflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Finding severities, mildest first.  ``warning`` marks recoverable
#: oddities (a crash-torn tail the store itself would repair on open);
#: ``error`` marks real damage a plain ``open`` would either die on or
#: silently misread.
FINDING_SEVERITIES: tuple[str, ...] = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One defect located by a deep integrity check."""

    #: Stable machine name of the check that fired, e.g.
    #: ``"payload-json"``, ``"seq-gap"``, ``"entity-index-missing"``.
    check: str
    #: ``"error"`` or ``"warning"`` (see :data:`FINDING_SEVERITIES`).
    severity: str
    #: Human-readable position, e.g. ``"events.seq=42"`` or
    #: ``"events-00001.jsonl:17"``.
    location: str
    #: What is wrong, in one sentence.
    message: str
    #: Affected global sequence numbers, when the damage pins to any.
    seqs: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in FINDING_SEVERITIES:
            raise ValueError(
                f"unknown finding severity {self.severity!r}; "
                f"known: {', '.join(FINDING_SEVERITIES)}"
            )

    def describe(self) -> str:
        """A single-line human-readable description."""
        return (
            f"[{self.check}][{self.severity}] {self.location}: {self.message}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "check": self.check,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
            "seqs": list(self.seqs),
        }


@dataclass(frozen=True)
class VerifyResult:
    """The outcome of one deep integrity sweep over an on-disk store."""

    path: str
    backend: str  # "sqlite" | "persistent"
    #: Event records examined (rows / non-blank lines), valid or not.
    events_examined: int
    #: Records that decoded to well-formed events.
    events_valid: int
    findings: tuple[Finding, ...] = ()

    @property
    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == "warning")

    @property
    def ok(self) -> bool:
        """True when no *error* finding fired (warnings allowed — they
        mark conditions a plain ``open`` recovers from on its own)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when the sweep found nothing at all."""
        return not self.findings

    def counts_by_check(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.check] = counts.get(finding.check, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "backend": self.backend,
            "events_examined": self.events_examined,
            "events_valid": self.events_valid,
            "ok": self.ok,
            "clean": self.clean,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "counts_by_check": self.counts_by_check(),
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def summary_lines(self) -> list[str]:
        verdict = "CLEAN" if self.clean else ("OK*" if self.ok else "DAMAGED")
        lines = [
            f"verify {self.path} ({self.backend} backend): {verdict} — "
            f"{self.events_valid}/{self.events_examined} event record(s) "
            f"valid, {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        for finding in self.findings:
            lines.append(f"  {finding.describe()}")
        return lines


class _FindingCollector:
    """Mutable accumulator the verify sweeps report into."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []
        self.examined = 0
        self.valid = 0

    def add(
        self,
        check: str,
        severity: str,
        location: str,
        message: str,
        seqs: "tuple[int, ...] | list[int]" = (),
    ) -> None:
        self.findings.append(
            Finding(
                check=check,
                severity=severity,
                location=location,
                message=message,
                seqs=tuple(seqs),
            )
        )

    def result(self, path: str, backend: str) -> VerifyResult:
        return VerifyResult(
            path=path,
            backend=backend,
            events_examined=self.examined,
            events_valid=self.valid,
            findings=tuple(self.findings),
        )
