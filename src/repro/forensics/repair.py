"""``trace repair``: best-effort salvage of a corrupted trace store.

Repair never touches the damaged source.  It walks the source's raw
on-disk records in sequence order, keeps **every verifiable event** —
one that decodes through the event codec, still satisfies the trace
invariants (time order, single posting per task id) against the events
already salvaged, and references no entity whose introduction event
was itself lost — and writes the survivors into a fresh destination
store.  The dangling-reference rule is what keeps the salvaged store
*auditable*: an assignment to a worker whose registration is gone has
lost its evidence, and keeping it would crash every axiom that looks
the worker up.  Everything that cannot be kept is accounted for in a
:class:`LossManifest`: the exact (inclusive) seq ranges dropped and,
per range, why.  Nothing disappears silently.

The salvaged store is immediately re-verified
(:func:`~repro.forensics.verify.verify_store`), so the returned
:class:`RepairResult` carries proof the destination is sound, and —
because the destination replays the surviving events through the
normal ``append`` path — the destination audits identically to an
in-memory trace of the same surviving events.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.serialize import event_from_dict
from repro.core.store.persistent import (
    _META_NAME,
    _SEGMENT_PREFIX,
    _SEGMENT_SUFFIX,
    _segment_name,
)
from repro.core.store.sqlite import is_sqlite_trace
from repro.core.trace import make_disk_store
from repro.errors import ForensicsError, ReproError, TraceError
from repro.forensics.findings import VerifyResult
from repro.forensics.verify import _segment_index, verify_store


@dataclass(frozen=True)
class DroppedRange:
    """A contiguous run of source seqs dropped for one reason."""

    start_seq: int
    end_seq: int  # inclusive
    reason: str

    @property
    def count(self) -> int:
        return self.end_seq - self.start_seq + 1

    def describe(self) -> str:
        span = (
            f"seq {self.start_seq}"
            if self.start_seq == self.end_seq
            else f"seqs {self.start_seq}..{self.end_seq}"
        )
        return f"{span} ({self.count} event(s)): {self.reason}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "start_seq": self.start_seq,
            "end_seq": self.end_seq,
            "count": self.count,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class LossManifest:
    """Exact accounting of what a repair could not salvage."""

    source: str
    dest: str
    source_backend: str
    dest_backend: str
    events_salvaged: int
    events_dropped: int
    dropped: tuple[DroppedRange, ...] = ()

    @property
    def lossless(self) -> bool:
        return self.events_dropped == 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "format_version": MANIFEST_FORMAT_VERSION,
            "source": self.source,
            "dest": self.dest,
            "source_backend": self.source_backend,
            "dest_backend": self.dest_backend,
            "events_salvaged": self.events_salvaged,
            "events_dropped": self.events_dropped,
            "lossless": self.lossless,
            "dropped": [dropped.as_dict() for dropped in self.dropped],
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"repair {self.source} ({self.source_backend}) -> "
            f"{self.dest} ({self.dest_backend}): "
            f"{self.events_salvaged} event(s) salvaged, "
            f"{self.events_dropped} dropped"
        ]
        for dropped in self.dropped:
            lines.append(f"  dropped {dropped.describe()}")
        return lines


#: Version stamp of the loss-manifest JSON document.
MANIFEST_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RepairResult:
    """Everything a repair produced: the salvaged store's path, the
    loss accounting, and a fresh verify pass over the destination."""

    manifest: LossManifest
    manifest_path: str
    dest_path: str
    verify: VerifyResult

    @property
    def ok(self) -> bool:
        """True when the salvaged destination itself verifies clean of
        errors — the repair produced a sound store (possibly lossy)."""
        return self.verify.ok


def manifest_path_for(dest: str | os.PathLike[str]) -> str:
    """Default loss-manifest location: next to the destination."""
    fspath = os.fspath(dest).rstrip("/").rstrip(os.sep)
    return f"{fspath}.loss.json"


class _RangeBuilder:
    """Merge per-seq drop reasons into contiguous same-reason ranges."""

    def __init__(self) -> None:
        self._ranges: list[DroppedRange] = []

    def drop(self, seq: int, reason: str) -> None:
        if self._ranges:
            last = self._ranges[-1]
            if last.end_seq == seq - 1 and last.reason == reason:
                self._ranges[-1] = DroppedRange(
                    last.start_seq, seq, reason
                )
                return
        self._ranges.append(DroppedRange(seq, seq, reason))

    @property
    def ranges(self) -> tuple[DroppedRange, ...]:
        return tuple(self._ranges)

    @property
    def total(self) -> int:
        return sum(r.count for r in self._ranges)


# Each record is (seq, event-or-None, drop-reason-or-None).
_Record = "tuple[int, object | None, str | None]"

#: (attribute carrying a full entity snapshot, entity kind, id field).
_INTRODUCTIONS: tuple[tuple[str, str, str], ...] = (
    ("worker", "worker", "worker_id"),
    ("requester", "requester", "requester_id"),
    ("task", "task", "task_id"),
    ("contribution", "contribution", "contribution_id"),
)

#: (id attribute, entity kind) pairs that *reference* an entity.
_REFERENCES: tuple[tuple[str, str], ...] = (
    ("worker_id", "worker"),
    ("task_id", "task"),
    ("requester_id", "requester"),
    ("contribution_id", "contribution"),
)


def _introduced(event) -> "set[tuple[str, str]]":
    """Entities this event brings into existence (full snapshots)."""
    out = set()
    for attribute, kind, id_field in _INTRODUCTIONS:
        entity = getattr(event, attribute, None)
        if entity is not None:
            out.add((kind, getattr(entity, id_field)))
    return out


def _referenced(event) -> "set[tuple[str, str]]":
    """Entities this event points at by id (must already exist)."""
    refs = set()
    for attribute, kind in _REFERENCES:
        value = getattr(event, attribute, None)
        if value:
            refs.add((kind, value))
    for task_id in getattr(event, "task_ids", ()) or ():
        refs.add(("task", task_id))
    contribution = getattr(event, "contribution", None)
    if contribution is not None:
        for attribute, kind in (("worker_id", "worker"),
                                ("task_id", "task")):
            value = getattr(contribution, attribute, None)
            if value:
                refs.add((kind, value))
    return refs


def _iter_sqlite_records(fspath: str) -> Iterator[tuple]:
    try:
        conn = sqlite3.connect(f"file:{fspath}?mode=ro", uri=True)
    except sqlite3.Error as error:
        raise ForensicsError(
            f"cannot open {fspath!r} read-only for salvage: {error}"
        ) from error
    try:
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "events" not in tables:
            raise ForensicsError(
                f"{fspath!r} has no events table; nothing to salvage"
            )
        expected = 0
        cursor = conn.execute(
            "SELECT seq, payload FROM events ORDER BY seq"
        )
        while True:
            try:
                row = cursor.fetchone()
            except sqlite3.DatabaseError as error:
                # Page-level damage killed the scan; everything beyond
                # this point is unreachable and of unknown extent.
                yield (
                    expected, None,
                    f"row scan aborted by SQLite ({error}); events from "
                    f"seq {expected} on are unreachable",
                )
                return
            if row is None:
                return
            seq, payload = row
            for missing in range(expected, seq):
                yield missing, None, "missing from events table"
            expected = seq + 1
            try:
                event = event_from_dict(json.loads(payload))
            except (json.JSONDecodeError, TypeError) as error:
                yield seq, None, f"payload is not valid JSON: {error}"
                continue
            except (TraceError, KeyError, ValueError) as error:
                yield seq, None, (
                    f"payload does not decode to an event: {error}"
                )
                continue
            yield seq, event, None
    finally:
        conn.close()


def _iter_persistent_records(fspath: str) -> Iterator[tuple]:
    meta_path = os.path.join(fspath, _META_NAME)
    segment_events: "int | None" = None
    try:
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
        if isinstance(meta, dict) and isinstance(
            meta.get("segment_events"), int
        ):
            segment_events = meta["segment_events"]
    except (OSError, json.JSONDecodeError):
        pass  # salvage proceeds from the segment files alone
    segments = sorted(
        (
            name
            for name in os.listdir(fspath)
            if name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        ),
        key=_segment_index,
    )
    if not segments:
        raise ForensicsError(
            f"{fspath!r} contains no event segments; nothing to salvage"
        )
    seq = 0
    next_index = 0
    for name in segments:
        index = _segment_index(name)
        while next_index < index:
            # A whole interior segment file is gone.  Non-final
            # segments hold exactly segment_events lines, so when the
            # manifest is readable the loss extent is exact.
            missing = _segment_name(next_index)
            if segment_events is not None:
                for _ in range(segment_events):
                    yield seq, None, f"segment file {missing} is missing"
                    seq += 1
            else:
                yield seq, None, (
                    f"segment file {missing} is missing and "
                    f"{_META_NAME} is unreadable; loss extent unknown"
                )
                seq += 1
            next_index += 1
        next_index = index + 1
        with open(os.path.join(fspath, name), "rb") as handle:
            content = handle.read()
        for line_number, raw in enumerate(
            content.splitlines(keepends=True), start=1
        ):
            stripped = raw.strip()
            if not stripped:
                continue
            location = f"{name}:{line_number}"
            try:
                data = json.loads(stripped.decode("utf-8"))
                if not isinstance(data, dict):
                    raise TraceError(
                        f"expected a JSON object, got {type(data).__name__}"
                    )
                event = event_from_dict(data)
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                yield seq, None, (
                    f"{location}: line is not a valid JSON object: {error}"
                )
                seq += 1
                continue
            except (TraceError, KeyError, TypeError, ValueError) as error:
                yield seq, None, (
                    f"{location}: line does not decode to an event: {error}"
                )
                seq += 1
                continue
            yield seq, event, None
            seq += 1


def repair_store(
    source: str | os.PathLike[str],
    dest: str | os.PathLike[str],
    *,
    dest_backend: str | None = None,
    segment_events: int = 4096,
    manifest_path: str | os.PathLike[str] | None = None,
) -> RepairResult:
    """Salvage a damaged store at ``source`` into a fresh ``dest``.

    The source is opened read-only and never modified.  ``dest`` must
    not exist yet (repair refuses to overwrite anything).  The
    destination backend follows :func:`~repro.core.trace.make_disk_store`
    rules — explicit ``dest_backend`` wins, else the path suffix
    decides.  The loss manifest is written as JSON to ``manifest_path``
    (default ``<dest>.loss.json``) and also returned.

    Raises :class:`~repro.errors.ForensicsError` when the source is not
    a recognisable trace store, holds no event records at all, or the
    destination is unusable.  Damage *inside* a recognisable source
    never raises — it becomes manifest entries.
    """
    src = os.fspath(source)
    destp = os.fspath(dest)
    if os.path.isdir(src):
        if not os.path.exists(os.path.join(src, _META_NAME)) and not any(
            name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
            for name in os.listdir(src)
        ):
            raise ForensicsError(
                f"directory {src!r} is not a trace log (no {_META_NAME} "
                "and no event segments); nothing to salvage"
            )
        source_backend = "persistent"
        records = _iter_persistent_records(src)
    elif is_sqlite_trace(src):
        source_backend = "sqlite"
        records = _iter_sqlite_records(src)
    elif os.path.isfile(src):
        raise ForensicsError(
            f"{src!r} is neither a JSONL segment log directory nor a "
            "SQLite trace database; nothing to salvage"
        )
    else:
        raise ForensicsError(f"no trace store at {src!r}")

    if os.path.exists(destp):
        raise ForensicsError(
            f"repair destination {destp!r} already exists; repair only "
            "writes into a fresh store, it never overwrites"
        )
    out = make_disk_store(destp, dest_backend, segment_events=segment_events)
    resolved_dest_backend = out.backend_name

    drops = _RangeBuilder()
    salvaged = 0
    known: set[tuple[str, str]] = set()
    try:
        for seq, event, reason in records:
            if event is None:
                drops.drop(seq, reason)
                continue
            dangling = _referenced(event) - _introduced(event) - known
            if dangling:
                lost = ", ".join(
                    f"{kind} {entity_id!r}"
                    for kind, entity_id in sorted(dangling)
                )
                drops.drop(seq, f"references entity lost earlier: {lost}")
                continue
            try:
                out.append(event)
            except ReproError as error:
                drops.drop(seq, f"conflicts with salvaged prefix: {error}")
                continue
            salvaged += 1
            known |= _introduced(event)
        out.save()
    finally:
        out.close()

    manifest = LossManifest(
        source=src,
        dest=destp,
        source_backend=source_backend,
        dest_backend=resolved_dest_backend,
        events_salvaged=salvaged,
        events_dropped=drops.total,
        dropped=drops.ranges,
    )
    resolved_manifest = os.fspath(
        manifest_path if manifest_path is not None
        else manifest_path_for(destp)
    )
    _write_manifest(manifest, resolved_manifest)
    return RepairResult(
        manifest=manifest,
        manifest_path=resolved_manifest,
        dest_path=destp,
        verify=verify_store(destp),
    )


def _write_manifest(manifest: LossManifest, path: str) -> None:
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as error:
        raise ForensicsError(
            f"cannot write loss manifest to {path!r}: {error}"
        ) from error


def read_manifest(path: str | os.PathLike[str]) -> LossManifest:
    """Load a saved ``*.loss.json`` manifest back into a
    :class:`LossManifest` (the inverse of what :func:`repair_store`
    writes), so past repairs can be re-rendered through the report
    sinks — ``trace report --what repair``.  Anything less than a
    complete, well-formed, version-matched document raises
    :class:`~repro.errors.ForensicsError`: a garbled loss accounting
    is worse than none.
    """
    fspath = os.fspath(path)
    try:
        with open(fspath, encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise ForensicsError(f"no loss manifest at {fspath!r}") from None
    except (OSError, json.JSONDecodeError) as error:
        raise ForensicsError(
            f"loss manifest {fspath!r} is unreadable or not JSON "
            f"({error})"
        ) from None
    if not isinstance(document, dict):
        raise ForensicsError(
            f"loss manifest {fspath!r} is not a JSON object"
        )
    version = document.get("format_version")
    if version != MANIFEST_FORMAT_VERSION:
        raise ForensicsError(
            f"unsupported loss-manifest version {version!r} in "
            f"{fspath!r} (supported: {MANIFEST_FORMAT_VERSION})"
        )
    try:
        source = document["source"]
        dest = document["dest"]
        source_backend = document["source_backend"]
        dest_backend = document["dest_backend"]
        events_salvaged = document["events_salvaged"]
        events_dropped = document["events_dropped"]
        dropped_raw = document["dropped"]
    except KeyError as error:
        raise ForensicsError(
            f"loss manifest {fspath!r} is missing field {error}"
        ) from None
    if (
        not all(
            isinstance(value, str)
            for value in (source, dest, source_backend, dest_backend)
        )
        or not isinstance(events_salvaged, int)
        or not isinstance(events_dropped, int)
        or not isinstance(dropped_raw, list)
    ):
        raise ForensicsError(
            f"loss manifest {fspath!r} has malformed fields"
        )
    dropped = []
    for entry in dropped_raw:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("start_seq"), int)
            or not isinstance(entry.get("end_seq"), int)
            or not isinstance(entry.get("reason"), str)
            or entry["end_seq"] < entry["start_seq"]
        ):
            raise ForensicsError(
                f"loss manifest {fspath!r} has a malformed dropped "
                f"range: {entry!r}"
            )
        dropped.append(
            DroppedRange(
                start_seq=entry["start_seq"],
                end_seq=entry["end_seq"],
                reason=entry["reason"],
            )
        )
    manifest = LossManifest(
        source=source,
        dest=dest,
        source_backend=source_backend,
        dest_backend=dest_backend,
        events_salvaged=events_salvaged,
        events_dropped=events_dropped,
        dropped=tuple(dropped),
    )
    if events_dropped != sum(r.count for r in manifest.dropped):
        raise ForensicsError(
            f"loss manifest {fspath!r} is inconsistent: events_dropped "
            f"is {events_dropped} but the dropped ranges cover "
            f"{sum(r.count for r in manifest.dropped)} event(s)"
        )
    return manifest
