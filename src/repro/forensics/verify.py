"""``trace verify``: deep, read-only integrity sweeps per backend.

Opening a store runs only the checks that keep *opening* safe; a
corrupted payload mid-file is simply fatal there.  These sweeps instead
read the raw on-disk artifacts directly (read-only — verify never
mutates, not even the torn-tail repair ``PersistentTraceStore.open``
would perform) and report **everything** wrong at once as
:class:`~repro.forensics.findings.Finding`\\ s:

SQLite (:func:`verify_sqlite`):

* SQLite-level page integrity (``PRAGMA integrity_check``),
* ``meta`` format version,
* per-row payload JSON validity and event-codec decodability,
* ``seq`` contiguity from 0 (gaps name the exact missing ranges) and
  time monotonicity,
* ``events`` column ↔ payload cross-validation (``kind``/``time``
  columns must match the decoded payload), and
* ``event_entities`` ↔ payload cross-validation both ways: every
  touched entity of every decoded event must be indexed, every index
  row must correspond to a real touched entity of a real event.

Persistent JSONL segments (:func:`verify_persistent`):

* ``meta.json`` readability, shape, and format version,
* segment-file naming contiguity (a missing middle segment is damage),
* per-segment line sweeps: UTF-8/JSON validity and event-codec
  decodability of every line, with a *final unterminated* line graded
  as a recoverable ``torn-tail`` warning (exactly the case ``open``
  repairs) and any other bad line as an error,
* segment-fullness reconciliation against ``meta.json`` — every
  non-final segment must hold exactly ``segment_events`` lines,
* trace-level invariants across segments: time monotonicity and
  single-posting of task ids.

Both sweeps return a :class:`~repro.forensics.findings.VerifyResult`;
:func:`verify_store` dispatches on what is at the path.
"""

from __future__ import annotations

import json
import os
import sqlite3

from repro.core.serialize import event_from_dict
from repro.core.store.base import collect_touched
from repro.core.store.persistent import (
    LOG_FORMAT_VERSION,
    _META_NAME,
    _SEGMENT_PREFIX,
    _SEGMENT_SUFFIX,
)
from repro.core.store.sqlite import DB_FORMAT_VERSION, is_sqlite_trace
from repro.errors import ForensicsError, TraceError
from repro.forensics.findings import VerifyResult, _FindingCollector

#: entity_kind label -> TouchedEntities attribute, the index vocabulary.
_ENTITY_ATTRS: tuple[tuple[str, str], ...] = (
    ("worker", "worker_ids"),
    ("task", "task_ids"),
    ("requester", "requester_ids"),
    ("contribution", "contribution_ids"),
)


def verify_store(path: str | os.PathLike[str]) -> VerifyResult:
    """Deep-verify an on-disk trace store, detecting its format.

    Never mutates anything; corruption becomes findings, not
    exceptions.  Raises :class:`~repro.errors.ForensicsError` only when
    ``path`` is not recognisably a trace store of either format.
    """
    fspath = os.fspath(path)
    if os.path.isdir(fspath):
        if not os.path.exists(os.path.join(fspath, _META_NAME)):
            raise ForensicsError(
                f"directory {fspath!r} is not a trace log: it has no "
                f"{_META_NAME} manifest, so there is nothing to verify"
            )
        return verify_persistent(fspath)
    if is_sqlite_trace(fspath):
        return verify_sqlite(fspath)
    if os.path.isfile(fspath):
        raise ForensicsError(
            f"{fspath!r} is neither a JSONL segment log directory nor a "
            "SQLite trace database; nothing to verify"
        )
    raise ForensicsError(f"no trace store at {fspath!r}")


# ----------------------------------------------------------------------
# SQLite


def _expected_entity_rows(event) -> set[tuple[str, str]]:
    """The ``(entity_id, entity_kind)`` index rows one event demands."""
    touched = collect_touched((event,))
    return {
        (entity_id, kind)
        for kind, attribute in _ENTITY_ATTRS
        for entity_id in getattr(touched, attribute)
    }


def verify_sqlite(path: str | os.PathLike[str]) -> VerifyResult:
    """Deep integrity sweep over a SQLite trace database (read-only)."""
    fspath = os.fspath(path)
    if not os.path.isfile(fspath):
        raise ForensicsError(f"no trace database at {fspath!r}")
    out = _FindingCollector()
    try:
        conn = sqlite3.connect(f"file:{fspath}?mode=ro", uri=True)
    except sqlite3.Error as error:
        out.add(
            "database-unreadable", "error", fspath,
            f"cannot open database read-only: {error}",
        )
        return out.result(fspath, "sqlite")
    try:
        _sqlite_sweep(conn, fspath, out)
    finally:
        conn.close()
    return out.result(fspath, "sqlite")


def _sqlite_sweep(
    conn: sqlite3.Connection, fspath: str, out: _FindingCollector
) -> None:
    # Page-level integrity first: if SQLite itself reports damage the
    # row sweeps below may die mid-scan, so surface its verdict.
    try:
        verdicts = [row[0] for row in conn.execute("PRAGMA integrity_check")]
    except sqlite3.DatabaseError as error:
        out.add(
            "sqlite-integrity", "error", fspath,
            f"PRAGMA integrity_check failed: {error}",
        )
        return
    for verdict in verdicts:
        if verdict != "ok":
            out.add("sqlite-integrity", "error", fspath, str(verdict))
    try:
        _sqlite_row_sweep(conn, fspath, out)
    except sqlite3.DatabaseError as error:
        out.add(
            "database-unreadable", "error", fspath,
            f"row sweep aborted by SQLite: {error}",
        )


def _sqlite_row_sweep(
    conn: sqlite3.Connection, fspath: str, out: _FindingCollector
) -> None:
    tables = {
        row[0]
        for row in conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
    }
    missing = {"meta", "events", "event_entities"} - tables
    if missing:
        out.add(
            "schema-missing", "error", fspath,
            f"trace tables missing: {', '.join(sorted(missing))}",
        )
        return
    row = conn.execute(
        "SELECT value FROM meta WHERE key = 'format_version'"
    ).fetchone()
    version = None if row is None else row[0]
    if version != str(DB_FORMAT_VERSION):
        out.add(
            "format-version", "error", "meta",
            f"format_version is {version!r} "
            f"(supported: {DB_FORMAT_VERSION})",
        )

    decoded: dict[int, object] = {}
    expected_seq = 0
    previous_time: int | None = None
    posted_tasks: dict[str, int] = {}
    for seq, time, kind, payload in conn.execute(
        "SELECT seq, time, kind, payload FROM events ORDER BY seq"
    ):
        out.examined += 1
        location = f"events.seq={seq}"
        if seq != expected_seq:
            missing_range = list(range(expected_seq, seq))
            out.add(
                "seq-gap", "error", location,
                f"sequence jumps from {expected_seq} to {seq}; "
                f"event(s) {expected_seq}..{seq - 1} are missing",
                seqs=missing_range,
            )
        expected_seq = seq + 1
        if previous_time is not None and time < previous_time:
            out.add(
                "time-order", "error", location,
                f"time {time} after time {previous_time}; "
                "traces must be time-ordered",
                seqs=[seq],
            )
        previous_time = time
        try:
            data = json.loads(payload)
        except (json.JSONDecodeError, TypeError) as error:
            out.add(
                "payload-json", "error", location,
                f"payload is not valid JSON: {error}", seqs=[seq],
            )
            continue
        try:
            event = event_from_dict(data)
        except (TraceError, KeyError, TypeError, ValueError) as error:
            out.add(
                "payload-codec", "error", location,
                f"payload does not decode to an event: {error}", seqs=[seq],
            )
            continue
        out.valid += 1
        decoded[seq] = event
        if event.kind != kind:
            out.add(
                "kind-mismatch", "error", location,
                f"kind column says {kind!r} but the payload decodes to "
                f"{event.kind!r}", seqs=[seq],
            )
        if event.time != time:
            out.add(
                "time-mismatch", "error", location,
                f"time column says {time} but the payload says "
                f"{event.time}", seqs=[seq],
            )
        task = getattr(event, "task", None)
        if event.kind == "task_posted" and task is not None:
            first = posted_tasks.setdefault(task.task_id, seq)
            if first != seq:
                out.add(
                    "duplicate-task", "error", location,
                    f"task {task.task_id!r} already posted at seq {first}",
                    seqs=[seq],
                )

    _sqlite_entity_index_sweep(conn, decoded, out)


def _sqlite_entity_index_sweep(
    conn: sqlite3.Connection, decoded: "dict[int, object]", out: _FindingCollector
) -> None:
    """Cross-validate ``event_entities`` against the decoded payloads,
    both directions."""
    actual: dict[int, set[tuple[str, str]]] = {}
    for entity_id, entity_kind, seq in conn.execute(
        "SELECT entity_id, entity_kind, seq FROM event_entities"
    ):
        actual.setdefault(seq, set()).add((entity_id, entity_kind))
    for seq, rows in sorted(actual.items()):
        if seq not in decoded:
            out.add(
                "entity-index-orphan", "error", f"event_entities.seq={seq}",
                f"{len(rows)} index row(s) reference seq {seq}, which has "
                "no decodable event",
                seqs=[seq],
            )
    for seq, event in sorted(decoded.items()):
        expected = _expected_entity_rows(event)
        present = actual.get(seq, set())
        for entity_id, kind in sorted(expected - present):
            out.add(
                "entity-index-missing", "error", f"event_entities.seq={seq}",
                f"touched {kind} {entity_id!r} is not in the entity "
                "index; entity-scoped queries would silently miss this "
                "event",
                seqs=[seq],
            )
        for entity_id, kind in sorted(present - expected):
            out.add(
                "entity-index-extra", "error", f"event_entities.seq={seq}",
                f"index row ({entity_id!r}, {kind!r}) matches no entity "
                "touched by the event at this seq",
                seqs=[seq],
            )


# ----------------------------------------------------------------------
# Persistent JSONL segments


def _segment_index(name: str) -> int:
    return int(name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])


def _read_meta(fspath: str, out: _FindingCollector) -> "int | None":
    """Validate ``meta.json``; returns ``segment_events`` when usable."""
    meta_path = os.path.join(fspath, _META_NAME)
    try:
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        out.add(
            "meta-unreadable", "error", _META_NAME,
            f"manifest is unreadable: {error}",
        )
        return None
    if not isinstance(meta, dict):
        out.add(
            "meta-malformed", "error", _META_NAME,
            f"manifest is not a JSON object (got {type(meta).__name__})",
        )
        return None
    version = meta.get("format_version")
    if version != LOG_FORMAT_VERSION:
        out.add(
            "format-version", "error", _META_NAME,
            f"format_version is {version!r} "
            f"(supported: {LOG_FORMAT_VERSION})",
        )
    segment_events = meta.get("segment_events")
    if not isinstance(segment_events, int) or segment_events < 1:
        out.add(
            "meta-malformed", "error", _META_NAME,
            f"segment_events is {segment_events!r} "
            "(expected a positive integer)",
        )
        return None
    return segment_events


def verify_persistent(path: str | os.PathLike[str]) -> VerifyResult:
    """Deep integrity sweep over a JSONL segment log (read-only)."""
    fspath = os.fspath(path)
    if not os.path.isdir(fspath):
        raise ForensicsError(f"no trace log directory at {fspath!r}")
    out = _FindingCollector()
    segment_events = _read_meta(fspath, out)
    segments = sorted(
        name
        for name in os.listdir(fspath)
        if name.startswith(_SEGMENT_PREFIX)
        and name.endswith(_SEGMENT_SUFFIX)
    )
    for position, name in enumerate(segments):
        if _segment_index(name) != position:
            out.add(
                "segment-gap", "error", name,
                f"expected segment index {position:05d} next but found "
                f"{name}; a whole segment file is missing or misnamed",
            )
            break
    seq = 0
    previous_time: int | None = None
    posted_tasks: dict[str, int] = {}
    for position, name in enumerate(segments):
        last_segment = position == len(segments) - 1
        lines = 0
        with open(os.path.join(fspath, name), "rb") as handle:
            content = handle.read()
        for line_number, raw in enumerate(
            content.splitlines(keepends=True), start=1
        ):
            location = f"{name}:{line_number}"
            unterminated = not raw.endswith(b"\n")
            stripped = raw.strip()
            if not stripped:
                continue
            lines += 1
            out.examined += 1
            try:
                data = json.loads(stripped.decode("utf-8"))
                if not isinstance(data, dict):
                    raise TraceError(
                        f"expected a JSON object, got {type(data).__name__}"
                    )
            except (UnicodeDecodeError, json.JSONDecodeError,
                    TraceError) as error:
                if unterminated and last_segment:
                    out.add(
                        "torn-tail", "warning", location,
                        "final line is truncated mid-write (crash "
                        "mid-append?); open() would drop it and keep "
                        f"the complete prefix ({error})",
                        seqs=[seq],
                    )
                else:
                    out.add(
                        "line-json", "error", location,
                        f"line is not a valid JSON object: {error}",
                        seqs=[seq],
                    )
                seq += 1
                continue
            if unterminated and not last_segment:
                out.add(
                    "line-unterminated", "error", location,
                    "non-final segment ends without a newline; only the "
                    "newest segment may carry a crash-torn tail",
                    seqs=[seq],
                )
            try:
                event = event_from_dict(data)
            except (TraceError, KeyError, TypeError, ValueError) as error:
                out.add(
                    "line-codec", "error", location,
                    f"line does not decode to an event: {error}",
                    seqs=[seq],
                )
                seq += 1
                continue
            out.valid += 1
            if previous_time is not None and event.time < previous_time:
                out.add(
                    "time-order", "error", location,
                    f"time {event.time} after time {previous_time}; "
                    "traces must be time-ordered",
                    seqs=[seq],
                )
            previous_time = event.time
            task = getattr(event, "task", None)
            if event.kind == "task_posted" and task is not None:
                first = posted_tasks.setdefault(task.task_id, seq)
                if first != seq:
                    out.add(
                        "duplicate-task", "error", location,
                        f"task {task.task_id!r} already posted at "
                        f"seq {first}",
                        seqs=[seq],
                    )
            seq += 1
        if segment_events is not None:
            if not last_segment and lines != segment_events:
                out.add(
                    "segment-size", "error", name,
                    f"non-final segment holds {lines} event line(s) but "
                    f"{_META_NAME} says segments roll at {segment_events}; "
                    "lines were lost or injected",
                )
            elif last_segment and lines > segment_events:
                out.add(
                    "segment-size", "error", name,
                    f"final segment holds {lines} event line(s), over the "
                    f"{segment_events}-line roll threshold",
                )
    return out.result(fspath, "persistent")
