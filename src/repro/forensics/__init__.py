"""Store forensics: deep integrity verification and best-effort repair.

``repro.forensics`` is the operator-facing safety net around the
on-disk trace stores:

* :func:`verify_store` (and the per-backend :func:`verify_sqlite` /
  :func:`verify_persistent`) runs **read-only** deep integrity sweeps —
  strictly stronger than the checks ``open`` performs — and reports
  every defect as structured :class:`Finding`\\ s in a
  :class:`VerifyResult`.
* :func:`repair_store` salvages a damaged store into a fresh
  destination, keeping every verifiable event and accounting for every
  loss in a :class:`LossManifest` of exact seq ranges with reasons.

Findings and manifests are exporter-shaped: ``repro.report`` renders
them through the same CSV/JSONL/Markdown/HTML sinks as audit reports.
The CLI surface is ``python -m repro trace verify`` / ``trace repair``.
"""

from repro.forensics.findings import (
    FINDING_SEVERITIES,
    Finding,
    VerifyResult,
)
from repro.forensics.repair import (
    MANIFEST_FORMAT_VERSION,
    DroppedRange,
    LossManifest,
    RepairResult,
    manifest_path_for,
    read_manifest,
    repair_store,
)
from repro.forensics.verify import (
    verify_persistent,
    verify_sqlite,
    verify_store,
)

__all__ = [
    "FINDING_SEVERITIES",
    "Finding",
    "VerifyResult",
    "verify_store",
    "verify_sqlite",
    "verify_persistent",
    "MANIFEST_FORMAT_VERSION",
    "DroppedRange",
    "LossManifest",
    "RepairResult",
    "manifest_path_for",
    "read_manifest",
    "repair_store",
]
