"""``ShardedDeltaAuditEngine``: partitioned delta audits, merged verdicts.

The single-threaded :class:`~repro.core.audit.DeltaAuditEngine` already
pays per new event, but each audit still sweeps its cached work units
serially in one interpreter.  This engine partitions the touched-entity
relation across N shards (:mod:`repro.shard.partition`), lets each
shard fold the delta and re-judge only the owned units it invalidated
(:mod:`repro.shard.checkers`) over a thread or process worker pool
(:mod:`repro.shard.workers`), and key-merges the per-partition verdicts
(:mod:`repro.shard.merge`).  Axioms without a partitionable sweep
(1, 3, 4, 5, and any custom axiom) run on the driver exactly as the
unsharded session runs them, overlapped with the shard judges.

The contract — enforced by
``tests/property/test_property_sharded_audit.py`` over every labelled
scenario × shard counts × store backends × randomised partitions — is
that every :meth:`audit` equals :class:`~repro.core.audit.AuditEngine`
(and therefore :class:`~repro.core.audit.DeltaAuditEngine`) on the same
trace at the same revision: violations, order, opportunity counts.

Typical use::

    engine = ShardedDeltaAuditEngine(shards=4)
    for batch in batches:
        trace.append_batch(batch)
        report = engine.audit(trace)     # == AuditEngine().audit(trace)
    engine.close()

``IngestRunner(audit_jobs=N)`` (CLI ``trace tail --audit --audit-jobs
N``) constructs one per ingest to fan each batch's audit out
per-partition.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import TYPE_CHECKING

from repro.core.audit import AuditReport, DeltaAuditEngine
from repro.core.axioms import AxiomRegistry, TraceDelta, default_registry
from repro.core.store import TraceStore, collect_touched
from repro.core.trace import PlatformTrace, as_trace
from repro.errors import AuditError
from repro.experiments.replication import (
    REPLICATION_BACKENDS,
    resolve_backend,
)
from repro.shard.checkers import supports_partitioning
from repro.shard.merge import merge_axiom_verdicts
from repro.shard.partition import HashPartitioner, Partitioner
from repro.shard.workers import ProcessShardPool, ShardRunner, ThreadShardPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.axioms import Axiom


def default_shards() -> int:
    """Shard count when none is given: one per available core."""
    return max(1, os.cpu_count() or 1)


class ShardedDeltaAuditEngine:
    """Delta audits of one growing trace, partitioned across N shards.

    ``shards`` is the partition count (default: one per core; when a
    ``partitioner`` is supplied its own shard count wins).  ``jobs``
    bounds *thread*-pool concurrency (default: one worker per shard);
    the process backend always forks exactly one long-lived worker per
    shard — its state is per-shard, so pick ``shards`` with the core
    budget in mind there.  ``backend`` is ``"thread"`` (default) or
    ``"process"`` — processes are probed for picklability first and
    degrade to threads with a warning, mirroring
    :func:`repro.experiments.replication.resolve_backend`.  The engine
    holds worker state across audits; call :meth:`close` (or use it as
    a context manager) when done.
    """

    def __init__(
        self,
        shards: int | None = None,
        *,
        jobs: int | None = None,
        backend: str = "thread",
        registry: AxiomRegistry | None = None,
        partitioner: Partitioner | None = None,
    ) -> None:
        if backend not in REPLICATION_BACKENDS:
            raise AuditError(
                f"unknown shard-audit backend {backend!r}; "
                f"known: {', '.join(REPLICATION_BACKENDS)}"
            )
        if partitioner is not None:
            if shards is not None and shards != partitioner.shards:
                raise AuditError(
                    f"shards={shards} disagrees with the supplied "
                    f"partitioner's {partitioner.shards} shard(s)"
                )
            shards = partitioner.shards
        elif shards is None:
            shards = default_shards()
        if shards < 1:
            raise AuditError(f"shards must be >= 1, got {shards}")
        if jobs is None:
            jobs = shards
        if jobs < 1:
            raise AuditError(f"jobs must be >= 1, got {jobs}")
        self.registry = registry if registry is not None else default_registry()
        self.partitioner = (
            partitioner if partitioner is not None else HashPartitioner(shards)
        )
        self.shards = shards
        self.jobs = jobs
        self._sharded_axioms: "list[Axiom]" = [
            axiom for axiom in self.registry if supports_partitioning(axiom)
        ]
        # Driver-side delta checkers for everything else — the exact
        # machinery DeltaAuditEngine uses (None = full re-check).
        self._driver_checkers: dict[int, object] = {}
        self._sharded_ids = frozenset(
            axiom.axiom_id for axiom in self._sharded_axioms
        )
        self._revision = 0
        self._trace: PlatformTrace | None = None
        self.last_delta: TraceDelta | None = None
        self._pool = None
        self._closed = False
        self._poisoned = False
        self.backend = "thread"
        if not self._sharded_axioms and shards > 1:
            # Announce the degradation like every other fallback path:
            # the caller asked for parallelism this registry cannot use.
            warnings.warn(
                "no axiom in the registry supports partitioning; every "
                "axiom runs on the driver single-threaded and the "
                "requested shard workers are not started",
                RuntimeWarning,
                stacklevel=2,
            )
        if self._sharded_axioms:
            self.backend = resolve_backend(
                backend, *self._sharded_axioms, self.partitioner,
                noun="shard-audit component",
            )
            if self.backend == "process":
                self._pool = ProcessShardPool(
                    self._sharded_axioms, self.partitioner, shards
                )
            else:
                runners = [
                    ShardRunner(self._sharded_axioms, self.partitioner, index)
                    for index in range(shards)
                ]
                self._pool = ThreadShardPool(runners, jobs)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def revision(self) -> int:
        """The store revision as of the last audit."""
        return self._revision

    @property
    def sharded_axiom_ids(self) -> tuple[int, ...]:
        """Axioms whose sweeps this engine partitions across shards."""
        return tuple(axiom.axiom_id for axiom in self._sharded_axioms)

    # ------------------------------------------------------------------

    def audit(self, trace: "PlatformTrace | TraceStore") -> AuditReport:
        """Audit the trace; equals a full batch audit at this revision."""
        from repro.telemetry.instruments import record_audit
        from repro.telemetry.registry import get_registry

        recording = get_registry().enabled
        started = time.perf_counter() if recording else 0.0
        trace = as_trace(trace)
        if self._closed:
            raise AuditError(
                "sharded audit engine is closed; build a new one"
            )
        if self._poisoned:
            raise AuditError(
                "sharded audit engine is in an inconsistent state after "
                "a failed audit; build a new session (its next audit "
                "rebuilds from the trace)"
            )
        if self._trace is None:
            self._trace = trace
        elif self._trace.store is not trace.store:
            raise AuditError(
                "sharded audit session is bound to one trace; "
                "start a new session for a different trace"
            )
        new_events = trace.events_since(self._revision)
        delta = TraceDelta(
            from_revision=self._revision,
            to_revision=trace.revision,
            new_events=new_events,
            touched=collect_touched(new_events),
        )
        self._revision = delta.to_revision
        try:
            gather = (
                self._pool.dispatch(trace, delta)
                if self._pool is not None
                else None
            )
            driver_results: dict[int, object] = {}
            for axiom in self.registry:
                if axiom.axiom_id in self._sharded_ids:
                    continue
                if axiom.axiom_id not in self._driver_checkers:
                    self._driver_checkers[axiom.axiom_id] = (
                        axiom.delta_checker()
                        if axiom.supports_delta
                        else None
                    )
                checker = self._driver_checkers[axiom.axiom_id]
                if checker is None:
                    driver_results[axiom.axiom_id] = axiom.check(trace)
                else:
                    checker.apply(trace, delta)
                    driver_results[axiom.axiom_id] = checker.result()
            merged: dict[int, object] = {}
            if gather is not None:
                per_shard = gather()
                for position, axiom in enumerate(self._sharded_axioms):
                    merged[axiom.axiom_id] = merge_axiom_verdicts(
                        axiom, [shard[position] for shard in per_shard]
                    )
        except BaseException:
            # A failure mid-audit (a shard folded the delta, another
            # raised) leaves checker states inconsistent with
            # _revision; a retry would silently skip those events for
            # the shards that missed them.  Poison the session so the
            # next audit fails loudly instead of diverging quietly.
            self._poisoned = True
            raise
        results = tuple(
            merged[axiom.axiom_id]
            if axiom.axiom_id in merged
            else driver_results[axiom.axiom_id]
            for axiom in self.registry
        )
        self.last_delta = delta
        report = AuditReport(results=results, trace_length=len(trace))
        if recording:
            record_audit(
                "sharded", len(delta.new_events), report.total_violations,
                time.perf_counter() - started,
            )
        return report

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        """Release worker threads/processes (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ShardedDeltaAuditEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def make_audit_session(
    jobs: int = 1,
    *,
    backend: str = "thread",
    registry: AxiomRegistry | None = None,
) -> "DeltaAuditEngine | ShardedDeltaAuditEngine":
    """The audit session a consumer should run at a given parallelism.

    ``jobs=1`` is the plain single-threaded delta session; ``jobs>1``
    shards the audit into ``jobs`` partitions over ``jobs`` workers.
    This is the hook :class:`~repro.ingest.runner.IngestRunner` and the
    CLI construct through.
    """
    if jobs < 1:
        raise AuditError(f"audit jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return DeltaAuditEngine(registry=registry)
    return ShardedDeltaAuditEngine(
        shards=jobs, jobs=jobs, backend=backend, registry=registry
    )
