"""Deterministic merge of per-partition verdicts into batch verdicts.

The batch checkers emit violations in a canonical within-axiom order
(lexicographic qualifying pairs for Axiom 2; sorted entities, then the
event-settled streams, for Axioms 6 and 7).  Partition checkers tag
every violation with its position in that order (the merge *key*), and
each shard's list arrives already key-sorted, so the merge touches
only the violations — a timsort gallop over the concatenated sorted
runs, never a re-walk of the work units — and the merged
:class:`~repro.core.axioms.AxiomCheck` is equal to the unsharded one:
same violations, same order, summed opportunity counts.

When a shard raises an ``override`` (Axiom 2's pair-sampling fallback,
where the batch verdict is a whole-population sample no partition can
own), the override *is* the axiom verdict and the merge is skipped.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Sequence

from repro.core.axioms import Axiom, AxiomCheck
from repro.errors import AuditError
from repro.shard.checkers import PartitionVerdicts


def merge_axiom_verdicts(
    axiom: Axiom, parts: Sequence[PartitionVerdicts]
) -> AxiomCheck:
    """Fold one axiom's per-shard verdicts into the batch verdict."""
    if not parts:
        raise AuditError(
            f"no partition verdicts to merge for axiom {axiom.axiom_id}"
        )
    for part in parts:
        if part.axiom_id != axiom.axiom_id:
            raise AuditError(
                f"cannot merge verdicts of axiom {part.axiom_id} into "
                f"axiom {axiom.axiom_id}"
            )
        if part.override is not None:
            return part.override
    populated = [part.keyed_violations for part in parts if part.keyed_violations]
    if len(populated) == 1:
        keyed: "Sequence[tuple]" = populated[0]
    else:
        # Concatenate the key-sorted runs and let timsort gallop over
        # them: O(V log S) comparisons, all in C — measurably faster
        # than a Python-level k-way heap merge at audit cadence.
        merged: list[tuple] = []
        for run in populated:
            merged.extend(run)
        merged.sort(key=itemgetter(0))
        keyed = merged
    violations = tuple(violation for _, violation in keyed)
    return AxiomCheck(
        axiom_id=axiom.axiom_id,
        title=axiom.title,
        violations=violations,
        opportunities=sum(part.opportunities for part in parts),
    )
