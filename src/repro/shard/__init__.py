"""Sharded parallel audit subsystem.

Partitions the delta-audit workload — the touched-entity relation the
single-threaded :class:`~repro.core.audit.DeltaAuditEngine` re-sweeps —
across N shards, runs per-partition checks over thread or process
workers, and deterministically merges the per-partition verdicts into
an :class:`~repro.core.audit.AuditReport` identical to the unsharded
(and batch) result.  See :mod:`repro.shard.engine` for the entry point
and ``tests/property/test_property_sharded_audit.py`` for the
equivalence contract.
"""

from repro.shard.checkers import (
    PartitionChecker,
    PartitionVerdicts,
    partition_checkers,
    supports_partitioning,
)
from repro.shard.engine import (
    ShardedDeltaAuditEngine,
    default_shards,
    make_audit_session,
)
from repro.shard.merge import merge_axiom_verdicts
from repro.shard.partition import (
    PARTITION_STRATEGIES,
    HashPartitioner,
    MappedPartitioner,
    Partitioner,
    make_partitioner,
    size_balanced_partitioner,
    stable_hash,
)
from repro.shard.workers import ProcessShardPool, ShardRunner, ThreadShardPool

__all__ = [
    "PARTITION_STRATEGIES",
    "HashPartitioner",
    "MappedPartitioner",
    "PartitionChecker",
    "PartitionVerdicts",
    "Partitioner",
    "ProcessShardPool",
    "ShardRunner",
    "ShardedDeltaAuditEngine",
    "ThreadShardPool",
    "default_shards",
    "make_audit_session",
    "make_partitioner",
    "merge_axiom_verdicts",
    "partition_checkers",
    "size_balanced_partitioner",
    "stable_hash",
    "supports_partitioning",
]
