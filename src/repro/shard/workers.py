"""Shard worker pools: run per-partition judges over threads or processes.

The :class:`~repro.shard.engine.ShardedDeltaAuditEngine` owns N shard
runners (one bundle of partition checkers per shard) and a pool that
drives them.  Both pools expose the same two-step contract so the
engine can overlap shard judging with its driver-side axioms:

``dispatch(trace, delta) -> gather``
    Starts the shards on one audit's delta and returns a ``gather``
    callable; calling it blocks until every shard's
    :class:`~repro.shard.checkers.PartitionVerdicts` are in, returned
    in shard order (merging is order-sensitive only via the verdict
    keys, but determinism is cheap).

Backends mirror PR 1's replication machinery
(:func:`repro.experiments.replication.resolve_backend`): ``"thread"``
keeps the shard state in-process — folds run in the driver (so indexed
evidence queries stay on the store's own connection/thread) and judges
fan out over a persistent :class:`~concurrent.futures.ThreadPoolExecutor`;
``"process"`` forks one long-lived worker per shard holding its
partition state, fed each audit's delta over a pipe (folds use the
delta's events — the worker has no trace handle).  The same pickle
probe guards the process path: an unpicklable registry degrades to
threads with a warning, never a crash, and verdicts are identical
either way.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.axioms import Axiom, TraceDelta
from repro.errors import AuditError
from repro.shard.checkers import PartitionVerdicts, partition_checkers
from repro.shard.partition import Partitioner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.trace import PlatformTrace

#: A gather callable: blocks until every shard's verdicts are in.
GatherFn = Callable[[], "list[list[PartitionVerdicts]]"]


class ShardRunner:
    """One shard's partition checkers, driven as a unit."""

    def __init__(
        self,
        axioms: Sequence[Axiom],
        partitioner: Partitioner,
        shard_index: int,
    ) -> None:
        self.shard_index = shard_index
        self.checkers = partition_checkers(axioms, partitioner, shard_index)

    def fold(self, trace: "PlatformTrace | None", delta: TraceDelta) -> None:
        for checker in self.checkers:
            checker.fold(trace, delta)

    def judge(self) -> "list[PartitionVerdicts]":
        # Per-shard judge time; in the process backend this records into
        # the *worker process's* registry (invisible to the driver) —
        # the thread backend, the default, is the observable one.
        from repro.telemetry.instruments import record_shard_judge
        from repro.telemetry.registry import get_registry

        if not get_registry().enabled:
            return [checker.judge() for checker in self.checkers]
        started = time.perf_counter()
        verdicts = [checker.judge() for checker in self.checkers]
        record_shard_judge(
            self.shard_index, time.perf_counter() - started
        )
        return verdicts


class ThreadShardPool:
    """Shard state in-process; judges fan out over a thread pool."""

    backend_name = "thread"

    def __init__(self, runners: Sequence[ShardRunner], jobs: int) -> None:
        self._runners = list(runners)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, min(jobs, len(self._runners))),
            thread_name_prefix="shard-audit",
        )

    def dispatch(
        self, trace: "PlatformTrace", delta: TraceDelta
    ) -> GatherFn:
        # Folds run here in the driver: evidence pulls (seq-bounded
        # TraceQuery point queries on indexed stores) stay on the
        # thread that owns the store connection.
        for runner in self._runners:
            runner.fold(trace, delta)
        futures = [
            self._pool.submit(runner.judge) for runner in self._runners
        ]
        return lambda: [future.result() for future in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def _process_worker_main(
    connection,
    axioms: Sequence[Axiom],
    partitioner: Partitioner,
    shard_index: int,
) -> None:
    """Worker-process loop: fold each delta, judge, ship verdicts back.

    A failed fold/judge leaves this shard's state inconsistent with the
    audited revision, so the worker reports the error and *exits* —
    serving later audits from corrupt state would silently diverge.
    (The driver engine poisons itself on the error, so no later
    dispatch reaches the closed pipe.)
    """
    runner = ShardRunner(axioms, partitioner, shard_index)
    while True:
        message = connection.recv()
        if message[0] == "stop":
            connection.close()
            return
        try:
            runner.fold(None, message[1])
            connection.send(("ok", runner.judge()))
        except Exception as error:  # surface, don't hang the driver
            connection.send(("error", f"{type(error).__name__}: {error}"))
            connection.close()
            return


class ProcessShardPool:
    """One long-lived worker process per shard, fed deltas over pipes."""

    backend_name = "process"

    def __init__(
        self,
        axioms: Sequence[Axiom],
        partitioner: Partitioner,
        shards: int,
    ) -> None:
        self._connections = []
        self._processes = []
        for shard_index in range(shards):
            parent_end, child_end = multiprocessing.Pipe()
            process = multiprocessing.Process(
                target=_process_worker_main,
                args=(child_end, tuple(axioms), partitioner, shard_index),
                daemon=True,
                name=f"shard-audit-{shard_index}",
            )
            process.start()
            child_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)

    def dispatch(
        self, trace: "PlatformTrace", delta: TraceDelta
    ) -> GatherFn:
        for connection in self._connections:
            connection.send(("audit", delta))

        def gather() -> "list[list[PartitionVerdicts]]":
            results = []
            for shard_index, connection in enumerate(self._connections):
                status, payload = connection.recv()
                if status != "ok":
                    raise AuditError(
                        f"shard worker {shard_index} failed: {payload}"
                    )
                results.append(payload)
            return results

        return gather

    def close(self) -> None:
        for connection in self._connections:
            try:
                connection.send(("stop",))
                connection.close()
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
