"""Partition-aware delta checkers for the entity-sweep axioms (2, 6, 7).

A partition checker is one shard's share of one axiom.  It subclasses
the axiom's delta checker, so event folding, slice fetching, sampling
fallbacks, and verdict predicates are *the same code* the single-
threaded :class:`~repro.core.audit.DeltaAuditEngine` runs — the shard
layer only narrows which work units (qualifying task pairs for Axiom 2,
requesters for Axiom 6, workers for Axiom 7) the checker owns, via a
:class:`~repro.shard.partition.Partitioner`.  Ownership is total and
disjoint across shards, so summed opportunity counts and key-merged
violation lists reproduce the batch verdict exactly (see
:mod:`repro.shard.merge`).

Each audit is split into two phases with different freedoms:

``fold(trace, delta)``
    Sequential, in the driver (thread backend) or inside the worker
    process (process backend, with ``trace=None``).  Folds the delta's
    events into the inherited maintained state and *pulls the shard's
    evidence*: for every owned unit the delta invalidated, the entity
    slice (a task's audience, an entity's disclosed fields) is
    refreshed through the inherited per-entity fetch — a seq-bounded
    :class:`~repro.query.TraceQuery` point query on indexed stores, the
    event-folded map elsewhere.

``judge()``
    Pure CPU over the prefetched evidence — safe to run on a worker
    thread or in a worker process; never touches the trace.  Returns
    the shard's :class:`PartitionVerdicts`.

Beyond parallelism, partition checkers keep *dirty-unit indexes* (which
owned pairs does a touched task invalidate) and a map of currently
violating units, so a judge pass costs the invalidated units plus the
shard's violations — not a walk over every owned unit the way the
unsharded Axiom 2 checker re-walks its full qualifying-pair list per
audit.  That is where the single-core speedup in
``benchmarks/test_bench_shard.py`` comes from; worker fan-out adds
multi-core scaling on top.
"""

from __future__ import annotations

import abc
from bisect import insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

# The partition subclasses deliberately extend the engine-facing delta
# checkers (module-private to repro.core: the shard package is their
# only external consumer, and sharing the implementation is what keeps
# the sharded verdicts byte-identical to the unsharded ones).
from repro.core.axiom_assignment import (
    RequesterFairnessInAssignment,
    _DeltaRequesterFairness,
)
from repro.core.axiom_transparency import (
    PlatformTransparency,
    RequesterTransparency,
    _DeltaPlatformTransparency,
    _DeltaRequesterTransparency,
)
from repro.core.axioms import Axiom, AxiomCheck, TraceDelta
from repro.core.events import (
    RequesterRegistered,
    WorkerRegistered,
    WorkerUpdated,
)
from repro.core.violations import Violation
from repro.shard.partition import Partitioner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.trace import PlatformTrace


@dataclass(frozen=True)
class PartitionVerdicts:
    """One shard's contribution to one axiom's verdict.

    ``keyed_violations`` carries each violation with its within-axiom
    sort key; keys are globally ordered exactly as the batch checker
    emits violations, so a key-merge of all shards reproduces the batch
    order (see :func:`repro.shard.merge.merge_axiom_verdicts`).
    ``override``, when set, is a complete axiom verdict that replaces
    the merge — the designated shard raises it when the axiom left its
    partitionable regime (Axiom 2's pair-sampling fallback).
    """

    axiom_id: int
    keyed_violations: tuple[tuple[tuple, Violation], ...] = ()
    opportunities: int = 0
    override: AxiomCheck | None = None


class PartitionChecker(abc.ABC):
    """One shard's share of one axiom's delta-aware audit."""

    @abc.abstractmethod
    def fold(self, trace: "PlatformTrace | None", delta: TraceDelta) -> None:
        """Fold the delta and refresh the owned evidence it touched."""

    @abc.abstractmethod
    def judge(self) -> PartitionVerdicts:
        """Re-judge invalidated owned units; trace-free, thread-safe."""


class RequesterFairnessPartition(_DeltaRequesterFairness, PartitionChecker):
    """One shard of Axiom 2: owns qualifying pairs by anchor task.

    A pair is owned by the shard of its lexicographically first task —
    the touched-entity relation is what partitions, per the entity
    partitioner, and per-task shard assignments are computed once and
    cached, so qualifying a new task against N earlier ones costs N
    dictionary lookups, not N hashes.  Pair qualification and folding
    are inherited; this subclass only (a) skips pairs the shard does
    not own (before paying the comparability predicate — each pair's
    skill cosine is computed by exactly one shard), (b) indexes owned
    pairs by task so a dirty task invalidates just its own pairs, and
    (c) maintains the violating-pair list incrementally instead of
    re-walking every owned pair per audit.
    """

    def __init__(
        self,
        axiom: RequesterFairnessInAssignment,
        partitioner: Partitioner,
        shard_index: int,
    ) -> None:
        super().__init__(axiom)
        self._partitioner = partitioner
        self._shard_index = shard_index
        # task_id -> owned qualifying pairs containing it.
        self._pairs_by_task: dict[str, list[tuple[str, str]]] = {}
        # Owned pairs awaiting their first judgement.
        self._pending: set[tuple[str, str]] = set()
        # Owned pairs currently violating, as a key-sorted tuple
        # maintained by linear merges of each judge pass's changes —
        # never re-sorted, never re-walked when clean.
        self._keyed: tuple[tuple[tuple[str, str], Violation], ...] = ()
        # Pairs invalidated since the last judge, with their audiences
        # prefetched at fold time (judge never touches the trace).
        self._to_judge: tuple[tuple[str, str], ...] = ()
        self._views: dict[str, set[str]] = {}
        # This shard's anchor tasks, in posted order (a pair is owned
        # by the shard of its lexicographically first task, so a new
        # task pairs against owned anchors below it plus — when itself
        # owned — everything above it: expected work 2T/S per task
        # instead of rescanning all T tasks in every shard).
        self._owned_anchors: list[str] = []

    def _pair_up(self, task_id: str) -> None:
        """Qualify the new task against earlier ones, owned pairs only."""
        axiom = self._axiom
        window = axiom.posting_window
        time = self._posted_at[task_id]
        mine = self._partitioner.assign(task_id) == self._shard_index
        if mine:
            self._owned_anchors.append(task_id)
        for other_id in self._owned_anchors:
            if other_id >= task_id:
                continue
            if abs(time - self._posted_at[other_id]) > window:
                continue
            self._qualify((other_id, task_id))
        if mine:
            for other_id, other_time in self._posted_at.items():
                if other_id <= task_id:
                    continue
                if abs(time - other_time) > window:
                    continue
                self._qualify((task_id, other_id))

    def _qualify(self, pair: tuple[str, str]) -> None:
        """Admit one owned, window-passing pair if it is comparable."""
        comparable = self._comparable.get(pair)
        if comparable is None:
            comparable = self._axiom.tasks_comparable(
                self._tasks[pair[0]], self._tasks[pair[1]]
            )
            self._comparable[pair] = comparable
        if comparable and pair not in self._qualified:
            self._qualifying.append(pair)
            self._qualified.add(pair)
            self._pairs_by_task.setdefault(pair[0], []).append(pair)
            self._pairs_by_task.setdefault(pair[1], []).append(pair)
            self._pending.add(pair)

    def fold(self, trace: "PlatformTrace | None", delta: TraceDelta) -> None:
        was_sampling = self._sampling
        super().apply(trace, delta)
        if self._sampling:
            if not was_sampling:
                # Mirror the parent's cache reset when the pair cap
                # engages: from here on the designated shard serves the
                # memoised full scan.
                self._pairs_by_task.clear()
                self._pending.clear()
                self._owned_anchors.clear()
                self._keyed = ()
            self._to_judge = ()
            self._views = {}
            self._dirty.clear()
            return
        invalidated = set(self._pending)
        for task_id in self._dirty:
            invalidated.update(self._pairs_by_task.get(task_id, ()))
        self._to_judge = tuple(sorted(invalidated))
        self._pending.clear()
        self._dirty.clear()
        # Pull this partition's evidence now (seq-bounded TraceQuery
        # point queries on indexed stores, folded maps elsewhere) so
        # judge() is pure CPU.  One fetch per involved task, however
        # many invalidated pairs it appears in.
        involved = {task_id for pair in self._to_judge for task_id in pair}
        self._views = {
            task_id: self._audience(task_id) for task_id in involved
        }

    def judge(self) -> PartitionVerdicts:
        axiom = self._axiom
        if self._sampling:
            if self._shard_index != 0:
                return PartitionVerdicts(axiom_id=axiom.axiom_id)
            violations, opportunities = axiom._scan(
                self._posted_at, self._tasks, self._audiences,
                self._comparable,
            )
            return PartitionVerdicts(
                axiom_id=axiom.axiom_id,
                override=axiom._result(violations, opportunities),
            )
        if self._to_judge:
            changes = [
                (
                    pair,
                    axiom._audience_violation(
                        pair[0], pair[1],
                        self._tasks[pair[0]], self._tasks[pair[1]],
                        max(
                            self._posted_at[pair[0]],
                            self._posted_at[pair[1]],
                        ),
                        self._views[pair[0]], self._views[pair[1]],
                    ),
                )
                for pair in self._to_judge
            ]
            self._keyed = self._merge_changes(self._keyed, changes)
            self._to_judge = ()
            self._views = {}
        return PartitionVerdicts(
            axiom_id=axiom.axiom_id,
            keyed_violations=self._keyed,
            opportunities=len(self._qualifying),
        )

    @staticmethod
    def _merge_changes(
        old: "tuple[tuple[tuple[str, str], Violation], ...]",
        changes: "list[tuple[tuple[str, str], Violation | None]]",
    ) -> "tuple[tuple[tuple[str, str], Violation], ...]":
        """Fold key-sorted re-judgements into the key-sorted violating
        list in one linear pass (``changes`` replace, insert, or — for
        a ``None`` verdict — drop their pair)."""
        merged: list[tuple[tuple[str, str], Violation]] = []
        index = 0
        for pair, verdict in changes:
            while index < len(old) and old[index][0] < pair:
                merged.append(old[index])
                index += 1
            if index < len(old) and old[index][0] == pair:
                index += 1
            if verdict is not None:
                merged.append((pair, verdict))
        merged.extend(old[index:])
        return tuple(merged)


class RequesterTransparencyPartition(
    _DeltaRequesterTransparency, PartitionChecker
):
    """One shard of Axiom 6: owns requesters by id.

    The mandated-field sweep partitions cleanly by requester.  The
    event-settled streams (silent rejections, late payments) are
    whole-trace verdicts every shard folds identically; shard 0 alone
    reports them, keyed to sort after every sweep violation — matching
    the batch checker's sweep-then-rejections-then-delays order.
    """

    def __init__(
        self,
        axiom: RequesterTransparency,
        partitioner: Partitioner,
        shard_index: int,
    ) -> None:
        super().__init__(axiom)
        self._partitioner = partitioner
        self._shard_index = shard_index
        self._owned_sorted: list[str] = []
        self._owned: set[str] = set()
        # Only the designated shard reports the event-settled streams
        # (rejections, late payments); the others skip building — and
        # retaining — a Violation per event they would never emit.
        self._keep_settled = shard_index == 0

    def _owns(self, requester_id: str) -> bool:
        return self._partitioner.assign(requester_id) == self._shard_index

    def _resweep(self, requester_ids: Iterable[str]) -> None:
        super()._resweep(
            requester_id
            for requester_id in requester_ids
            if self._owns(requester_id)
        )

    def fold(self, trace: "PlatformTrace | None", delta: TraceDelta) -> None:
        super().apply(trace, delta)
        # Admit only the delta's newly registered owned requesters —
        # O(delta), not a re-filter of every requester ever seen.
        for event in delta.new_events:
            if isinstance(event, RequesterRegistered):
                requester_id = event.requester.requester_id
                if requester_id not in self._owned and self._owns(
                    requester_id
                ):
                    self._owned.add(requester_id)
                    insort(self._owned_sorted, requester_id)

    def judge(self) -> PartitionVerdicts:
        axiom = self._axiom
        keyed: list[tuple[tuple, Violation]] = []
        for requester_id in self._owned_sorted:
            for index, field_name in enumerate(
                self._missing.get(requester_id, ())
            ):
                keyed.append((
                    (0, requester_id, index),
                    axiom._undisclosed_violation(
                        requester_id, field_name, self._end_time
                    ),
                ))
        opportunities = len(self._owned_sorted) * len(axiom.mandated_fields)
        if self._shard_index == 0:
            if axiom.check_rejection_feedback:
                keyed.extend(
                    ((1, "", index), violation)
                    for index, violation in enumerate(self._rejections)
                )
                opportunities += self._rejection_opportunities
            if axiom.check_payment_delay:
                keyed.extend(
                    ((2, "", index), violation)
                    for index, violation in enumerate(self._delays)
                )
                opportunities += self._delay_opportunities
        return PartitionVerdicts(
            axiom_id=axiom.axiom_id,
            keyed_violations=tuple(keyed),
            opportunities=opportunities,
        )


class PlatformTransparencyPartition(
    _DeltaPlatformTransparency, PartitionChecker
):
    """One shard of Axiom 7: owns workers by id."""

    def __init__(
        self,
        axiom: PlatformTransparency,
        partitioner: Partitioner,
        shard_index: int,
    ) -> None:
        super().__init__(axiom)
        self._partitioner = partitioner
        self._shard_index = shard_index
        self._owned_sorted: list[str] = []
        self._owned: set[str] = set()

    def _owns(self, worker_id: str) -> bool:
        return self._partitioner.assign(worker_id) == self._shard_index

    def _resweep(self, worker_ids: Iterable[str]) -> None:
        super()._resweep(
            worker_id for worker_id in worker_ids if self._owns(worker_id)
        )

    def fold(self, trace: "PlatformTrace | None", delta: TraceDelta) -> None:
        super().apply(trace, delta)
        # Admit only the delta's newly seen owned workers — O(delta),
        # not a re-filter of every worker ever seen.
        for event in delta.new_events:
            if isinstance(event, (WorkerRegistered, WorkerUpdated)):
                worker_id = event.worker.worker_id
                if worker_id not in self._owned and self._owns(worker_id):
                    self._owned.add(worker_id)
                    insort(self._owned_sorted, worker_id)

    def judge(self) -> PartitionVerdicts:
        axiom = self._axiom
        keyed: list[tuple[tuple, Violation]] = []
        opportunities = 0
        for worker_id in self._owned_sorted:
            relevant_count, missing = self._sweeps.get(worker_id, (0, ()))
            opportunities += relevant_count
            for index, field_name in enumerate(missing):
                keyed.append((
                    (worker_id, index),
                    axiom._undisclosed_violation(
                        worker_id, field_name, self._end_time
                    ),
                ))
        return PartitionVerdicts(
            axiom_id=axiom.axiom_id,
            keyed_violations=tuple(keyed),
            opportunities=opportunities,
        )


#: (axiom type, its stock delta_checker, partition subclass) — an axiom
#: partitions only when its delta path is the stock one this package
#: mirrors; a subclass that overrides ``delta_checker`` or clears
#: ``supports_delta`` opted out (mirroring the unsharded engine, which
#: honours ``supports_delta`` with exact full re-checks).
_PARTITIONABLE: tuple[tuple[type, object, type], ...] = (
    (
        RequesterFairnessInAssignment,
        RequesterFairnessInAssignment.delta_checker,
        RequesterFairnessPartition,
    ),
    (
        RequesterTransparency,
        RequesterTransparency.delta_checker,
        RequesterTransparencyPartition,
    ),
    (
        PlatformTransparency,
        PlatformTransparency.delta_checker,
        PlatformTransparencyPartition,
    ),
)


def _partition_class(axiom: Axiom) -> "type | None":
    """The partition-checker class for ``axiom``, or ``None`` when the
    sharded engine must leave it on the driver's unsharded path."""
    if not axiom.supports_delta:
        return None
    for axiom_type, stock_delta, partition_cls in _PARTITIONABLE:
        if (
            isinstance(axiom, axiom_type)
            and type(axiom).delta_checker is stock_delta
        ):
            return partition_cls
    return None


def supports_partitioning(axiom: Axiom) -> bool:
    """True when the sharded engine can split this axiom across shards."""
    return _partition_class(axiom) is not None


def partition_checkers(
    axioms: Sequence[Axiom], partitioner: Partitioner, shard_index: int
) -> list[PartitionChecker]:
    """One shard's checkers for every partitionable axiom, in order."""
    checkers: list[PartitionChecker] = []
    for axiom in axioms:
        partition_cls = _partition_class(axiom)
        if partition_cls is not None:
            checkers.append(partition_cls(axiom, partitioner, shard_index))
    return checkers
