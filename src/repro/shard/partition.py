"""Partitioners: deterministic entity/pair -> shard assignment.

A sharded audit (:class:`~repro.shard.engine.ShardedDeltaAuditEngine`)
splits each axiom's per-entity work units — qualifying task pairs for
Axiom 2, requesters for Axiom 6, workers for Axiom 7 — across N
partitions.  The assignment must be

* **total and disjoint**: every unit is owned by exactly one shard, so
  summed per-shard opportunity counts equal the batch count and merged
  violation lists contain every violation exactly once;
* **stable**: the same key maps to the same shard on every audit (a
  shard's cached verdicts are only valid for units it has always
  owned) and in every process (worker processes re-derive ownership
  locally), so Python's per-process salted ``hash`` is out —
  :func:`stable_hash` is CRC-32 over the UTF-8 key.

Two strategies ship: :class:`HashPartitioner` (uniform, stateless — the
default) and :func:`size_balanced_partitioner` (a
:class:`MappedPartitioner` built from observed per-entity weights, e.g.
:func:`repro.query.entity_event_counts` of an existing store, via
greedy longest-processing-time assignment; unseen keys fall back to the
stable hash).  The differential property suite proves the merged audit
exact for *any* deterministic assignment, so custom partitioners only
need to honour the contract above.
"""

from __future__ import annotations

import abc
import zlib
from typing import Mapping

from repro.errors import AuditError

#: Strategy names accepted by :func:`make_partitioner`.
PARTITION_STRATEGIES = ("hash", "balanced")


def stable_hash(key: str) -> int:
    """A process-independent hash of ``key`` (CRC-32 of its UTF-8).

    Python's builtin ``hash`` is salted per process; shard ownership
    derived from it would disagree between a driver and its worker
    processes (and between runs), invalidating cached verdicts.
    """
    return zlib.crc32(key.encode("utf-8"))


class Partitioner(abc.ABC):
    """Deterministic assignment of string keys to ``shards`` partitions."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise AuditError(f"shards must be >= 1, got {shards}")
        self._shards = shards

    @property
    def shards(self) -> int:
        return self._shards

    @abc.abstractmethod
    def assign(self, key: str) -> int:
        """The shard index (``0 <= index < shards``) owning ``key``."""


class HashPartitioner(Partitioner):
    """Stable uniform hashing: ``stable_hash(key) % shards``."""

    def assign(self, key: str) -> int:
        return stable_hash(key) % self._shards


class MappedPartitioner(Partitioner):
    """Explicit key -> shard assignments with a stable-hash fallback.

    The building block behind :func:`size_balanced_partitioner` (and
    the differential suite's randomised partitions): any deterministic
    mapping is a valid partitioner, keys outside the mapping fall back
    to :class:`HashPartitioner` placement.
    """

    def __init__(self, assignments: Mapping[str, int], shards: int) -> None:
        super().__init__(shards)
        for key, shard in assignments.items():
            if not 0 <= shard < shards:
                raise AuditError(
                    f"partition assignment {key!r} -> {shard} is outside "
                    f"[0, {shards})"
                )
        self._assignments = dict(assignments)

    def assign(self, key: str) -> int:
        shard = self._assignments.get(key)
        if shard is not None:
            return shard
        return stable_hash(key) % self._shards


def size_balanced_partitioner(
    weights: Mapping[str, int], shards: int
) -> MappedPartitioner:
    """Balance keys across shards by weight (greedy LPT, deterministic).

    ``weights`` maps each key to its expected work (e.g. per-entity
    event counts from :func:`repro.query.entity_event_counts`).  Keys
    are placed heaviest-first onto the currently lightest shard; ties
    break by key then by shard index, so the layout is reproducible.
    Keys that appear later (new entities) fall back to stable hashing.
    """
    if shards < 1:
        raise AuditError(f"shards must be >= 1, got {shards}")
    loads = [0] * shards
    assignments: dict[str, int] = {}
    for key, weight in sorted(
        weights.items(), key=lambda item: (-item[1], item[0])
    ):
        if weight < 0:
            raise AuditError(
                f"partition weight for {key!r} must be >= 0, got {weight}"
            )
        lightest = min(range(shards), key=lambda index: (loads[index], index))
        assignments[key] = lightest
        loads[lightest] += weight
    return MappedPartitioner(assignments, shards)


def make_partitioner(
    strategy: str = "hash",
    shards: int = 1,
    weights: Mapping[str, int] | None = None,
) -> Partitioner:
    """Instantiate a partitioner by strategy name.

    ``"hash"`` needs no inputs; ``"balanced"`` requires ``weights``
    (it balances what it has measured).
    """
    if strategy not in PARTITION_STRATEGIES:
        raise AuditError(
            f"unknown partition strategy {strategy!r}; "
            f"known: {', '.join(PARTITION_STRATEGIES)}"
        )
    if strategy == "hash":
        return HashPartitioner(shards)
    if weights is None:
        raise AuditError(
            "the 'balanced' partition strategy needs per-key weights "
            "(e.g. repro.query.entity_event_counts of the audited store)"
        )
    return size_balanced_partitioner(weights, shards)
