"""CSV sink: the primary record table, one row per record.

CSV is the spreadsheet-facing format, so it carries only the record
table (summary and sections belong to the presentation sinks).  Cells
are strings as-is and compact JSON for everything else
(:func:`csv_cell`), and :meth:`CsvReportExporter.parse` reads a
rendered document back into the same per-cell strings — the round-trip
contract the test suite pins.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.report.base import (
    ReportDocument,
    ReportExporter,
    register_format,
)


def csv_cell(value: Any) -> str:
    """The canonical CSV cell text for a record value: strings pass
    through untouched, everything else is compact, key-sorted JSON."""
    if isinstance(value, str):
        return value
    return json.dumps(value, separators=(",", ":"), sort_keys=True)


@register_format
class CsvReportExporter(ReportExporter):
    """Render the record table as RFC-4180 CSV with a header row."""

    format_name = "csv"
    file_suffix = ".csv"

    def render(self, document: ReportDocument) -> str:
        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(document.columns)
        for record in document.records:
            writer.writerow(
                csv_cell(record[column]) for column in document.columns
            )
        return out.getvalue()

    @staticmethod
    def parse(text: str) -> list[dict[str, str]]:
        """Read a rendered CSV document back: one dict of cell strings
        per record, keyed by the header columns."""
        reader = csv.DictReader(io.StringIO(text))
        return [dict(row) for row in reader]
