"""Document builders: flatten audit/forensics results for the sinks.

Each builder turns one domain object into a
:class:`~repro.report.base.ReportDocument` whose records are plain
JSON-safe mappings (tuples become lists, enums become their values), so
the CSV and JSONL sinks round-trip them losslessly and the Markdown and
HTML sinks never meet a live domain object.

:func:`audit_document` optionally takes the audited trace (or store) as
context: with it, the document gains the evidence an operator needs to
judge the numbers — events-by-kind denominators, per-entity activity
counts, and a violation timeline per affected entity.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Mapping

from repro.query import TraceQuery, entity_event_counts
from repro.report.base import ReportDocument, ReportSection

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.audit import AuditReport
    from repro.core.store import TraceStore
    from repro.core.trace import PlatformTrace
    from repro.forensics import LossManifest, VerifyResult

#: Entity kinds whose activity counts feed the audit context section.
_ENTITY_KINDS = ("worker", "task", "requester", "contribution")


def jsonable(value: Any) -> Any:
    """Normalise a value into JSON-safe types.

    Tuples/sets/frozensets become lists (sets sorted for determinism),
    enums become their ``value``, mappings become plain dicts with the
    same treatment applied to their values; anything that is not
    already a JSON scalar falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return jsonable(value.value)
    if isinstance(value, Mapping):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return [jsonable(item) for item in sorted(value, key=str)]
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    return str(value)


# ----------------------------------------------------------------------
# Audit reports

#: Record columns of an audit document — one record per violation.
AUDIT_COLUMNS: tuple[str, ...] = (
    "axiom_id",
    "axiom_title",
    "severity",
    "time",
    "subjects",
    "type",
    "message",
)


def audit_document(
    report: "AuditReport",
    trace: "PlatformTrace | TraceStore | None" = None,
    *,
    source: str = "",
    title: str | None = None,
) -> ReportDocument:
    """Flatten an :class:`~repro.core.audit.AuditReport` (one record per
    violation), with trace-fed context sections when ``trace`` given."""
    titles = {check.axiom_id: check.title for check in report.results}
    records = tuple(
        {
            "axiom_id": violation.axiom_id,
            "axiom_title": titles.get(violation.axiom_id, ""),
            "severity": violation.severity.value,
            "time": violation.time,
            "subjects": list(violation.subjects),
            "type": str(violation.witness.get("type", "untyped")),
            "message": violation.message,
        }
        for violation in report.violations
    )
    summary = (
        ("source", source),
        ("events audited", report.trace_length),
        ("overall score", round(report.overall_score, 6)),
        ("verdict", "PASS" if report.passed else "FAIL"),
        ("violations", report.total_violations),
        ("axioms checked", len(report.results)),
    )
    sections = [_axiom_section(report), _violation_type_section(report)]
    if trace is not None:
        sections.append(_events_by_kind_section(trace))
        sections.append(_entity_timeline_section(report, trace))
    return ReportDocument(
        title=title or "Fairness audit report",
        kind="audit",
        source=source,
        summary=summary,
        columns=AUDIT_COLUMNS,
        records=records,
        sections=tuple(sections),
    )


def _axiom_section(report: "AuditReport") -> ReportSection:
    return ReportSection(
        title="Axiom scores",
        columns=("axiom", "title", "score", "violations", "opportunities"),
        rows=tuple(
            (
                check.axiom_id,
                check.title,
                round(check.score, 6),
                check.violation_count,
                check.opportunities,
            )
            for check in report.results
        ),
    )


def _violation_type_section(report: "AuditReport") -> ReportSection:
    return ReportSection(
        title="Violations by type",
        columns=("type", "count"),
        rows=tuple(sorted(report.violations_by_type().items())),
    )


def _events_by_kind_section(
    trace: "PlatformTrace | TraceStore"
) -> ReportSection:
    return ReportSection(
        title="Events by kind",
        columns=("kind", "count"),
        rows=tuple(sorted(TraceQuery().count_by_kind(trace).items())),
    )


def _entity_timeline_section(
    report: "AuditReport", trace: "PlatformTrace | TraceStore"
) -> ReportSection:
    """Per affected entity: violation timeline + activity denominator.

    The ``events_touching`` column is the opportunity denominator — how
    many trace events involve the entity at all — so five violations
    against a worker with six events reads very differently from five
    against a worker with six hundred.
    """
    activity: dict[str, int] = {}
    for kind in _ENTITY_KINDS:
        activity.update(entity_event_counts(trace, kind))
    timelines: dict[str, list[tuple[int, int]]] = {}
    for violation in report.violations:
        for subject in violation.subjects:
            timelines.setdefault(subject, []).append(
                (violation.time, violation.axiom_id)
            )
    rows = []
    for subject in sorted(timelines):
        hits = sorted(timelines[subject])
        rows.append(
            (
                subject,
                len(hits),
                activity.get(subject, 0),
                hits[0][0],
                hits[-1][0],
                " ".join(
                    f"t{time}:ax{axiom_id}" for time, axiom_id in hits
                ),
            )
        )
    return ReportSection(
        title="Entity violation timelines",
        columns=(
            "entity",
            "violations",
            "events_touching",
            "first_time",
            "last_time",
            "timeline",
        ),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# Verify results

#: Record columns of a verify document — one record per finding.
VERIFY_COLUMNS: tuple[str, ...] = (
    "check",
    "severity",
    "location",
    "seqs",
    "message",
)


def verify_document(
    result: "VerifyResult", *, title: str | None = None
) -> ReportDocument:
    """Flatten a :class:`~repro.forensics.VerifyResult` (one record per
    finding) through the same sinks as an audit report."""
    records = tuple(
        {
            "check": finding.check,
            "severity": finding.severity,
            "location": finding.location,
            "seqs": list(finding.seqs),
            "message": finding.message,
        }
        for finding in result.findings
    )
    verdict = "CLEAN" if result.clean else ("OK*" if result.ok else "DAMAGED")
    summary = (
        ("source", result.path),
        ("backend", result.backend),
        ("verdict", verdict),
        ("events examined", result.events_examined),
        ("events valid", result.events_valid),
        ("errors", len(result.errors)),
        ("warnings", len(result.warnings)),
    )
    sections = (
        ReportSection(
            title="Findings by check",
            columns=("check", "count"),
            rows=tuple(result.counts_by_check().items()),
        ),
    )
    return ReportDocument(
        title=title or "Store integrity verification",
        kind="verify",
        source=result.path,
        summary=summary,
        columns=VERIFY_COLUMNS,
        records=records,
        sections=sections,
    )


# ----------------------------------------------------------------------
# Loss manifests

#: Record columns of a repair document — one record per dropped range.
REPAIR_COLUMNS: tuple[str, ...] = (
    "start_seq",
    "end_seq",
    "count",
    "reason",
)


def manifest_document(
    manifest: "LossManifest", *, title: str | None = None
) -> ReportDocument:
    """Flatten a :class:`~repro.forensics.LossManifest` (one record per
    dropped seq range)."""
    records = tuple(
        {
            "start_seq": dropped.start_seq,
            "end_seq": dropped.end_seq,
            "count": dropped.count,
            "reason": dropped.reason,
        }
        for dropped in manifest.dropped
    )
    summary = (
        ("source", manifest.source),
        ("destination", manifest.dest),
        ("source backend", manifest.source_backend),
        ("destination backend", manifest.dest_backend),
        ("events salvaged", manifest.events_salvaged),
        ("events dropped", manifest.events_dropped),
        ("lossless", manifest.lossless),
    )
    return ReportDocument(
        title=title or "Trace repair loss manifest",
        kind="repair",
        source=manifest.source,
        summary=summary,
        columns=REPAIR_COLUMNS,
        records=records,
    )
