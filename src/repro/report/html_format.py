"""HTML sink: a self-contained static dashboard, no external assets.

One file an operator can open from disk or serve from a bucket: inline
CSS, no JavaScript, no CDN fetches.  Summary facts render as headline
cards, the record table and every section as styled tables.  Severity
cells are colour-badged and numeric ``score`` cells get a three-band
heatmap (healthy / degraded / failing), which turns the per-axiom
scores section into the fairness heatmap the operator runbook refers
to.  All text is HTML-escaped — violation messages carry free-form
platform strings.
"""

from __future__ import annotations

import html
from typing import Any

from repro.report.base import (
    ReportDocument,
    ReportExporter,
    ReportSection,
    register_format,
)
from repro.report.csv_format import csv_cell

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; padding: 0 1rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
.cards { display: flex; flex-wrap: wrap; gap: .6rem; margin: 1rem 0; }
.card { background: #f4f4f8; border-radius: .4rem; padding: .5rem .9rem; }
.card .label { font-size: .72rem; text-transform: uppercase;
               letter-spacing: .05em; color: #666; }
.card .value { font-size: 1.15rem; font-weight: 600; }
table { border-collapse: collapse; margin: .8rem 0 1.6rem; width: 100%; }
th, td { border: 1px solid #d8d8e0; padding: .35rem .6rem;
         text-align: left; font-size: .9rem; }
th { background: #eceded; }
tr:nth-child(even) td { background: #fafafc; }
.sev-critical, .sev-error { background: #c0392b; color: #fff;
    border-radius: .3rem; padding: .1rem .45rem; font-size: .8rem; }
.sev-warning { background: #e67e22; color: #fff; border-radius: .3rem;
    padding: .1rem .45rem; font-size: .8rem; }
.sev-info { background: #2980b9; color: #fff; border-radius: .3rem;
    padding: .1rem .45rem; font-size: .8rem; }
td.score-high { background: #d5f5d5; }
td.score-mid { background: #fdf3d0; }
td.score-low { background: #fad7d2; }
.empty { color: #888; font-style: italic; }
footer { color: #888; font-size: .8rem; margin-top: 2rem; }
"""

_SEVERITIES = ("critical", "error", "warning", "info")


def _score_class(value: Any) -> str:
    try:
        score = float(value)
    except (TypeError, ValueError):
        return ""
    if score >= 0.9:
        return "score-high"
    if score >= 0.6:
        return "score-mid"
    return "score-low"


def _cell_html(column: str, value: Any) -> str:
    text = html.escape(csv_cell(value))
    if column == "severity" and str(value).lower() in _SEVERITIES:
        return f'<span class="sev-{str(value).lower()}">{text}</span>'
    return text


def _table_html(columns: tuple[str, ...], rows: list) -> list[str]:
    lines = ["<table>", "<thead><tr>"]
    lines.extend(f"<th>{html.escape(column)}</th>" for column in columns)
    lines.append("</tr></thead>")
    lines.append("<tbody>")
    for row in rows:
        cells = []
        for column, value in zip(columns, row):
            css = _score_class(value) if column == "score" else ""
            attr = f' class="{css}"' if css else ""
            cells.append(f"<td{attr}>{_cell_html(column, value)}</td>")
        lines.append("<tr>" + "".join(cells) + "</tr>")
    lines.append("</tbody></table>")
    return lines


@register_format
class HtmlReportExporter(ReportExporter):
    """A single static HTML page: cards, record table, section tables."""

    format_name = "html"
    file_suffix = ".html"

    def render(self, document: ReportDocument) -> str:
        lines = [
            "<!DOCTYPE html>",
            '<html lang="en">',
            "<head>",
            '<meta charset="utf-8">',
            f"<title>{html.escape(document.title)}</title>",
            f"<style>{_STYLE}</style>",
            "</head>",
            "<body>",
            f"<h1>{html.escape(document.title)}</h1>",
        ]
        if document.summary:
            lines.append('<div class="cards">')
            for label, value in document.summary:
                lines.append(
                    '<div class="card">'
                    f'<div class="label">{html.escape(str(label))}</div>'
                    '<div class="value">'
                    f"{html.escape(csv_cell(value))}</div>"
                    "</div>"
                )
            lines.append("</div>")
        lines.append("<h2>Records</h2>")
        if document.records:
            lines.extend(
                _table_html(
                    document.columns,
                    [
                        [record[column] for column in document.columns]
                        for record in document.records
                    ],
                )
            )
        else:
            lines.append(
                '<p class="empty">No records — nothing to report.</p>'
            )
        for section in document.sections:
            lines.extend(self._render_section(section))
        source = html.escape(document.source or "-")
        lines.append(
            f"<footer>kind: {html.escape(document.kind)} · "
            f"source: {source}</footer>"
        )
        lines.append("</body>")
        lines.append("</html>")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_section(section: ReportSection) -> list[str]:
        lines = [f"<h2>{html.escape(section.title)}</h2>"]
        if section.rows:
            lines.extend(
                _table_html(section.columns, list(section.rows))
            )
        else:
            lines.append('<p class="empty">empty</p>')
        return lines
