"""Violation reporting & export: render audit/forensics results to files.

The subsystem has three layers:

* **Document model** (:mod:`repro.report.base`): a format-independent
  :class:`ReportDocument` (summary facts + a record table + section
  tables) and the :class:`ReportExporter` protocol with a registry of
  named formats.
* **Builders** (:mod:`repro.report.context`): flatteners from domain
  objects — :class:`~repro.core.audit.AuditReport`,
  :class:`~repro.forensics.VerifyResult`,
  :class:`~repro.forensics.LossManifest` — into documents, optionally
  enriched with trace-query context (events by kind, per-entity
  violation timelines with activity denominators).
* **Sinks**: CSV and JSONL (lossless, re-parseable), Markdown (paste
  into a PR/issue), and a self-contained static HTML dashboard.

CLI surface: ``python -m repro trace report`` and the ``--report`` /
``--report-dir`` rolling-report flags on ``trace tail`` / ``resume``.
"""

from repro.report.base import (
    REPORT_FORMATS,
    ReportDocument,
    ReportError,
    ReportExporter,
    ReportSection,
    export_report,
    export_report_files,
    make_exporter,
    register_format,
    render_report,
)
from repro.report.context import (
    AUDIT_COLUMNS,
    REPAIR_COLUMNS,
    VERIFY_COLUMNS,
    audit_document,
    jsonable,
    manifest_document,
    verify_document,
)

# Importing a format module registers its exporter; all four ship
# registered so REPORT_FORMATS is complete after `import repro.report`.
from repro.report.csv_format import CsvReportExporter, csv_cell
from repro.report.html_format import HtmlReportExporter
from repro.report.jsonl_format import JsonlReportExporter
from repro.report.markdown_format import MarkdownReportExporter

__all__ = [
    "REPORT_FORMATS",
    "ReportDocument",
    "ReportError",
    "ReportExporter",
    "ReportSection",
    "register_format",
    "make_exporter",
    "render_report",
    "export_report",
    "export_report_files",
    "AUDIT_COLUMNS",
    "VERIFY_COLUMNS",
    "REPAIR_COLUMNS",
    "audit_document",
    "verify_document",
    "manifest_document",
    "jsonable",
    "csv_cell",
    "CsvReportExporter",
    "JsonlReportExporter",
    "MarkdownReportExporter",
    "HtmlReportExporter",
]
