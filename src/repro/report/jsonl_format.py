"""JSONL sink: lossless, machine-first, stream-appendable.

Line 1 is a ``{"_meta": ...}`` object carrying the document envelope
(title, kind, source, summary, columns, sections); every following
line is one record as a JSON object with keys in column order.  This
is the format downstream tooling should consume:
:meth:`JsonlReportExporter.parse` recovers the records with their
original types intact (the typed round-trip contract the test suite
pins).
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReportError
from repro.report.base import (
    ReportDocument,
    ReportExporter,
    register_format,
)


@register_format
class JsonlReportExporter(ReportExporter):
    """One meta line, then one JSON object per record."""

    format_name = "jsonl"
    file_suffix = ".jsonl"

    def render(self, document: ReportDocument) -> str:
        meta = {
            "_meta": {
                "title": document.title,
                "kind": document.kind,
                "source": document.source,
                "summary": [
                    [label, value] for label, value in document.summary
                ],
                "columns": list(document.columns),
                "records": len(document.records),
                "sections": [
                    {
                        "title": section.title,
                        "columns": list(section.columns),
                        "rows": [list(row) for row in section.rows],
                    }
                    for section in document.sections
                ],
            }
        }
        lines = [json.dumps(meta, separators=(",", ":"), sort_keys=True)]
        for record in document.records:
            ordered = {
                column: record[column] for column in document.columns
            }
            lines.append(
                json.dumps(ordered, separators=(",", ":"))
            )
        return "\n".join(lines) + "\n"

    @staticmethod
    def parse(text: str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        """Read a rendered JSONL document back as ``(meta, records)``
        with record value types intact."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ReportError("empty JSONL report: no meta line")
        try:
            head = json.loads(lines[0])
            meta = head["_meta"]
        except (json.JSONDecodeError, TypeError, KeyError) as error:
            raise ReportError(
                f"JSONL report does not start with a _meta line: {error}"
            ) from error
        try:
            records = [json.loads(line) for line in lines[1:]]
        except json.JSONDecodeError as error:
            raise ReportError(
                f"JSONL report has a malformed record line: {error}"
            ) from error
        return meta, records
