"""The exporter protocol: one document model, many sinks.

Audit reports, verify results, and loss manifests all flatten into the
same :class:`ReportDocument` — a titled, summarised table of records
plus supporting :class:`ReportSection` tables — so every sink renders
every kind of report.  A sink is a :class:`ReportExporter`: it renders
a document to text (:meth:`~ReportExporter.render`) or writes it to a
file (:meth:`~ReportExporter.export`).  Formats register themselves in
:data:`REPORT_FORMATS`; :func:`make_exporter` resolves a name, and
:func:`render_report` / :func:`export_report` are the one-call
conveniences the CLI and the ingest runner use.

Tabular sinks (CSV, JSONL) carry the records losslessly and re-parse
back to equal data; presentation sinks (Markdown, HTML) additionally
render the summary and sections for humans.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import ReportError


@dataclass(frozen=True)
class ReportSection:
    """One supporting table: a title, column names, and rows."""

    title: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...] = ()

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ReportError(
                    f"section {self.title!r}: row has {len(row)} cell(s) "
                    f"but the section declares {len(self.columns)} column(s)"
                )


@dataclass(frozen=True)
class ReportDocument:
    """The format-independent content of one report.

    ``records`` is the primary table — one JSON-safe mapping per line
    item (a violation, a finding, a dropped range); ``columns`` fixes
    the column order tabular sinks use.  ``summary`` is an ordered list
    of (label, value) headline facts; ``sections`` are secondary tables
    presentation sinks render after the summary.
    """

    title: str
    #: Stable machine name: ``"audit"``, ``"verify"``, or ``"repair"``.
    kind: str
    #: Where the underlying data came from (a store path, usually).
    source: str
    summary: tuple[tuple[str, Any], ...] = ()
    columns: tuple[str, ...] = ()
    records: tuple[Mapping[str, Any], ...] = ()
    sections: tuple[ReportSection, ...] = ()

    def __post_init__(self) -> None:
        for record in self.records:
            missing = set(self.columns) - set(record)
            if missing:
                raise ReportError(
                    f"document {self.title!r}: record lacks declared "
                    f"column(s) {sorted(missing)}"
                )


class ReportExporter(ABC):
    """One output format for :class:`ReportDocument`\\ s."""

    #: Machine name used on the CLI (``--format``) and in the registry.
    format_name: str = "abstract"
    #: File suffix (with dot) :meth:`default_filename` uses.
    file_suffix: str = ""

    @abstractmethod
    def render(self, document: ReportDocument) -> str:
        """The complete rendered document as text."""

    def export(
        self, document: ReportDocument, path: str | os.PathLike[str]
    ) -> str:
        """Render to ``path`` (UTF-8); returns the path written."""
        fspath = os.fspath(path)
        text = self.render(document)
        try:
            parent = os.path.dirname(fspath)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(fspath, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as error:
            raise ReportError(
                f"cannot write {self.format_name} report to "
                f"{fspath!r}: {error}"
            ) from error
        return fspath

    def default_filename(self, document: ReportDocument) -> str:
        """The conventional file name: ``<kind><suffix>``."""
        return f"{document.kind}{self.file_suffix}"


#: Registered exporters by format name, registration order preserved.
REPORT_FORMATS: dict[str, type[ReportExporter]] = {}


def register_format(cls: type[ReportExporter]) -> type[ReportExporter]:
    """Class decorator adding an exporter to :data:`REPORT_FORMATS`."""
    REPORT_FORMATS[cls.format_name] = cls
    return cls


def make_exporter(format_name: str) -> ReportExporter:
    """Instantiate the exporter registered under ``format_name``."""
    try:
        exporter_cls = REPORT_FORMATS[format_name]
    except KeyError:
        raise ReportError(
            f"unknown report format {format_name!r}; "
            f"available formats: {', '.join(sorted(REPORT_FORMATS))}"
        ) from None
    return exporter_cls()


def render_report(document: ReportDocument, format_name: str) -> str:
    """Render ``document`` in the named format."""
    return make_exporter(format_name).render(document)


def export_report(
    document: ReportDocument,
    format_name: str,
    path: str | os.PathLike[str],
) -> str:
    """Write ``document`` to ``path`` in the named format."""
    return make_exporter(format_name).export(document, path)


def export_report_files(
    document: ReportDocument,
    directory: str | os.PathLike[str],
    formats: Sequence[str],
) -> list[str]:
    """Write one conventionally-named file per format into ``directory``.

    The rolling-report entry point the ingest runner uses after every
    audited batch: each format lands at
    ``<directory>/<kind><suffix>`` (e.g. ``audit.html``), overwriting
    the previous roll.  Returns the paths written, format order
    preserved.  Unknown format names raise before anything is written.
    """
    exporters = [make_exporter(name) for name in formats]
    base = os.fspath(directory)
    os.makedirs(base, exist_ok=True)
    return [
        exporter.export(
            document, os.path.join(base, exporter.default_filename(document))
        )
        for exporter in exporters
    ]
