"""Markdown sink: the full document as a GitHub-flavoured page.

Renders everything — title, summary facts, the record table, and every
section table — so the output drops straight into a PR description,
issue, or wiki page.  Pipes and newlines inside cells are escaped so a
hostile violation message cannot break the table grid.
"""

from __future__ import annotations

from typing import Any

from repro.report.base import (
    ReportDocument,
    ReportExporter,
    ReportSection,
    register_format,
)
from repro.report.csv_format import csv_cell


def _md_cell(value: Any) -> str:
    text = csv_cell(value)
    return (
        text.replace("\\", "\\\\")
        .replace("|", "\\|")
        .replace("\n", " ")
    )


def _md_table(columns: tuple[str, ...], rows: list) -> list[str]:
    lines = [
        "| " + " | ".join(_md_cell(column) for column in columns) + " |",
        "|" + "|".join(" --- " for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_md_cell(cell) for cell in row) + " |"
        )
    return lines


@register_format
class MarkdownReportExporter(ReportExporter):
    """Title, summary list, record table, and section tables."""

    format_name = "md"
    file_suffix = ".md"

    def render(self, document: ReportDocument) -> str:
        lines = [f"# {document.title}", ""]
        if document.summary:
            for label, value in document.summary:
                lines.append(f"- **{_md_cell(label)}:** {_md_cell(value)}")
            lines.append("")
        if document.records:
            lines.append("## Records")
            lines.append("")
            lines.extend(
                _md_table(
                    document.columns,
                    [
                        [record[column] for column in document.columns]
                        for record in document.records
                    ],
                )
            )
            lines.append("")
        else:
            lines.append("_No records — nothing to report._")
            lines.append("")
        for section in document.sections:
            lines.extend(self._render_section(section))
        return "\n".join(lines).rstrip("\n") + "\n"

    @staticmethod
    def _render_section(section: ReportSection) -> list[str]:
        lines = [f"## {section.title}", ""]
        if section.rows:
            lines.extend(_md_table(section.columns, list(section.rows)))
        else:
            lines.append("_empty_")
        lines.append("")
        return lines
