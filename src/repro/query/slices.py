"""Per-entity trace slices for the delta-audit re-sweep path.

A delta-aware axiom checker caches per-entity verdicts and, per audit,
recomputes only the entities the delta touched.  Recomputing a verdict
needs that entity's evidence — the disclosures about one requester, the
audience of one task.  On an indexed backend fetching that slice is a
point query; these helpers express the fetches as
:class:`~repro.query.TraceQuery` filters so Axioms 2, 6, and 7 read
per-entity slices through the query subsystem instead of maintaining
(or scanning for) whole-trace maps.

The helpers assume an indexed store (``supports_indexed_query``); the
axioms keep their event-folding fallback for every other backend, and
the differential property suite proves both paths verdict-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.events import DisclosureShown, TasksShown
from repro.query.api import TraceQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.trace import PlatformTrace

_DISCLOSURES = TraceQuery().of_kind(DisclosureShown)
_SHOWINGS = TraceQuery().of_kind(TasksShown)


def uses_indexed_slices(trace: "PlatformTrace | None") -> bool:
    """True when per-entity slices should flow through indexed queries."""
    return trace is not None and trace.store.supports_indexed_query


class SliceCache:
    """Cached per-entity views over an append-only trace.

    A delta checker's per-entity evidence (a task's audience, a
    requester's disclosed fields) only *accretes* as events append, so
    a cached view is topped up — never recomputed — by fetching the
    slice at sequence numbers the cache has not seen.  ``fetch(since)``
    must return the entity's new contributions derived from events at
    ``seq >= since``; each audit therefore decodes only the events
    appended since the entity was last looked at.
    """

    def __init__(self) -> None:
        # entity_id -> (derived view, trace revision it is synced to).
        self._views: dict[str, tuple[frozenset, int]] = {}

    def topped_up(
        self,
        trace: "PlatformTrace",
        entity_id: str,
        fetch,
    ) -> frozenset:
        view, synced = self._views.get(entity_id, (frozenset(), 0))
        revision = trace.revision
        if synced < revision:
            view = view | frozenset(fetch(synced))
            self._views[entity_id] = (view, revision)
        return view


def entity_disclosures(
    trace: "PlatformTrace", entity_id: str, entity_kind: str,
    since: int = 0,
) -> "tuple[DisclosureShown, ...]":
    """Disclosure events touching one entity, in append order.

    *Touching* is the delta-audit superset (subject or audience), so
    callers filter by subject/audience themselves — exactly what the
    axiom predicates already do.  ``since`` bounds the slice to events
    at sequence numbers ``>= since``: traces are append-only, so a
    caller that caches its derived view only tops it up with the events
    appended since it last looked.
    """
    query = _DISCLOSURES.entity(entity_id, kind=entity_kind)
    if since:
        query = query.seq_range(since, None)
    return query.run(trace)  # type: ignore[return-value]


def task_audience(
    trace: "PlatformTrace", task_id: str, since: int = 0
) -> set[str]:
    """Workers one task was shown to at sequence numbers ``>= since``
    (Axiom 2's evidence; ``since=0`` means the whole-trace audience)."""
    query = _SHOWINGS.entity(task_id, kind="task")
    if since:
        query = query.seq_range(since, None)
    return {
        event.worker_id
        for event in query.run(trace)  # type: ignore[union-attr]
        if task_id in event.task_ids
    }
