"""Trace analytics: summary statistics over a (possibly saved) log.

Everything here executes through :class:`~repro.query.TraceQuery` and
:func:`~repro.query.entity_event_counts`, so on the SQLite backend the
numbers come from indexed SQL aggregation and on every other backend
from one generic scan — the CLI's ``trace stats`` / ``trace info``
surface these for both on-disk formats.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import (
    ContributionReviewed,
    MaliceFlagged,
    TaskCancelled,
    TaskInterrupted,
)
from repro.core.store import TraceStore
from repro.core.trace import PlatformTrace
from repro.query.api import TraceQuery, _resolve_store, entity_event_counts


def trace_info(source: "PlatformTrace | TraceStore") -> dict:
    """Identity card of a trace: backend, size, entity counts, revision."""
    store = _resolve_store(source)
    info = {
        "backend": store.backend_name,
        "events": len(store.events),
        "revision": store.revision,
        "first_retained": store.first_retained,
        "end_time": store.end_time,
        "workers": len(store.worker_ids),
        "tasks": len(store.tasks),
        "requesters": len(store.requesters),
        "contributions": len(store.contributions),
    }
    path = getattr(store, "path", None)
    if path is not None:
        info["path"] = path
    return info


@dataclass(frozen=True)
class TraceStats:
    """Aggregate counters a platform operator would glance at first."""

    backend: str
    events: int
    end_time: int
    kind_counts: dict[str, int]
    per_worker_events: dict[str, int]
    per_task_events: dict[str, int]
    per_requester_events: dict[str, int]
    violation_adjacent: dict[str, int]
    #: Pipelined-ingest backpressure watermark at snapshot time —
    #: ``{"batches": n, "events": m}`` appended but not yet audited.
    #: ``None`` outside a pipelined ingest (including plain
    #: ``trace stats`` over a saved log).
    audit_lag: dict | None = None
    #: Federated-ingest metadata at snapshot time — the merged tail's
    #: ``source_stats()`` (per-child event counts and watermarks).
    #: ``None`` outside a merged-source ingest.
    sources: dict | None = None

    def as_dict(self) -> dict:
        document = {
            "backend": self.backend,
            "events": self.events,
            "end_time": self.end_time,
            "kind_counts": dict(self.kind_counts),
            "per_worker_events": dict(self.per_worker_events),
            "per_task_events": dict(self.per_task_events),
            "per_requester_events": dict(self.per_requester_events),
            "violation_adjacent": dict(self.violation_adjacent),
        }
        if self.audit_lag is not None:
            document["audit_lag"] = dict(self.audit_lag)
        if self.sources is not None:
            document["sources"] = dict(self.sources)
        return document

    def summary_lines(self) -> list[str]:
        def top(counts: dict[str, int], n: int = 5) -> str:
            ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            return ", ".join(f"{k}={v}" for k, v in ranked[:n]) or "none"

        lines = [
            f"{self.events} events over [0, {self.end_time}] "
            f"({self.backend} backend)",
            "events by kind: " + top(self.kind_counts, n=len(self.kind_counts)),
            f"busiest workers: {top(self.per_worker_events)}",
            f"busiest tasks: {top(self.per_task_events)}",
            f"busiest requesters: {top(self.per_requester_events)}",
            "violation-adjacent: " + ", ".join(
                f"{name}={count}"
                for name, count in self.violation_adjacent.items()
            ),
        ]
        if self.audit_lag is not None:
            lines.append(
                f"audit lag: {self.audit_lag.get('batches', 0)} "
                f"batch(es) ({self.audit_lag.get('events', 0)} "
                "event(s)) behind the append stage"
            )
        if self.sources is not None:
            children = self.sources.get("sources", [])
            lines.append(
                f"federated sources: {len(children)} merged, "
                f"watermark t={self.sources.get('watermark')}"
            )
            for child in children:
                lines.append(
                    f"  {child.get('kind')} {child.get('path')}: "
                    f"{child.get('events', 0)} event(s), "
                    f"watermark t={child.get('watermark')}"
                )
        return lines


def trace_stats(
    source: "PlatformTrace | TraceStore",
    *,
    audit_lag: dict | None = None,
    sources: dict | None = None,
) -> TraceStats:
    """Per-kind, per-entity, and violation-adjacent counters.

    The violation-adjacent counters are the cheap log-level signals the
    axioms formalise: silent rejections (Axiom 6 opacity), involuntary
    interruptions (Axiom 5 evidence), malice flags (Axiom 4's detector
    output), and task cancellations.  ``audit_lag`` attaches the
    pipelined-ingest backpressure watermark to the snapshot (see
    :mod:`repro.ingest.pipeline`); ``sources`` attaches the merged
    tail's per-child federation counters (see
    :meth:`~repro.ingest.sources.MergedSource.source_stats`).
    """
    store = _resolve_store(source)
    everything = TraceQuery()
    silent_rejections = sum(
        1
        for event in everything.of_kind(ContributionReviewed).run(store)
        if not event.accepted and not event.feedback.strip()
    )
    involuntary_interruptions = sum(
        1
        for event in everything.of_kind(TaskInterrupted).run(store)
        if not event.worker_initiated
    )
    return TraceStats(
        backend=store.backend_name,
        events=len(store.events),
        end_time=store.end_time,
        kind_counts=everything.count_by_kind(store),
        per_worker_events=entity_event_counts(store, "worker"),
        per_task_events=entity_event_counts(store, "task"),
        per_requester_events=entity_event_counts(store, "requester"),
        violation_adjacent={
            "silent_rejections": silent_rejections,
            "involuntary_interruptions": involuntary_interruptions,
            "malice_flags": everything.of_kind(MaliceFlagged).count(store),
            "task_cancellations": everything.of_kind(TaskCancelled).count(store),
        },
        audit_lag=None if audit_lag is None else dict(audit_lag),
        sources=None if sources is None else dict(sources),
    )
