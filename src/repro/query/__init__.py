"""Typed trace queries and analytics over any :class:`TraceStore`.

One contract, two plans: a :class:`TraceQuery` describes *what* (entity
scope, event kinds, time/round/sequence ranges, projection, counts) and
the backend decides *how* — indexed SQL on the SQLite store, a generic
cursor scan everywhere else — with result equality pinned by the
differential property suite.  :func:`trace_stats` / :func:`trace_info`
build the CLI-facing analytics on top, and :mod:`repro.query.slices`
feeds per-entity slices to the delta-audit re-sweeps.
"""

from __future__ import annotations

from repro.query.api import (
    ENTITY_KINDS,
    TraceQuery,
    entity_event_counts,
)
from repro.query.slices import entity_disclosures, task_audience
from repro.query.stats import TraceStats, trace_info, trace_stats

__all__ = [
    "ENTITY_KINDS",
    "TraceQuery",
    "TraceStats",
    "entity_disclosures",
    "entity_event_counts",
    "task_audience",
    "trace_info",
    "trace_stats",
]
