"""``TraceQuery``: one typed query contract over every trace backend.

A query is an immutable filter description — entity scope, event kinds,
time range, round, sequence range, limit — built fluently::

    TraceQuery().worker("w0042").of_kind(PaymentIssued).run(trace)
    TraceQuery().time_range(10, 20).count(trace)
    TraceQuery().entity("t0007", kind="task").count_by_kind(trace)

Execution dispatches on the backend: stores that declare
``supports_indexed_query`` (the SQLite backend) execute the filters as
indexed SQL and pay only for matching rows; every other backend is
served by a generic scan over its retained events.  The two paths are
proven result-identical by the differential property suite
(``tests/property/test_property_trace_query.py``), so callers — the
CLI, the stats module, the axioms' delta re-sweeps — write one query
and get the best plan the storage can offer.

Entity scoping matches the delta-audit notion of *touched*: an event is
in scope for entity ``x`` when :func:`~repro.core.store.collect_touched`
of that single event names ``x`` (optionally restricted to one entity
kind) — deliberately the same currency the
:class:`~repro.core.audit.DeltaAuditEngine` invalidates by, so a delta
re-sweep can fetch exactly the slice it needs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from repro.core.events import _KIND_NAMES, Event
from repro.core.store import TraceStore, collect_touched
from repro.core.trace import PlatformTrace
from repro.errors import QueryError
from repro.telemetry.instruments import record_store_query
from repro.telemetry.registry import get_registry

ENTITY_KINDS: tuple[str, ...] = (
    "worker", "task", "requester", "contribution",
)

_VALID_KINDS: frozenset[str] = frozenset(
    name for event_type, name in _KIND_NAMES.items() if name != "event"
)


def _resolve_store(source: "PlatformTrace | TraceStore") -> TraceStore:
    if isinstance(source, PlatformTrace):
        return source.store
    if isinstance(source, TraceStore):
        return source
    raise QueryError(
        f"queries run against a PlatformTrace or TraceStore, "
        f"got {type(source).__name__}"
    )


@contextmanager
def _timed_query(store: TraceStore, op: str) -> Iterator[None]:
    registry = get_registry()
    if not registry.enabled:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        record_store_query(
            store.backend_name, op, time.perf_counter() - started,
            registry=registry,
        )


def _kind_name(kind: "str | type[Event]") -> str:
    if isinstance(kind, type):
        if issubclass(kind, Event) and kind in _KIND_NAMES:
            return _KIND_NAMES[kind]
        raise QueryError(f"unknown event type {kind!r}")
    if kind not in _VALID_KINDS:
        raise QueryError(
            f"unknown event kind {kind!r}; "
            f"known kinds: {', '.join(sorted(_VALID_KINDS))}"
        )
    return str(kind)


@dataclass(frozen=True)
class TraceQuery:
    """An immutable, composable filter over a trace's event log.

    Builder methods return new queries (the receiver is never
    mutated), so partial queries can be shared and refined::

        payments = TraceQuery().of_kind(PaymentIssued)
        payments.worker("w0001").count(trace)
        payments.time_range(0, 50).run(trace)
    """

    entity_ids: tuple[str, ...] = ()
    entity_kind: str | None = None
    kinds: tuple[str, ...] = ()
    time_start: int | None = None
    time_end: int | None = None
    seq_start: int | None = None
    seq_end: int | None = None
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.entity_kind is not None and self.entity_kind not in ENTITY_KINDS:
            raise QueryError(
                f"unknown entity kind {self.entity_kind!r}; "
                f"known kinds: {', '.join(ENTITY_KINDS)}"
            )
        if self.entity_kind is not None and not self.entity_ids:
            raise QueryError("entity_kind without entity ids filters nothing")
        for name in ("time_start", "time_end", "seq_start", "seq_end"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise QueryError(f"{name} must be >= 0, got {value}")
        if (
            self.time_start is not None and self.time_end is not None
            and self.time_end < self.time_start
        ):
            raise QueryError(
                f"empty time range [{self.time_start}, {self.time_end})"
            )
        if self.limit is not None and self.limit < 0:
            raise QueryError(f"limit must be >= 0, got {self.limit}")

    # ------------------------------------------------------------------
    # Builders

    def entity(self, *entity_ids: str, kind: str | None = None) -> "TraceQuery":
        """Scope to events *touching* any of the given entities.

        ``kind`` optionally restricts which entity role counts
        ("worker", "task", "requester", "contribution"); without it an
        id matches in any role.
        """
        if not entity_ids:
            raise QueryError("entity() needs at least one entity id")
        return replace(
            self, entity_ids=tuple(entity_ids), entity_kind=kind
        )

    def worker(self, *worker_ids: str) -> "TraceQuery":
        return self.entity(*worker_ids, kind="worker")

    def task(self, *task_ids: str) -> "TraceQuery":
        return self.entity(*task_ids, kind="task")

    def requester(self, *requester_ids: str) -> "TraceQuery":
        return self.entity(*requester_ids, kind="requester")

    def contribution(self, *contribution_ids: str) -> "TraceQuery":
        return self.entity(*contribution_ids, kind="contribution")

    def of_kind(self, *kinds: "str | type[Event]") -> "TraceQuery":
        """Scope to the given event kinds (names or event classes)."""
        if not kinds:
            raise QueryError("of_kind() needs at least one event kind")
        return replace(
            self, kinds=tuple(_kind_name(kind) for kind in kinds)
        )

    def time_range(
        self, start: int | None = None, end: int | None = None
    ) -> "TraceQuery":
        """Scope to event times in the half-open range ``[start, end)``."""
        return replace(self, time_start=start, time_end=end)

    def at_round(self, tick: int) -> "TraceQuery":
        """Scope to one simulated round (sessions advance one clock
        tick per round, so a round is the time slice ``[tick, tick+1)``)."""
        return replace(self, time_start=tick, time_end=tick + 1)

    def seq_range(
        self, start: int | None = None, end: int | None = None
    ) -> "TraceQuery":
        """Scope to append positions in the half-open range ``[start, end)``."""
        return replace(self, seq_start=start, seq_end=end)

    def take(self, limit: int) -> "TraceQuery":
        """Return at most ``limit`` events from :meth:`run` (counts and
        aggregates ignore the limit)."""
        return replace(self, limit=limit)

    # ------------------------------------------------------------------
    # Execution

    def run(self, source: "PlatformTrace | TraceStore") -> tuple[Event, ...]:
        """Matching events in append order."""
        store = _resolve_store(source)
        with _timed_query(store, "run"):
            if store.supports_indexed_query:
                return store.query_events(self)  # type: ignore[attr-defined]
            matches: list[Event] = []
            for event in self._scan(store):
                matches.append(event)
                if self.limit is not None and len(matches) >= self.limit:
                    break
            return tuple(matches)

    def count(self, source: "PlatformTrace | TraceStore") -> int:
        """How many events match (ignores any :meth:`take` limit)."""
        store = _resolve_store(source)
        with _timed_query(store, "count"):
            if store.supports_indexed_query:
                return store.query_count(self)  # type: ignore[attr-defined]
            return sum(1 for _ in self._scan(store))

    def count_by_kind(
        self, source: "PlatformTrace | TraceStore"
    ) -> dict[str, int]:
        """Histogram of matching events by kind, kind-sorted (ignores
        any :meth:`take` limit)."""
        store = _resolve_store(source)
        with _timed_query(store, "count_by_kind"):
            if store.supports_indexed_query:
                return store.query_kind_counts(self)  # type: ignore[attr-defined]
            counts: dict[str, int] = {}
            for event in self._scan(store):
                counts[event.kind] = counts.get(event.kind, 0) + 1
            return dict(sorted(counts.items()))

    def project(
        self,
        source: "PlatformTrace | TraceStore",
        *fields: str,
    ) -> list[tuple]:
        """Matching events projected to attribute tuples.

        ``"kind"`` and ``"time"`` exist on every event; other fields
        are event-type-specific and project as ``None`` where absent
        (queries often span kinds).
        """
        if not fields:
            raise QueryError("project() needs at least one field name")
        return [
            tuple(getattr(event, name, None) for name in fields)
            for event in self.run(source)
        ]

    # ------------------------------------------------------------------
    # Generic fallback: one pass over the backend's retained events.

    def _scan(self, store: TraceStore) -> Iterator[Event]:
        kinds = set(self.kinds) if self.kinds else None
        entity_ids = set(self.entity_ids) if self.entity_ids else None
        for seq, event in enumerate(store.events, start=store.first_retained):
            if self.seq_start is not None and seq < self.seq_start:
                continue
            if self.seq_end is not None and seq >= self.seq_end:
                break
            if kinds is not None and event.kind not in kinds:
                continue
            if self.time_start is not None and event.time < self.time_start:
                continue
            if self.time_end is not None and event.time >= self.time_end:
                continue
            if entity_ids is not None and not self._touches(event, entity_ids):
                continue
            yield event

    def _touches(self, event: Event, entity_ids: set[str]) -> bool:
        touched = collect_touched((event,))
        if self.entity_kind == "worker":
            pool: Iterable[str] = touched.worker_ids
        elif self.entity_kind == "task":
            pool = touched.task_ids
        elif self.entity_kind == "requester":
            pool = touched.requester_ids
        elif self.entity_kind == "contribution":
            pool = touched.contribution_ids
        else:
            pool = (
                touched.worker_ids | touched.task_ids
                | touched.requester_ids | touched.contribution_ids
            )
        return not entity_ids.isdisjoint(pool)


def entity_event_counts(
    source: "PlatformTrace | TraceStore", entity_kind: str
) -> dict[str, int]:
    """Events touching each entity of one kind, id-sorted.

    Indexed backends group over the ``event_entities`` inverted index;
    the generic fallback accumulates touched sets in one scan.
    """
    if entity_kind not in ENTITY_KINDS:
        raise QueryError(
            f"unknown entity kind {entity_kind!r}; "
            f"known kinds: {', '.join(ENTITY_KINDS)}"
        )
    store = _resolve_store(source)
    with _timed_query(store, "entity_event_counts"):
        if store.supports_indexed_query:
            return store.query_entity_counts(entity_kind)  # type: ignore[attr-defined]
        counts: dict[str, int] = {}
        attribute = f"{entity_kind}_ids"
        for event in store.events:
            for entity_id in getattr(collect_touched((event,)), attribute):
                counts[entity_id] = counts.get(entity_id, 0) + 1
        return dict(sorted(counts.items()))
