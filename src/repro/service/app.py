"""The service's router/DI core: routes, envelopes, error mapping.

The audit service runs on the stdlib HTTP server (tier-1 stays
dependency-free), so this module supplies the small FastAPI-style layer
the routers are written against:

* :class:`Router` — named path patterns (``/tenants/{tenant}/events``)
  registered per method with ``@router.get(...)`` / ``@router.post(...)``
  decorators, grouped per resource module under
  :mod:`repro.service.routers`.
* :class:`ServiceApp` — the dispatch table.  It owns the app's shared
  dependencies (the :class:`~repro.service.tenants.TenantManager`,
  the axiom registry — the *template layer*) and injects them into
  handlers by parameter name, so a handler declares exactly what it
  needs::

      @router.post("/tenants/{tenant}/events")
      def append(request: Request, tenants: TenantManager) -> dict:
          ...

* The JSON envelope: a handler returns a dict (sent as ``200``), a
  :class:`Response` (explicit status / non-JSON payload), and raises
  library errors for everything abnormal.  :meth:`ServiceApp.dispatch`
  maps exception types to status codes — :class:`ServiceError`
  subclasses carry their own code, query/trace/report errors are client
  errors (400), anything unexpected is a 500 — and renders every error
  as ``{"error": {"type", "message", "status"}}`` so clients branch on
  one shape.

The layer is transport-free: :meth:`ServiceApp.dispatch` takes method,
path, query, and decoded body, and returns a :class:`Response`.  The
HTTP plumbing lives in :mod:`repro.service.server`; tests can drive an
app without a socket.
"""

from __future__ import annotations

import inspect
import json
import logging
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import (
    BadRequestError,
    ReportError,
    ReproError,
    ServiceError,
    TraceError,
)

#: Library errors that mean "the client asked for something invalid"
#: rather than "the service broke".  ``TraceError`` covers the query,
#: ingest, backend, and serialisation families (they all subclass it);
#: ``ReportError`` is its sibling for unknown report formats.
_CLIENT_ERRORS: tuple[type[Exception], ...] = (TraceError, ReportError)

_LOGGER = logging.getLogger("repro.service")


@dataclass
class Request:
    """One decoded service request, transport-independent."""

    method: str
    path: str
    path_params: dict[str, str] = field(default_factory=dict)
    query: dict[str, list[str]] = field(default_factory=dict)
    body: Any = None

    # ------------------------------------------------------------------
    # Typed parameter access (raise BadRequestError, never ValueError)

    def param(self, name: str) -> str:
        """A path parameter captured by the matched route pattern."""
        return self.path_params[name]

    def query_str(self, name: str, default: str | None = None) -> str | None:
        values = self.query.get(name)
        if not values:
            return default
        return values[-1]

    def query_list(self, name: str) -> list[str]:
        """Every value given for a repeatable query parameter."""
        return list(self.query.get(name, ()))

    def query_int(self, name: str, default: int | None = None) -> int | None:
        raw = self.query_str(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise BadRequestError(
                f"query parameter {name!r} must be an integer, got {raw!r}"
            ) from None

    def query_float(
        self, name: str, default: float | None = None
    ) -> float | None:
        raw = self.query_str(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise BadRequestError(
                f"query parameter {name!r} must be a number, got {raw!r}"
            ) from None

    def query_flag(self, name: str) -> bool:
        """A boolean query parameter (``?count=1``/``true``/``yes``)."""
        raw = self.query_str(name)
        if raw is None:
            return False
        if raw.lower() in ("1", "true", "yes", "on", ""):
            return True
        if raw.lower() in ("0", "false", "no", "off"):
            return False
        raise BadRequestError(
            f"query parameter {name!r} must be boolean-ish, got {raw!r}"
        )

    def body_object(self) -> dict[str, Any]:
        """The request body as a JSON object, or a 400."""
        if not isinstance(self.body, dict):
            raise BadRequestError(
                "request body must be a JSON object, got "
                f"{type(self.body).__name__ if self.body is not None else 'nothing'}"
            )
        return self.body

    def body_field(self, name: str, types: tuple[type, ...], *,
                   required: bool = True, default: Any = None) -> Any:
        """One typed field of the JSON body, or a 400 naming the field."""
        body = self.body_object()
        if name not in body:
            if required:
                raise BadRequestError(f"request body is missing {name!r}")
            return default
        value = body[name]
        # bool is an int subclass; an int field must not accept True.
        if not isinstance(value, types) or (
            isinstance(value, bool) and bool not in types
        ):
            wanted = "/".join(t.__name__ for t in types)
            raise BadRequestError(
                f"request body field {name!r} must be {wanted}, got "
                f"{type(value).__name__}"
            )
        return value


@dataclass
class Response:
    """What a handler produced: a status plus JSON payload or raw text."""

    status: int = 200
    payload: Any = None
    text: str | None = None
    content_type: str = "application/json"

    def encode(self) -> bytes:
        if self.text is not None:
            return self.text.encode("utf-8")
        return json.dumps(self.payload, indent=2).encode("utf-8") + b"\n"


@dataclass(frozen=True)
class _Route:
    method: str
    segments: tuple[str, ...]
    handler: Callable[..., Any]
    wants: tuple[str, ...]  # dependency parameter names, in order


class Router:
    """A group of routes contributed by one resource module."""

    def __init__(self) -> None:
        self.routes: list[_Route] = []

    def route(self, method: str, pattern: str) -> Callable:
        if not pattern.startswith("/"):
            raise ValueError(f"route pattern must start with '/': {pattern!r}")
        segments = tuple(s for s in pattern.split("/") if s)

        def decorate(handler: Callable[..., Any]) -> Callable[..., Any]:
            parameters = list(inspect.signature(handler).parameters)
            if not parameters or parameters[0] != "request":
                raise ValueError(
                    f"handler {handler.__name__} must take 'request' as "
                    "its first parameter"
                )
            self.routes.append(_Route(
                method=method.upper(),
                segments=segments,
                handler=handler,
                wants=tuple(parameters[1:]),
            ))
            return handler

        return decorate

    def get(self, pattern: str) -> Callable:
        return self.route("GET", pattern)

    def post(self, pattern: str) -> Callable:
        return self.route("POST", pattern)

    def delete(self, pattern: str) -> Callable:
        return self.route("DELETE", pattern)


def _match(segments: tuple[str, ...], path: str) -> dict[str, str] | None:
    parts = [p for p in path.split("/") if p]
    if len(parts) != len(segments):
        return None
    captured: dict[str, str] = {}
    for pattern_part, part in zip(segments, parts):
        if pattern_part.startswith("{") and pattern_part.endswith("}"):
            captured[pattern_part[1:-1]] = part
        elif pattern_part != part:
            return None
    return captured


def error_status(error: Exception) -> int:
    """The HTTP status an exception maps to."""
    if isinstance(error, ServiceError):
        return error.status
    if isinstance(error, _CLIENT_ERRORS):
        return 400
    return 500


class ServiceApp:
    """Dispatch table + dependency injector for the audit service.

    ``dependencies`` are the shared objects handlers may declare by
    parameter name (conventionally ``tenants`` — the
    :class:`~repro.service.tenants.TenantManager` holding the shared
    axiom registry and every per-tenant store/session).
    """

    def __init__(self, **dependencies: Any) -> None:
        self._dependencies = dependencies
        self._routes: list[_Route] = []

    def include(self, router: Router) -> "ServiceApp":
        for route in router.routes:
            missing = [
                name for name in route.wants
                if name not in self._dependencies
            ]
            if missing:
                raise ValueError(
                    f"handler {route.handler.__name__} wants unknown "
                    f"dependencies: {', '.join(missing)} "
                    f"(available: {', '.join(sorted(self._dependencies))})"
                )
            self._routes.append(route)
        return self

    def dispatch(
        self,
        method: str,
        path: str,
        query: Mapping[str, list[str]] | None = None,
        body: Any = None,
    ) -> Response:
        """Route one request and envelope whatever happens.

        The instrumented boundary: every dispatch — handler result,
        error envelope, 404/405 — lands in the per-route/per-tenant
        request counter and latency histogram, bracketed by the
        in-flight gauge (handlers run on the HTTP server's worker
        threads, so the gauge reads true concurrency).
        """
        from repro.telemetry.instruments import (
            record_service_request,
            service_inflight_gauge,
        )
        from repro.telemetry.registry import get_registry

        registry = get_registry()
        if not registry.enabled:
            response, _, _ = self._dispatch(method, path, query, body)
            return response
        inflight = service_inflight_gauge(registry=registry)
        inflight.inc()
        started = time.perf_counter()
        try:
            response, route_pattern, tenant = self._dispatch(
                method, path, query, body
            )
        finally:
            inflight.dec()
        record_service_request(
            route_pattern, method.upper(), tenant, response.status,
            time.perf_counter() - started, registry=registry,
        )
        return response

    def _dispatch(
        self,
        method: str,
        path: str,
        query: Mapping[str, list[str]] | None = None,
        body: Any = None,
    ) -> tuple[Response, str, str]:
        """Dispatch; returns (response, route pattern, tenant) so the
        instrumented wrapper labels by pattern (bounded cardinality),
        never by raw path."""
        method = method.upper()
        matched_other_method = False
        for route in self._routes:
            params = _match(route.segments, path)
            if params is None:
                continue
            if route.method != method:
                matched_other_method = True
                continue
            pattern = "/" + "/".join(route.segments)
            tenant = params.get("tenant", "")
            request = Request(
                method=method,
                path=path,
                path_params=params,
                query=dict(query or {}),
                body=body,
            )
            arguments = [
                self._dependencies[name] for name in route.wants
            ]
            try:
                result = route.handler(request, *arguments)
            except Exception as error:  # noqa: BLE001 - envelope boundary
                return self._error_response(error), pattern, tenant
            if isinstance(result, Response):
                return result, pattern, tenant
            return Response(status=200, payload=result), pattern, tenant
        if matched_other_method:
            return (
                _envelope(
                    405, "MethodNotAllowed",
                    f"method {method} is not supported on {path}",
                ),
                "unrouted", "",
            )
        return (
            _envelope(404, "NotFound", f"no route matches {method} {path}"),
            "unrouted", "",
        )

    def _error_response(self, error: Exception) -> Response:
        code = error_status(error)
        masked = not isinstance(error, ReproError) and code >= 500
        if masked:
            # The wire envelope deliberately hides internals, so this
            # log line is the only place the real traceback survives.
            _LOGGER.error(
                "unexpected %s handling request (masked as "
                "InternalError 500)",
                type(error).__name__,
                exc_info=error,
            )
        kind = type(error).__name__ if isinstance(error, ReproError) else (
            "InternalError" if code >= 500 else type(error).__name__
        )
        return _envelope(code, kind, str(error))


def _envelope(status: int, kind: str, message: str) -> Response:
    from repro.telemetry.instruments import record_service_error

    record_service_error(kind, status)
    return Response(
        status=status,
        payload={"error": {"type": kind, "message": message, "status": status}},
    )
