"""JSON wire shapes for audit-service payloads.

Events cross the wire in the :mod:`repro.core.serialize` export format
(the same records ``trace save``/``tail`` exchange), so anything that
can feed an ingest can feed the service and vice versa.  This module
adds the remaining shapes the serializer does not cover: violations and
audit verdicts, flattened with :func:`repro.report.jsonable` so every
payload is plain JSON.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.report import jsonable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.audit import AuditReport
    from repro.core.violations import Violation


def violation_to_dict(violation: "Violation") -> dict:
    """One violation as a JSON-safe record (wire twin of ``describe``)."""
    return {
        "axiom_id": violation.axiom_id,
        "severity": violation.severity.value,
        "time": violation.time,
        "subjects": list(violation.subjects),
        "message": violation.message,
        "witness": jsonable(violation.witness),
        "description": violation.describe(),
    }


def violation_key(record: dict) -> str:
    """A canonical identity string for a wire-format violation record.

    Used to diff consecutive cumulative audit reports into per-audit
    *new* violations: two records are the same violation iff every wire
    field matches.  ``description`` is derived, so it is excluded.
    """
    return json.dumps(
        {k: v for k, v in record.items() if k != "description"},
        sort_keys=True,
    )


def report_to_dict(report: "AuditReport") -> dict:
    """An audit verdict as a JSON-safe document."""
    return {
        "trace_length": report.trace_length,
        "passed": report.passed,
        "overall_score": report.overall_score,
        "total_violations": report.total_violations,
        "scores": {str(axiom): score
                   for axiom, score in report.scores().items()},
        "axioms": [
            {
                "axiom_id": check.axiom_id,
                "title": check.title,
                "score": check.score,
                "violations": check.violation_count,
                "opportunities": check.opportunities,
            }
            for check in report.results
        ],
        "violations": [violation_to_dict(v) for v in report.violations],
    }
