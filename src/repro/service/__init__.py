"""Audit-as-a-service: a multi-tenant HTTP layer over the library.

One long-running process (CLI: ``python -m repro trace serve``) hosts
many tenants — each a :class:`~repro.core.store.TraceStore` plus a
delta-audit session against one shared axiom registry — behind a JSON
HTTP API: append events (wire format = :mod:`repro.core.serialize`),
run/poll/watch audits, execute :class:`~repro.query.TraceQuery` filters
over the wire, and render reports through the exporter registry.

Layers (each importable on its own):

* :mod:`repro.service.app` — transport-free router/DI/envelope core;
* :mod:`repro.service.tenants` — tenant lifecycle, locks, manifest;
* :mod:`repro.service.routers` — the resource endpoints;
* :mod:`repro.service.server` — stdlib ``ThreadingHTTPServer`` wiring;
* :mod:`repro.service.client` — the synchronous Python client.

The matching ingest side, :class:`~repro.ingest.http_source
.HTTPIngestSource`, tails a tenant's export endpoint with the standard
checkpointed pipeline — service-hosted traces compose with every
``trace tail``/``resume`` workflow.
"""

from repro.service.app import Request, Response, Router, ServiceApp
from repro.service.client import ServiceClient
from repro.service.server import AuditService, build_app
from repro.service.tenants import (
    TENANT_BACKENDS,
    Tenant,
    TenantManager,
    validate_tenant_name,
)
from repro.service.wire import report_to_dict, violation_to_dict

__all__ = [
    "AuditService",
    "Request",
    "Response",
    "Router",
    "ServiceApp",
    "ServiceClient",
    "TENANT_BACKENDS",
    "Tenant",
    "TenantManager",
    "build_app",
    "report_to_dict",
    "validate_tenant_name",
    "violation_to_dict",
]
