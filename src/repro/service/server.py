"""HTTP transport for the audit service (stdlib ``http.server``).

:class:`AuditService` assembles the pieces — a
:class:`~repro.service.tenants.TenantManager` over a data dir, the
:class:`~repro.service.app.ServiceApp` with every resource router, and
a :class:`~http.server.ThreadingHTTPServer` — into one long-running
process::

    with AuditService("runs/service-data", port=8040) as service:
        service.serve_forever()        # Ctrl-C returns

Threading model: the server handles each request on its own daemon
thread; the app layer is stateless, and all shared mutable state lives
behind the :class:`TenantManager`'s per-tenant locks.  SQLite stores
are opened with cross-thread access enabled
(:mod:`repro.core.store.sqlite`) precisely because the tenant lock —
not thread affinity — is the serialization mechanism here.

``port=0`` binds an ephemeral port (tests); :attr:`AuditService.port`
reports the bound one either way.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.core.axioms import AxiomRegistry
from repro.service.app import Response, ServiceApp
from repro.service.routers import all_routers
from repro.service.tenants import TenantManager


def build_app(tenants: TenantManager) -> ServiceApp:
    """The complete service app over one tenant manager."""
    app = ServiceApp(tenants=tenants)
    for router in all_routers():
        app.include(router)
    return app


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Thin adapter: HTTP request in, ``ServiceApp.dispatch`` out.

    The app is reached through ``self.server.app`` (set by
    :class:`AuditHTTPServer`), so one handler class serves any app.
    """

    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a service
    # hosting hundreds of tenants would drown the console.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return _BodyError(f"request body is not valid JSON: {error}")

    def _respond(self, response: Response) -> None:
        body = response.encode()
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle(self, method: str) -> None:
        split = urlsplit(self.path)
        body = self._read_body()
        if isinstance(body, _BodyError):
            self._respond(Response(status=400, payload={"error": {
                "type": "BadRequestError",
                "message": str(body),
                "status": 400,
            }}))
            return
        response = self.server.app.dispatch(  # type: ignore[attr-defined]
            method,
            split.path,
            parse_qs(split.query, keep_blank_values=True),
            body,
        )
        try:
            self._respond(response)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response (watch timeouts do this);
            # nothing to clean up — state changes already committed.
            pass

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def do_DELETE(self) -> None:
        self._handle("DELETE")


class _BodyError:
    def __init__(self, message: str) -> None:
        self.message = message

    def __str__(self) -> str:
        return self.message


class AuditHTTPServer(ThreadingHTTPServer):
    """Threading server carrying the app for its request handlers."""

    daemon_threads = True
    # The socketserver default backlog (5) drops connections the moment
    # ~100 tenant sessions connect at once — the exact regime the
    # concurrency bench gates on.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], app: ServiceApp) -> None:
        super().__init__(address, _ServiceRequestHandler)
        self.app = app


class AuditService:
    """One audit service process: tenants + app + HTTP server.

    ``data_dir=None`` hosts memory tenants only (handy in tests).
    :meth:`close` shuts the listener down and checkpoints/closes every
    tenant — the same path ``trace serve`` runs on SIGINT.
    """

    def __init__(
        self,
        data_dir: str | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        default_backend: str = "sqlite",
        default_audit_jobs: int = 1,
        registry: AxiomRegistry | None = None,
    ) -> None:
        self.tenants = TenantManager(
            data_dir,
            default_backend=default_backend,
            default_audit_jobs=default_audit_jobs,
            registry=registry,
        )
        self.app = build_app(self.tenants)
        self._server = AuditHTTPServer((host, port), self.app)
        self._thread: threading.Thread | None = None
        self._served = False
        self._closed = False

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or Ctrl-C)."""
        self._served = True
        self._server.serve_forever(poll_interval=0.2)

    def start(self) -> "AuditService":
        """Serve on a background thread (tests, embedded use)."""
        if self._thread is None:
            self._served = True
            self._thread = threading.Thread(
                target=self.serve_forever,
                name="audit-service",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> dict:
        """Stop serving, then checkpoint and close every tenant.

        Idempotent.  Returns the :meth:`TenantManager.close_all`
        summary (``{"tenants": n, "checkpointed": m}``)."""
        if self._closed:
            return {"tenants": len(self.tenants.names()), "checkpointed": 0}
        self._closed = True
        # ``shutdown()`` waits for the serve loop to exit; calling it
        # when ``serve_forever`` never ran would wait forever.
        if self._served:
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        return self.tenants.close_all()

    def __enter__(self) -> "AuditService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
