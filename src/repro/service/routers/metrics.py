"""The ``/metrics`` endpoint: live telemetry in scrapeable form.

| method | path     | action                                        |
|--------|----------|-----------------------------------------------|
| GET    | /metrics | Prometheus text exposition (``?format=json``  |
|        |          | for the registry snapshot document)           |

The endpoint renders the *process-wide* registry: one served process
hosts every tenant, so a scrape sees the whole service — per-tenant
separation lives in the ``tenant`` label on the request counters, not
in separate endpoints.
"""

from __future__ import annotations

from repro.errors import BadRequestError
from repro.service.app import Request, Response, Router
from repro.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    get_registry,
    render_prometheus,
)

router = Router()


@router.get("/metrics")
def metrics(request: Request) -> Response:
    format_name = request.query_str("format", "prometheus")
    registry = get_registry()
    if format_name == "json":
        return Response(status=200, payload=registry.snapshot())
    if format_name != "prometheus":
        raise BadRequestError(
            f"unknown metrics format {format_name!r} "
            "(expected 'prometheus' or 'json')"
        )
    return Response(
        status=200,
        text=render_prometheus(registry),
        content_type=PROMETHEUS_CONTENT_TYPE,
    )
