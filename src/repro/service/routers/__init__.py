"""Resource routers of the audit service, one module per resource.

:func:`all_routers` is what :mod:`repro.service.server` includes into
the app; tests can include a subset to exercise one resource in
isolation.
"""

from __future__ import annotations

from repro.service.app import Router
from repro.service.routers.audits import router as audits_router
from repro.service.routers.events import router as events_router
from repro.service.routers.metrics import router as metrics_router
from repro.service.routers.query import router as query_router
from repro.service.routers.reports import router as reports_router
from repro.service.routers.tenants import router as tenants_router


def all_routers() -> list[Router]:
    return [
        tenants_router,
        events_router,
        audits_router,
        query_router,
        reports_router,
        metrics_router,
    ]


__all__ = [
    "all_routers",
    "audits_router",
    "events_router",
    "metrics_router",
    "query_router",
    "reports_router",
    "tenants_router",
]
