"""Report rendering through the exporter registry.

| method | path                      | action                            |
|--------|---------------------------|-----------------------------------|
| GET    | /tenants/{tenant}/report  | render the latest audit verdict   |

``?format=`` selects any registered exporter (csv, jsonl, md, html by
default — a custom ``@register_format`` sink is immediately servable),
and the response body is byte-identical to what ``trace report`` writes
for the same store, which the differential suite asserts.
"""

from __future__ import annotations

from repro.errors import BadRequestError
from repro.report import audit_document, render_report
from repro.service.app import Request, Response, Router
from repro.service.tenants import TenantManager

#: Response content types per built-in format; unknown (custom
#: registered) formats fall back to text/plain.
CONTENT_TYPES: dict[str, str] = {
    "csv": "text/csv; charset=utf-8",
    "jsonl": "application/jsonl; charset=utf-8",
    "md": "text/markdown; charset=utf-8",
    "html": "text/html; charset=utf-8",
}

router = Router()


@router.get("/tenants/{tenant}/report")
def render_audit_report(request: Request, tenants: TenantManager) -> Response:
    format_name = request.query_str("format", "md")
    tenant = tenants.get(request.param("tenant"))
    with tenant.lock:
        if tenant.last_report is None:
            raise BadRequestError(
                f"tenant {tenant.name!r} has not been audited yet; "
                f"POST /tenants/{tenant.name}/audits first"
            )
        document = audit_document(
            tenant.last_report, tenant.store, source=tenant.name
        )
        text = render_report(document, format_name)
    return Response(
        status=200,
        text=text,
        content_type=CONTENT_TYPES.get(
            format_name, "text/plain; charset=utf-8"
        ),
    )
