"""Event append + export endpoints (wire format = ``core/serialize``).

| method | path                      | action                           |
|--------|---------------------------|----------------------------------|
| POST   | /tenants/{tenant}/events  | batch-append wire-format records |
| GET    | /tenants/{tenant}/events  | positional export (for tailing)  |

The GET side is the service twin of a JSONL export file: a cursor read
``?start=N&limit=M`` returning records plus the next cursor, which is
exactly what :class:`~repro.ingest.http_source.HTTPIngestSource` polls
— so one service's tenant can be tailed into another store with the
standard ingest pipeline.
"""

from __future__ import annotations

from repro.core.serialize import event_to_dict
from repro.errors import BadRequestError
from repro.service.app import Request, Router
from repro.service.tenants import TenantManager

#: Cap on one export page, so a misconfigured poller cannot ask one
#: request to serialize an entire multi-million-event store.
MAX_EXPORT_PAGE = 10_000

router = Router()


@router.post("/tenants/{tenant}/events")
def append_events(request: Request, tenants: TenantManager) -> dict:
    records = request.body_field("events", (list,))
    for position, record in enumerate(records):
        if not isinstance(record, dict):
            raise BadRequestError(
                f"events[{position}] is not an event record object "
                f"(got {type(record).__name__})"
            )
    tenant = tenants.get(request.param("tenant"))
    return tenant.append_records(records)


@router.get("/tenants/{tenant}/events")
def export_events(request: Request, tenants: TenantManager) -> dict:
    start = request.query_int("start", 0)
    limit = request.query_int("limit", 1000)
    if start < 0:
        raise BadRequestError(f"start must be >= 0, got {start}")
    if limit < 1 or limit > MAX_EXPORT_PAGE:
        raise BadRequestError(
            f"limit must be in [1, {MAX_EXPORT_PAGE}], got {limit}"
        )
    tenant = tenants.get(request.param("tenant"))
    with tenant.lock:
        trace = tenant.trace
        events = trace.events_since(start)[:limit]
        revision = trace.revision
    return {
        "events": [event_to_dict(event) for event in events],
        "start": start,
        "next": start + len(events),
        "revision": revision,
    }
