"""Audit execution, history, and the long-poll watch stream.

| method | path                      | action                            |
|--------|---------------------------|-----------------------------------|
| POST   | /tenants/{tenant}/audits  | run one delta audit now           |
| GET    | /tenants/{tenant}/audits  | audit history (delta records)     |
| GET    | /tenants/{tenant}/audits/latest | full latest verdict         |
| GET    | /tenants/{tenant}/watch   | long-poll for audits ``>= after`` |

``watch`` is the streaming contract from the ROADMAP sketch flattened
onto plain request/response HTTP: a client holds a cursor (the number
of audit records it has seen), asks for everything at or past it, and
blocks server-side until an audit lands or the timeout runs out.  Each
record carries the *new* violations that audit surfaced, so a dashboard
renders deltas without diffing cumulative reports client-side.
"""

from __future__ import annotations

from repro.service.app import Request, Router
from repro.service.tenants import TenantManager

#: Long-poll timeout ceiling; keeps handler threads bounded.
MAX_WATCH_TIMEOUT = 60.0

router = Router()


@router.post("/tenants/{tenant}/audits")
def run_audit(request: Request, tenants: TenantManager) -> dict:
    return tenants.get(request.param("tenant")).run_audit()


@router.get("/tenants/{tenant}/audits")
def audit_history(request: Request, tenants: TenantManager) -> dict:
    tenant = tenants.get(request.param("tenant"))
    after = request.query_int("after", 0)
    with tenant.lock:
        records = list(tenant.audits[max(after, 0):])
    return {"audits": records, "total": after + len(records)}


@router.get("/tenants/{tenant}/audits/latest")
def latest_audit(request: Request, tenants: TenantManager) -> dict:
    return tenants.get(request.param("tenant")).latest_report()


@router.get("/tenants/{tenant}/watch")
def watch(request: Request, tenants: TenantManager) -> dict:
    tenant = tenants.get(request.param("tenant"))
    after = request.query_int("after", 0)
    timeout = request.query_float("timeout", 10.0)
    timeout = max(0.0, min(timeout, MAX_WATCH_TIMEOUT))
    records = tenant.watch(after, timeout)
    return {
        "audits": records,
        "next": after + len(records) if records else after,
        "timed_out": not records,
    }
