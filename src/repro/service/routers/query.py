"""``TraceQuery``/stats/info over the wire.

| method | path                     | action                             |
|--------|--------------------------|------------------------------------|
| GET    | /tenants/{tenant}/query  | filtered events / count / histogram|
| GET    | /tenants/{tenant}/stats  | ``trace_stats`` as JSON            |
| GET    | /tenants/{tenant}/info   | ``trace_info`` as JSON             |

The query endpoint takes the same vocabulary as ``trace query`` —
repeatable ``entity``/``kind``, ``entity_kind``, ``since``/``until``,
``round``, ``seq_start``/``seq_end``, ``limit``, plus one of
``count``/``count_by_kind``/``project`` — builds the identical
:class:`~repro.query.TraceQuery`, and runs it against the tenant's
store under the tenant lock.  The differential property suite proves
the wire results equal local execution over every labelled scenario.
"""

from __future__ import annotations

from repro.core.serialize import event_to_dict
from repro.errors import BadRequestError
from repro.query import TraceQuery, trace_info, trace_stats
from repro.report import jsonable
from repro.service.app import Request, Router
from repro.service.tenants import TenantManager

router = Router()


def build_query(request: Request) -> TraceQuery:
    """The ``TraceQuery`` a request's parameters describe.

    Mirrors the CLI's construction exactly (same builders, same
    ordering, same mutual-exclusion rules), so a URL and a command line
    describing the same filters execute the same query object.
    """
    query = TraceQuery()
    entities = request.query_list("entity")
    entity_kind = request.query_str("entity_kind")
    if entity_kind is not None and not entities:
        raise BadRequestError("entity_kind requires at least one entity")
    if entities:
        query = query.entity(*entities, kind=entity_kind)
    kinds = request.query_list("kind")
    if kinds:
        query = query.of_kind(*kinds)
    round_tick = request.query_int("round")
    since = request.query_int("since")
    until = request.query_int("until")
    if round_tick is not None:
        if since is not None or until is not None:
            raise BadRequestError(
                "round selects one tick and cannot be combined with "
                "since/until"
            )
        query = query.at_round(round_tick)
    elif since is not None or until is not None:
        query = query.time_range(since, until)
    seq_start = request.query_int("seq_start")
    seq_end = request.query_int("seq_end")
    if seq_start is not None or seq_end is not None:
        query = query.seq_range(seq_start, seq_end)
    limit = request.query_int("limit")
    if limit is not None:
        query = query.take(limit)
    return query


@router.get("/tenants/{tenant}/query")
def run_query(request: Request, tenants: TenantManager) -> dict:
    count = request.query_flag("count")
    count_by_kind = request.query_flag("count_by_kind")
    project = request.query_str("project")
    if count and count_by_kind:
        raise BadRequestError(
            "count and count_by_kind are different aggregates; pick one"
        )
    query = build_query(request)
    tenant = tenants.get(request.param("tenant"))
    with tenant.lock:
        store = tenant.store
        if count:
            return {"count": query.count(store)}
        if count_by_kind:
            return {"count_by_kind": query.count_by_kind(store)}
        if project is not None:
            fields = [f for f in project.split(",") if f]
            rows = query.project(store, *fields)
            return {
                "fields": fields,
                "rows": [jsonable(row) for row in rows],
            }
        events = query.run(store)
    return {"events": [event_to_dict(event) for event in events]}


@router.get("/tenants/{tenant}/stats")
def tenant_stats(request: Request, tenants: TenantManager) -> dict:
    tenant = tenants.get(request.param("tenant"))
    with tenant.lock:
        return trace_stats(tenant.store).as_dict()


@router.get("/tenants/{tenant}/info")
def tenant_trace_info(request: Request, tenants: TenantManager) -> dict:
    tenant = tenants.get(request.param("tenant"))
    with tenant.lock:
        return trace_info(tenant.store)
