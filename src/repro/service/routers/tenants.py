"""Tenant lifecycle endpoints.

| method | path                     | action                          |
|--------|--------------------------|---------------------------------|
| GET    | /                        | service identity + tenant count |
| GET    | /tenants                 | list tenant identity cards      |
| POST   | /tenants                 | create (name, backend, jobs)    |
| GET    | /tenants/{tenant}        | one tenant's identity card      |
| DELETE | /tenants/{tenant}        | deregister (files kept)         |
| POST   | /tenants/{tenant}/open   | reopen a closed disk tenant     |
| POST   | /tenants/{tenant}/close  | checkpoint + close the store    |
"""

from __future__ import annotations

from repro.service.app import Request, Response, Router
from repro.service.tenants import TENANT_BACKENDS, TenantManager

router = Router()


@router.get("/")
def service_info(request: Request, tenants: TenantManager) -> dict:
    return {
        "service": "repro-audit",
        "tenants": len(tenants.names()),
        "backends": list(TENANT_BACKENDS),
        "data_dir": tenants.data_dir,
        "axioms": [axiom.axiom_id for axiom in tenants.registry],
    }


@router.get("/tenants")
def list_tenants(request: Request, tenants: TenantManager) -> dict:
    return {"tenants": tenants.describe_all()}


@router.post("/tenants")
def create_tenant(request: Request, tenants: TenantManager) -> Response:
    name = request.body_field("name", (str,))
    backend = request.body_field("backend", (str,), required=False)
    audit_jobs = request.body_field("audit_jobs", (int,), required=False)
    tenant = tenants.create(name, backend=backend, audit_jobs=audit_jobs)
    return Response(status=201, payload=tenant.describe())


@router.get("/tenants/{tenant}")
def tenant_info(request: Request, tenants: TenantManager) -> dict:
    return tenants.get(request.param("tenant")).describe()


@router.delete("/tenants/{tenant}")
def delete_tenant(request: Request, tenants: TenantManager) -> dict:
    return tenants.delete(request.param("tenant"))


@router.post("/tenants/{tenant}/open")
def open_tenant(request: Request, tenants: TenantManager) -> dict:
    return tenants.open(request.param("tenant")).describe()


@router.post("/tenants/{tenant}/close")
def close_tenant(request: Request, tenants: TenantManager) -> dict:
    return tenants.close(request.param("tenant")).describe()
