"""``ServiceClient``: a thin typed wrapper over the service's HTTP API.

Stdlib-only (``urllib``), synchronous, one method per endpoint, raising
:class:`~repro.errors.ServiceClientError` with the server's error
message and status on anything but success.  Used by the service tests,
the CI smoke drive, and anyone scripting a service from Python::

    client = ServiceClient("http://127.0.0.1:8040")
    client.create_tenant("acme")
    client.append("acme", [event_to_dict(e) for e in events])
    verdict = client.run_audit("acme")
    rows = client.query("acme", kind=["payment_issued"], count=True)
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ServiceClientError


class ServiceClient:
    """Synchronous client for one audit service."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport

    def request(
        self,
        method: str,
        path: str,
        *,
        params: Mapping[str, Any] | None = None,
        body: Any = None,
        raw: bool = False,
        timeout: float | None = None,
    ) -> Any:
        """One request; decoded JSON back (or text when ``raw``)."""
        url = self.base_url + path
        if params:
            pairs: list[tuple[str, str]] = []
            for key, value in params.items():
                if value is None:
                    continue
                if isinstance(value, (list, tuple)):
                    pairs.extend((key, str(item)) for item in value)
                elif isinstance(value, bool):
                    pairs.append((key, "1" if value else "0"))
                else:
                    pairs.append((key, str(value)))
            if pairs:
                url += "?" + urllib.parse.urlencode(pairs)
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method.upper()
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                payload = response.read()
        except urllib.error.HTTPError as error:
            raise self._decode_error(error) from None
        except urllib.error.URLError as error:
            raise ServiceClientError(
                f"no response from {url}: {error.reason}", status=0
            ) from None
        if raw:
            return payload.decode("utf-8")
        return json.loads(payload.decode("utf-8"))

    @staticmethod
    def _decode_error(error: urllib.error.HTTPError) -> ServiceClientError:
        status = error.code
        message = f"HTTP {status}"
        try:
            document = json.loads(error.read().decode("utf-8"))
            detail = document.get("error", {})
            message = (
                f"{detail.get('type', 'error')}: "
                f"{detail.get('message', message)}"
            )
        except Exception:  # noqa: BLE001 - non-JSON error body
            pass
        return ServiceClientError(message, status=status)

    # ------------------------------------------------------------------
    # Service + tenant lifecycle

    def ping(self) -> dict:
        return self.request("GET", "/")

    def list_tenants(self) -> list[dict]:
        return self.request("GET", "/tenants")["tenants"]

    def create_tenant(
        self,
        name: str,
        *,
        backend: str | None = None,
        audit_jobs: int | None = None,
    ) -> dict:
        body: dict[str, Any] = {"name": name}
        if backend is not None:
            body["backend"] = backend
        if audit_jobs is not None:
            body["audit_jobs"] = audit_jobs
        return self.request("POST", "/tenants", body=body)

    def tenant(self, name: str) -> dict:
        return self.request("GET", f"/tenants/{name}")

    def delete_tenant(self, name: str) -> dict:
        return self.request("DELETE", f"/tenants/{name}")

    def open_tenant(self, name: str) -> dict:
        return self.request("POST", f"/tenants/{name}/open")

    def close_tenant(self, name: str) -> dict:
        return self.request("POST", f"/tenants/{name}/close")

    # ------------------------------------------------------------------
    # Data plane

    def append(self, name: str, records: Sequence[dict]) -> dict:
        return self.request(
            "POST", f"/tenants/{name}/events", body={"events": list(records)}
        )

    def events(self, name: str, *, start: int = 0, limit: int = 1000) -> dict:
        return self.request(
            "GET",
            f"/tenants/{name}/events",
            params={"start": start, "limit": limit},
        )

    def run_audit(self, name: str) -> dict:
        return self.request("POST", f"/tenants/{name}/audits")

    def audits(self, name: str, *, after: int = 0) -> dict:
        return self.request(
            "GET", f"/tenants/{name}/audits", params={"after": after}
        )

    def latest_audit(self, name: str) -> dict:
        return self.request("GET", f"/tenants/{name}/audits/latest")

    def watch(self, name: str, *, after: int = 0, timeout: float = 10.0) -> dict:
        # The socket deadline must outlive the server-side long poll.
        return self.request(
            "GET",
            f"/tenants/{name}/watch",
            params={"after": after, "timeout": timeout},
            timeout=timeout + self.timeout,
        )

    def query(
        self,
        name: str,
        *,
        entity: Iterable[str] = (),
        entity_kind: str | None = None,
        kind: Iterable[str] = (),
        since: int | None = None,
        until: int | None = None,
        round_tick: int | None = None,
        seq_start: int | None = None,
        seq_end: int | None = None,
        limit: int | None = None,
        count: bool = False,
        count_by_kind: bool = False,
        project: Sequence[str] = (),
    ) -> dict:
        params: dict[str, Any] = {
            "entity": list(entity),
            "entity_kind": entity_kind,
            "kind": list(kind),
            "since": since,
            "until": until,
            "round": round_tick,
            "seq_start": seq_start,
            "seq_end": seq_end,
            "limit": limit,
        }
        if count:
            params["count"] = True
        if count_by_kind:
            params["count_by_kind"] = True
        if project:
            params["project"] = ",".join(project)
        return self.request("GET", f"/tenants/{name}/query", params=params)

    def stats(self, name: str) -> dict:
        return self.request("GET", f"/tenants/{name}/stats")

    def info(self, name: str) -> dict:
        return self.request("GET", f"/tenants/{name}/info")

    def report(self, name: str, *, format: str = "md") -> str:  # noqa: A002
        return self.request(
            "GET",
            f"/tenants/{name}/report",
            params={"format": format},
            raw=True,
        )

    # ------------------------------------------------------------------
    # Observability

    def metrics(self) -> str:
        """The service's live metrics, Prometheus text exposition."""
        return self.request("GET", "/metrics", raw=True)

    def metrics_json(self) -> dict:
        """The service's live metrics as the registry snapshot document."""
        return self.request("GET", "/metrics", params={"format": "json"})
