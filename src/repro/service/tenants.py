"""Tenant lifecycle for the audit service.

The service follows the two-layer shape from the ROADMAP sketch:

* **Template layer** — one shared :class:`~repro.core.axioms.AxiomRegistry`
  owned by the :class:`TenantManager`.  Every tenant is audited against
  the same suite, so verdicts are comparable across tenants.
* **Instance layer** — one :class:`Tenant` per hosted platform: its own
  :class:`~repro.core.store.TraceStore` (memory, persistent, or
  sqlite), its own delta-audit session
  (:func:`~repro.shard.engine.make_audit_session` — plain delta for
  ``audit_jobs=1``, sharded above), and its own lock.

Concurrency contract: every data operation on a tenant runs under that
tenant's re-entrant lock, so appenders serialize with each other and
with audits, while requests for *different* tenants never contend.  The
lock doubles as the condition variable behind the long-poll ``watch``
endpoint — each completed audit appends a delta record to the tenant's
audit log and wakes every waiter.

Durability: disk tenants are registered in ``<data_dir>/tenants.json``
(written atomically) with an ``open`` flag; a restarting service reopens
exactly the tenants that were open, and :meth:`TenantManager.close_all`
— the SIGINT path of ``trace serve`` — checkpoints every store without
flipping the flags, so a restart resumes where the shutdown left off.
Memory tenants are ephemeral by definition and never enter the
manifest.
"""

from __future__ import annotations

import json
import os
import re
import threading
from collections import Counter
from typing import Iterable

from repro.core.audit import AuditReport
from repro.core.axioms import AxiomRegistry, default_registry
from repro.core.serialize import event_from_dict
from repro.core.store import make_store, open_store
from repro.core.trace import PlatformTrace, make_disk_store
from repro.errors import (
    BadRequestError,
    TenantClosedError,
    TenantExistsError,
    UnknownTenantError,
)
from repro.service.wire import report_to_dict, violation_key, violation_to_dict

#: Store backends a tenant may be created with.
TENANT_BACKENDS: tuple[str, ...] = ("memory", "persistent", "sqlite")

#: Tenant names double as path components and URL segments.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_MANIFEST_NAME = "tenants.json"


def validate_tenant_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_PATTERN.match(name):
        raise BadRequestError(
            f"invalid tenant name {name!r}: must be 1-64 characters of "
            "letters, digits, '.', '_' or '-', starting with a letter "
            "or digit"
        )
    return name


class Tenant:
    """One hosted store + audit session, serialized by its own lock."""

    def __init__(
        self,
        name: str,
        *,
        backend: str,
        path: str | None = None,
        audit_jobs: int = 1,
        registry: AxiomRegistry | None = None,
        store=None,
    ) -> None:
        self.name = name
        self.backend = backend
        self.path = path
        self.audit_jobs = audit_jobs
        self.lock = threading.RLock()
        #: Waited on by ``watch``; notified once per completed audit.
        self.audited = threading.Condition(self.lock)
        self._store = store
        self._trace = None if store is None else PlatformTrace(store=store)
        self._session = None
        self._registry = registry
        self.last_report: AuditReport | None = None
        #: One record per completed audit (empty deltas included), in
        #: audit order — the watch stream and the audit history.
        self.audits: list[dict] = []
        self._seen: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # State

    @property
    def closed(self) -> bool:
        return self._store is None

    def require_open(self) -> None:
        if self.closed:
            raise TenantClosedError(
                f"tenant {self.name!r} is closed; reopen it with "
                f"POST /tenants/{self.name}/open"
            )

    @property
    def store(self):
        self.require_open()
        return self._store

    @property
    def trace(self) -> PlatformTrace:
        self.require_open()
        return self._trace

    def describe(self) -> dict:
        """The tenant's identity card (works on closed tenants too)."""
        with self.lock:
            info = {
                "name": self.name,
                "backend": self.backend,
                "path": self.path,
                "open": not self.closed,
                "audit_jobs": self.audit_jobs,
                "audits": len(self.audits),
                "events": None if self.closed else self._trace.revision,
            }
            if self.last_report is not None:
                info["last_audit"] = {
                    "revision": self.last_report.trace_length,
                    "passed": self.last_report.passed,
                    "total_violations": self.last_report.total_violations,
                }
            return info

    # ------------------------------------------------------------------
    # Data operations (all take the tenant lock)

    def append_records(self, records: Iterable[dict]) -> dict:
        """Decode and append a batch of wire-format event records.

        Decoding happens *before* any append so a malformed record in
        the middle of a batch rejects the whole batch instead of
        leaving half of it in the store (validate-before-mutate, the
        same contract as the ingest runner)."""
        events = [event_from_dict(record) for record in records]
        with self.lock:
            self.require_open()
            appended = self._trace.append_batch(events)
            self._checkpoint_store()
            return {"appended": appended, "revision": self._trace.revision}

    def run_audit(self) -> dict:
        """Audit the trace at its current revision; record the delta.

        The session is delta-based, so each call pays for the events
        appended since the previous audit.  The returned record carries
        the cumulative verdict plus the *new* violations this audit
        surfaced; the same record is appended to :attr:`audits` and
        wakes ``watch`` waiters."""
        with self.lock:
            self.require_open()
            if self._session is None:
                from repro.shard.engine import make_audit_session

                self._session = make_audit_session(
                    self.audit_jobs, registry=self._registry
                )
            report = self._session.audit(self._trace)
            fresh = []
            for violation in report.violations:
                record = violation_to_dict(violation)
                key = violation_key(record)
                if self._seen[key] > 0:
                    self._seen[key] -= 1
                else:
                    fresh.append(record)
            self._seen = Counter(
                violation_key(violation_to_dict(v))
                for v in report.violations
            )
            entry = {
                "audit": len(self.audits),
                "revision": report.trace_length,
                "passed": report.passed,
                "overall_score": report.overall_score,
                "total_violations": report.total_violations,
                "new_violations": fresh,
            }
            self.audits.append(entry)
            self.last_report = report
            self.audited.notify_all()
            return entry

    def watch(self, after: int, timeout: float) -> list[dict]:
        """Block until an audit numbered ``>= after`` completes.

        Returns every audit record from ``after`` on (empty on
        timeout).  ``Condition.wait`` releases the tenant lock, so
        appends and audits proceed while watchers sleep."""
        if after < 0:
            raise BadRequestError(f"watch cursor must be >= 0, got {after}")
        with self.audited:
            self.require_open()
            self.audited.wait_for(
                lambda: len(self.audits) > after or self.closed,
                timeout=timeout,
            )
            return list(self.audits[after:])

    # ------------------------------------------------------------------
    # Lifecycle

    def _checkpoint_store(self) -> None:
        save = getattr(self._store, "save", None)
        if save is not None:
            save()

    def close(self) -> None:
        """Checkpoint and release the store + audit session (idempotent).

        Waiting watchers are woken so a long poll against a tenant being
        shut down returns promptly instead of running out its timeout.
        """
        with self.lock:
            if self.closed:
                return
            if self._session is not None:
                close = getattr(self._session, "close", None)
                if close is not None:
                    close()
                self._session = None
            self._checkpoint_store()
            self._store.close()
            self._store = None
            self._trace = None
            self.audited.notify_all()

    def latest_report(self) -> dict:
        with self.lock:
            if self.last_report is None:
                raise BadRequestError(
                    f"tenant {self.name!r} has not been audited yet"
                )
            return report_to_dict(self.last_report)


class TenantManager:
    """The instance layer: every hosted tenant, plus the shared registry.

    ``data_dir`` is where disk tenants live (``<name>.db`` for sqlite,
    ``<name>-log/`` for persistent) and where the manifest is written;
    without one the service hosts memory tenants only.
    """

    def __init__(
        self,
        data_dir: str | os.PathLike[str] | None = None,
        *,
        default_backend: str = "sqlite",
        default_audit_jobs: int = 1,
        registry: AxiomRegistry | None = None,
    ) -> None:
        if default_backend not in TENANT_BACKENDS:
            raise BadRequestError(
                f"unknown tenant backend {default_backend!r}; available "
                f"backends: {', '.join(TENANT_BACKENDS)}"
            )
        if default_audit_jobs < 1:
            raise BadRequestError(
                f"audit jobs must be >= 1, got {default_audit_jobs}"
            )
        self.registry = registry if registry is not None else default_registry()
        self.data_dir = None if data_dir is None else os.fspath(data_dir)
        self.default_backend = default_backend
        self.default_audit_jobs = default_audit_jobs
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.RLock()
        if self.data_dir is not None:
            os.makedirs(self.data_dir, exist_ok=True)
            self._load_manifest()

    # ------------------------------------------------------------------
    # Lookup

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def get(self, name: str) -> Tenant:
        """The named tenant (open or closed), or a 404."""
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                raise UnknownTenantError(
                    f"unknown tenant {name!r}; hosted tenants: "
                    f"{', '.join(sorted(self._tenants)) or 'none'}"
                ) from None

    def describe_all(self) -> list[dict]:
        with self._lock:
            tenants = list(self._tenants.values())
        return [tenant.describe() for tenant in tenants]

    # ------------------------------------------------------------------
    # Lifecycle

    def create(
        self,
        name: str,
        *,
        backend: str | None = None,
        audit_jobs: int | None = None,
    ) -> Tenant:
        validate_tenant_name(name)
        backend = self.default_backend if backend is None else backend
        if backend not in TENANT_BACKENDS:
            raise BadRequestError(
                f"unknown tenant backend {backend!r}; available "
                f"backends: {', '.join(TENANT_BACKENDS)}"
            )
        jobs = self.default_audit_jobs if audit_jobs is None else audit_jobs
        if jobs < 1:
            raise BadRequestError(f"audit jobs must be >= 1, got {jobs}")
        with self._lock:
            if name in self._tenants:
                raise TenantExistsError(f"tenant {name!r} already exists")
            path: str | None = None
            if backend == "memory":
                store = make_store()
            else:
                if self.data_dir is None:
                    raise BadRequestError(
                        f"cannot create a {backend!r} tenant: the service "
                        "has no data dir (start `trace serve` with one, "
                        "or create a memory tenant)"
                    )
                suffix = ".db" if backend == "sqlite" else "-log"
                path = os.path.join(self.data_dir, name + suffix)
                if os.path.exists(path):
                    raise TenantExistsError(
                        f"tenant files already exist at {path!r}; delete "
                        "them or pick another name"
                    )
                store = make_disk_store(path, backend)
            tenant = Tenant(
                name,
                backend=backend,
                path=path,
                audit_jobs=jobs,
                registry=self.registry,
                store=store,
            )
            self._tenants[name] = tenant
            if path is not None:
                self._write_manifest()
            return tenant

    def close(self, name: str) -> Tenant:
        tenant = self.get(name)
        tenant.close()
        with self._lock:
            if tenant.path is not None:
                self._write_manifest()
        return tenant

    def open(self, name: str) -> Tenant:
        """Reopen a closed disk tenant (idempotent for open ones).

        The reopened tenant gets a fresh audit session — the first
        audit after a reopen rebuilds from the full trace, exactly like
        an ingest resume."""
        tenant = self.get(name)
        with self._lock:
            if not tenant.closed:
                return tenant
            if tenant.path is None:
                raise BadRequestError(
                    f"memory tenant {tenant.name!r} cannot be reopened: "
                    "its events were discarded on close"
                )
            store = open_store(tenant.path)
            reopened = Tenant(
                tenant.name,
                backend=tenant.backend,
                path=tenant.path,
                audit_jobs=tenant.audit_jobs,
                registry=self.registry,
                store=store,
            )
            self._tenants[tenant.name] = reopened
            self._write_manifest()
            return reopened

    def delete(self, name: str) -> dict:
        """Close and deregister a tenant.  Files stay on disk — removal
        is an operator action (same stance as ``trace repair``: the
        service never destroys trace data)."""
        tenant = self.get(name)
        tenant.close()
        with self._lock:
            self._tenants.pop(name, None)
            if tenant.path is not None:
                self._write_manifest()
        return {"deleted": name, "files_kept": tenant.path}

    def close_all(self) -> dict:
        """Checkpoint and close every open tenant (the SIGINT path).

        Manifest ``open`` flags are left as they were, so a restarted
        service reopens the same tenants."""
        with self._lock:
            tenants = list(self._tenants.values())
        closed = 0
        for tenant in tenants:
            if not tenant.closed:
                tenant.close()
                closed += 1
        return {"tenants": len(tenants), "checkpointed": closed}

    # ------------------------------------------------------------------
    # Manifest (disk tenants only; atomic replace like every repo
    # checkpoint)

    def _manifest_path(self) -> str:
        assert self.data_dir is not None
        return os.path.join(self.data_dir, _MANIFEST_NAME)

    def _write_manifest(self) -> None:
        if self.data_dir is None:
            return
        document = {
            "format_version": 1,
            "tenants": {
                tenant.name: {
                    "backend": tenant.backend,
                    "path": os.path.relpath(tenant.path, self.data_dir),
                    "audit_jobs": tenant.audit_jobs,
                    "open": not tenant.closed,
                }
                for tenant in self._tenants.values()
                if tenant.path is not None
            },
        }
        path = self._manifest_path()
        scratch = path + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(scratch, path)

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        for name, spec in document.get("tenants", {}).items():
            store_path = os.path.join(self.data_dir, spec["path"])
            store = open_store(store_path) if spec.get("open") else None
            self._tenants[name] = Tenant(
                name,
                backend=spec["backend"],
                path=store_path,
                audit_jobs=int(spec.get("audit_jobs", 1)),
                registry=self.registry,
                store=store,
            )
